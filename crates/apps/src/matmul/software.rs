//! MB32 software for block matrix multiplication (§IV-B): the pure
//! software baseline and the HW-accelerated driver.
//!
//! Code generation mimics the paper's compiled-C quality: the software
//! baseline keeps the accumulator and the A-row pointer in registers but
//! recomputes B indices (as a compiler does for a strided column walk),
//! while the hardware driver performs full per-element index arithmetic
//! and calls FSL transfer routines (`brlid`/`rtsd` wrappers, as the EDK
//! driver functions compile to). The fixed per-block-product overhead of
//! the driver is what makes the 2×2 configuration *slower* than pure
//! software while 4×4 wins — the crossover of Figure 7 and Table I.

use crate::matmul::reference::Matrix;

/// Label of the result matrix C in the generated programs.
pub const RESULT_LABEL: &str = "c_data";

fn words(vals: &[i32]) -> String {
    vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
}

fn data_section(a: &Matrix, b: &Matrix) -> String {
    format!(
        ".align 4\na_data: .word {}\nb_data: .word {}\n{RESULT_LABEL}: .space {}\n",
        words(&a.data),
        words(&b.data),
        4 * a.n * a.n,
    )
}

/// Generates the pure-software N×N product `C = A × B`
/// (the "pure software" curve of Figure 7).
pub fn sw_program(a: &Matrix, b: &Matrix) -> String {
    assert_eq!(a.n, b.n);
    let n = a.n;
    format!(
        ".equ N, {n}\n\
         .equ ROWB, {rowb}\n\
         start:\n\
         \tli   r25, a_data        # A row pointer\n\
         \tli   r27, {RESULT_LABEL}\n\
         \taddk r20, r0, r0        # i = 0\n\
         iloop:\taddk r21, r0, r0  # j = 0\n\
         jloop:\taddk r5, r0, r0   # acc\n\
         \taddk r28, r25, r0       # a ptr = &A[i][0]\n\
         \taddk r22, r0, r0        # k = 0\n\
         kloop:\tlwi  r6, r28, 0   # A[i][k]\n\
         \tmuli r7, r22, ROWB      # B index: k*N*4 (strided walk)\n\
         \tbslli r8, r21, 2\n\
         \taddk r7, r7, r8\n\
         \tlwi  r7, r7, b_data     # B[k][j]\n\
         \tmul  r6, r6, r7\n\
         \taddk r5, r5, r6\n\
         \taddik r28, r28, 4\n\
         \taddik r22, r22, 1\n\
         \trsubik r6, r22, N\n\
         \tbnei r6, kloop\n\
         \tswi  r5, r27, 0\n\
         \taddik r27, r27, 4\n\
         \taddik r21, r21, 1\n\
         \trsubik r6, r21, N\n\
         \tbnei r6, jloop\n\
         \taddik r25, r25, ROWB\n\
         \taddik r20, r20, 1\n\
         \trsubik r6, r20, N\n\
         \tbnei r6, iloop\n\
         \thalt\n\n{data}",
        rowb = 4 * n,
        data = data_section(a, b),
    )
}

/// FSL transfer routines shared by the hardware driver (the compiled
/// `microblaze_*_datafsl` wrappers of the paper's flow).
const FSL_ROUTINES: &str = "\
fsl_put:\tput  r5, rfsl0\n\
\trtsd r15, 8\n\
\tnop\n\
fsl_cput:\tcput r5, rfsl0\n\
\trtsd r15, 8\n\
\tnop\n\
fsl_get:\tget  r5, rfsl0\n\
\trtsd r15, 8\n\
\tnop\n";

/// Generates the HW-accelerated program using an `nb × nb` block-product
/// peripheral on FSL channel 0 (the "2×2 / 4×4 matrix blocks" curves).
///
/// Loop order follows the paper: for each B block (kb, jb) — loaded into
/// the peripheral **once** as control words — all A blocks (ib, kb) are
/// streamed column-by-column and the partial products accumulated into C
/// by software.
pub fn hw_program(a: &Matrix, b: &Matrix, nb: usize) -> String {
    assert_eq!(a.n, b.n);
    let n = a.n;
    assert!(n.is_multiple_of(nb), "block size must divide N");
    let blocks = n / nb;
    let rowb = 4 * n;
    let mut s = String::new();
    s.push_str(&format!(
        ".equ N, {n}\n.equ NB, {nb}\n.equ ROWB, {rowb}\n\
         start:\n\
         \taddk r10, r0, r0        # jb element index\n\
         jbloop:\n\
         \taddk r11, r0, r0        # kb element index\n\
         kbloop:\n"
    ));
    // Send the B block (kb, jb) row-major as control words.
    for bi in 0..nb {
        for bj in 0..nb {
            s.push_str(&format!(
                "\taddik r6, r11, {bi}\n\
                 \tmuli r6, r6, ROWB\n\
                 \taddik r7, r10, {bj}\n\
                 \tbslli r7, r7, 2\n\
                 \taddk r6, r6, r7\n\
                 \tlwi  r5, r6, b_data\n\
                 \tbrlid r15, fsl_cput\n\
                 \tnop\n"
            ));
        }
    }
    s.push_str(
        "\taddk r12, r0, r0        # ib element index\n\
         ibloop:\n",
    );
    // Stream the A block (ib, kb) column-major.
    for bk in 0..nb {
        for bi in 0..nb {
            s.push_str(&format!(
                "\taddik r6, r12, {bi}\n\
                 \tmuli r6, r6, ROWB\n\
                 \taddik r7, r11, {bk}\n\
                 \tbslli r7, r7, 2\n\
                 \taddk r6, r6, r7\n\
                 \tlwi  r5, r6, a_data\n\
                 \tbrlid r15, fsl_put\n\
                 \tnop\n"
            ));
        }
    }
    // Receive the nb² partial results (row-major) and accumulate into C.
    for bi in 0..nb {
        for bj in 0..nb {
            s.push_str(&format!(
                "\tbrlid r15, fsl_get\n\
                 \tnop\n\
                 \taddik r6, r12, {bi}\n\
                 \tmuli r6, r6, ROWB\n\
                 \taddik r7, r10, {bj}\n\
                 \tbslli r7, r7, 2\n\
                 \taddk r6, r6, r7\n\
                 \tlwi  r8, r6, {RESULT_LABEL}\n\
                 \taddk r8, r8, r5\n\
                 \tswi  r8, r6, {RESULT_LABEL}\n"
            ));
        }
    }
    s.push_str(&format!(
        "\taddik r12, r12, NB\n\
         \trsubik r6, r12, {n}\n\
         \tbnei r6, ibloop\n\
         \taddik r11, r11, NB\n\
         \trsubik r6, r11, {n}\n\
         \tbnei r6, kbloop\n\
         \taddik r10, r10, NB\n\
         \trsubik r6, r10, {n}\n\
         \tbnei r6, jbloop\n\
         \thalt\n\n{FSL_ROUTINES}\n{data}",
        data = data_section(a, b),
    ));
    let _ = blocks;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::hardware::matmul_peripheral;
    use crate::matmul::reference;
    use softsim_cosim::{CoSim, CoSimStop};
    use softsim_isa::asm::assemble;

    fn read_matrix(sim: &CoSim, img: &softsim_isa::Image, n: usize) -> Matrix {
        let base = img.symbol(RESULT_LABEL).unwrap();
        let data = (0..n * n)
            .map(|i| sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32)
            .collect();
        Matrix::from_rows(n, data)
    }

    #[test]
    fn sw_matches_reference() {
        for n in [4usize, 8] {
            let a = Matrix::test_pattern(n, 3);
            let b = Matrix::test_pattern(n, 4);
            let img = assemble(&sw_program(&a, &b)).expect("assembles");
            let mut sim = CoSim::software_only(&img);
            assert_eq!(sim.run(100_000_000), CoSimStop::Halted, "n={n}");
            assert_eq!(read_matrix(&sim, &img, n), reference::multiply(&a, &b), "n={n}");
        }
    }

    #[test]
    fn hw_matches_reference_for_both_block_sizes() {
        for (n, nb) in [(4usize, 2usize), (8, 2), (8, 4)] {
            let a = Matrix::test_pattern(n, 5);
            let b = Matrix::test_pattern(n, 6);
            let img = assemble(&hw_program(&a, &b, nb)).expect("assembles");
            let mut sim = CoSim::with_peripheral(&img, matmul_peripheral(nb));
            assert_eq!(sim.run(100_000_000), CoSimStop::Halted, "n={n} nb={nb}");
            assert_eq!(sim.hw_stats().output_overflows, 0);
            assert_eq!(read_matrix(&sim, &img, n), reference::multiply(&a, &b), "n={n} nb={nb}");
        }
    }

    #[test]
    fn figure7_crossover_shape() {
        // The paper's §IV-B finding: 2×2 blocks are *slower* than pure
        // software (communication overhead dominates); 4×4 blocks win.
        let n = 16;
        let a = Matrix::test_pattern(n, 7);
        let b = Matrix::test_pattern(n, 8);
        let cycles = |img: &softsim_isa::Image, per: Option<usize>| {
            let mut sim = match per {
                None => CoSim::software_only(img),
                Some(nb) => CoSim::with_peripheral(img, matmul_peripheral(nb)),
            };
            assert_eq!(sim.run(500_000_000), CoSimStop::Halted);
            sim.cpu_stats().cycles
        };
        let sw = cycles(&assemble(&sw_program(&a, &b)).unwrap(), None);
        let hw2 = cycles(&assemble(&hw_program(&a, &b, 2)).unwrap(), Some(2));
        let hw4 = cycles(&assemble(&hw_program(&a, &b, 4)).unwrap(), Some(4));
        assert!(hw2 > sw, "2x2 blocks should lose to software: {hw2} vs {sw}");
        assert!(hw4 < sw, "4x4 blocks should beat software: {hw4} vs {sw}");
        let speedup = sw as f64 / hw4 as f64;
        assert!(
            (1.5..3.5).contains(&speedup),
            "4x4 speedup near the paper's 2.2x, got {speedup:.2}"
        );
        let penalty = hw2 as f64 / sw as f64 - 1.0;
        assert!(
            (0.0..0.6).contains(&penalty),
            "2x2 penalty in the paper's ballpark (8.8%), got {:.1}%",
            penalty * 100.0
        );
    }
}
