//! The composite adaptive-filter application — the full system the paper
//! motivates: "adaptive beamforming, where [the CORDIC dividers] are used
//! to update the weight coefficients of the filters".
//!
//! One MB32 program on one soft processor with **two customized hardware
//! peripherals**:
//!
//! 1. the CORDIC divider pipeline on FSL 0 performs the divisions of the
//!    Levinson-Durbin weight update (serial, latency-bound);
//! 2. the FIR filter on FSL 2 is loaded with the freshly computed
//!    prediction-error coefficients `A(z)` and then streams the signal
//!    through them (parallel, throughput-bound).
//!
//! The example exercises the co-simulation engine's multi-peripheral
//! support end to end and is verified against the composed golden models.

use crate::lpc::reference::{levinson_durbin, DivStrategy};
use crate::lpc::software::{lpc_body, lpc_data, LpcDivision};
use softsim_cosim::{CoSim, CoSimStop};
use softsim_isa::asm::assemble;
use softsim_isa::Image;
use std::fmt::Write as _;

/// FSL channel of the CORDIC divider pipeline.
pub const CORDIC_CHANNEL: usize = 0;
/// FSL channel of the FIR filter.
pub const FIR_CHANNEL: usize = 2;

fn words(vals: &[i32]) -> String {
    vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
}

/// Right-shift applied to raw autocorrelation sums so Q4.12 lags fit
/// 32-bit arithmetic for 12-bit signals up to 64 samples.
pub const AUTOCORR_SHIFT: u32 = 15;

/// Reference autocorrelation with the exact on-device arithmetic:
/// `r[k] = (Σ_{n=k}^{N-1} x[n]·x[n-k]) >> AUTOCORR_SHIFT` (wrapping).
pub fn autocorrelate(input: &[i32], order: usize) -> Vec<i32> {
    (0..=order)
        .map(|k| {
            let mut acc = 0i32;
            for n in k..input.len() {
                acc = acc.wrapping_add(input[n].wrapping_mul(input[n - k]));
            }
            acc >> AUTOCORR_SHIFT
        })
        .collect()
}

/// Emits the on-device autocorrelation (phase 0 of the full program):
/// fills `r_data[0..=order]` from `x_data[0..n]`.
fn emit_autocorr(s: &mut String, order: usize, n: usize) {
    let _ = write!(
        s,
        "# ---- autocorrelation of {n} samples, lags 0..={order}\n\
         \taddk r20, r0, r0       # k = 0\n\
         ack:\taddk r21, r0, r0   # acc\n\
         \tli   r25, x_data\n\
         \tbslli r5, r20, 2\n\
         \taddk r26, r25, r5      # &x[k]\n\
         \taddk r27, r25, r0      # &x[0]\n\
         \tli   r22, {n}\n\
         \trsubk r22, r20, r22    # count = N - k\n\
         acn:\tlwi r5, r26, 0\n\
         \tlwi  r6, r27, 0\n\
         \tmul  r5, r5, r6\n\
         \taddk r21, r21, r5\n\
         \taddik r26, r26, 4\n\
         \taddik r27, r27, 4\n\
         \taddik r22, r22, -1\n\
         \tbnei r22, acn\n\
         \tbsrai r21, r21, {AUTOCORR_SHIFT}\n\
         \tbslli r5, r20, 2\n\
         \tswi  r21, r5, r_data\n\
         \taddik r20, r20, 1\n\
         \trsubik r5, r20, {lags}\n\
         \tbnei r5, ack\n",
        lags = order + 1,
    );
}

/// Generates the fully self-contained program: autocorrelation of the
/// signal, Levinson-Durbin weight update (divisions via the FSL 0
/// pipeline), then FIR filtering of the same signal on FSL 2 with the
/// computed `A(z)`. The `r_data` array is computed on-device.
pub fn beamformer_program_full(input: &[i32], order: usize, p: usize) -> String {
    let n = input.len();
    let batch = 8usize;
    let mut s = String::from("# autocorrelate + weight update + filter\nstart:\n");
    emit_autocorr(&mut s, order, n);
    s.push_str(&lpc_body(order, LpcDivision::CordicFsl(p)));
    emit_fir_phases(&mut s, order, n, batch);
    // r_data starts zeroed; phase 0 fills it.
    s.push_str(&lpc_data(&vec![0; order + 1]));
    let _ = write!(s, "x_data: .word {x}\ny_data: .space {ys}\n", x = words(input), ys = 4 * n,);
    s
}

/// Emits phases 2 and 3: tap loading and batched streaming (shared by
/// both program variants).
fn emit_fir_phases(s: &mut String, order: usize, n: usize, batch: usize) {
    let _ = write!(
        s,
        "# ---- load taps into the FIR (channel {FIR_CHANNEL})\n\
         \tli   r25, a_data\n\
         \tli   r20, {taps}\n\
         tload:\tlwi r5, r25, 0\n\
         \tcput r5, rfsl{FIR_CHANNEL}\n\
         \taddik r25, r25, 4\n\
         \taddik r20, r20, -1\n\
         \tbnei r20, tload\n",
        taps = order + 1,
    );
    let _ = write!(
        s,
        "\tli   r26, x_data\n\
         \tli   r27, y_data\n\
         \tli   r24, {n}\n\
         chunk:\n\
         \taddk r23, r24, r0\n\
         \trsubik r6, r24, {batch}\n\
         \tbgei r6, sized\n\
         \tli   r23, {batch}\n\
         sized:\n\
         \taddk r22, r23, r0\n\
         fsend:\tlwi r5, r26, 0\n\
         \tput  r5, rfsl{FIR_CHANNEL}\n\
         \taddik r26, r26, 4\n\
         \taddik r22, r22, -1\n\
         \tbnei r22, fsend\n\
         \taddk r22, r23, r0\n\
         frecv:\tget r5, rfsl{FIR_CHANNEL}\n\
         \tswi  r5, r27, 0\n\
         \taddik r27, r27, 4\n\
         \taddik r22, r22, -1\n\
         \tbnei r22, frecv\n\
         \trsubk r24, r23, r24\n\
         \tbnei r24, chunk\n\
         \thalt\n\n"
    );
}

/// Generates the composite program: Levinson-Durbin (divisions via the
/// FSL 0 pipeline with `p` PEs), then FIR filtering of `input` on FSL 2
/// with the computed `a[0..=order]` as taps. Filtered output at `y_data`.
pub fn beamformer_program(r: &[i32], p: usize, input: &[i32]) -> String {
    let order = r.len() - 1;
    let n = input.len();
    let batch = 8usize;
    let mut s = String::from("# adaptive weight update + filtering\nstart:\n");
    // Phase 1: the recursion (CORDIC pipeline on channel 0).
    s.push_str(&lpc_body(order, LpcDivision::CordicFsl(p)));
    emit_fir_phases(&mut s, order, n, batch);
    s.push_str(&lpc_data(r));
    let _ = write!(s, "x_data: .word {x}\ny_data: .space {ys}\n", x = words(input), ys = 4 * n,);
    s
}

/// Builds the two-peripheral co-simulation for the composite application.
pub fn beamformer_cosim(r: &[i32], p: usize, input: &[i32]) -> (CoSim, Image) {
    let img = assemble(&beamformer_program(r, p, input)).expect("beamformer assembles");
    let mut sim = CoSim::with_peripheral(&img, crate::cordic::hardware::cordic_peripheral(p));
    sim.add_peripheral(crate::fir::hardware::fir_peripheral_chan(r.len(), FIR_CHANNEL));
    (sim, img)
}

/// The composed golden model: weight update then filtering.
pub fn expected_output(r: &[i32], p: usize, input: &[i32]) -> Vec<i32> {
    let iters = (crate::lpc::reference::CORDIC_ITERS as usize).div_ceil(p) * p;
    let weights = levinson_durbin(r, DivStrategy::Cordic(iters as u32));
    crate::fir::reference::fir(&weights.a, input)
}

/// Runs the application and returns `(filtered_output, cycles)`.
pub fn run_beamformer(r: &[i32], p: usize, input: &[i32]) -> (Vec<i32>, u64) {
    let (mut sim, img) = beamformer_cosim(r, p, input);
    assert_eq!(sim.run(100_000_000), CoSimStop::Halted);
    assert_eq!(sim.hw_stats().output_overflows, 0);
    let base = img.symbol("y_data").unwrap();
    let y = (0..input.len())
        .map(|i| sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32)
        .collect();
    (y, sim.cpu_stats().cycles)
}

/// Runs the fully self-contained variant; returns `(output, cycles)`.
pub fn run_beamformer_full(input: &[i32], order: usize, p: usize) -> (Vec<i32>, u64) {
    let img =
        assemble(&beamformer_program_full(input, order, p)).expect("full beamformer assembles");
    let mut sim = CoSim::with_peripheral(&img, crate::cordic::hardware::cordic_peripheral(p));
    sim.add_peripheral(crate::fir::hardware::fir_peripheral_chan(order + 1, FIR_CHANNEL));
    assert_eq!(sim.run(100_000_000), CoSimStop::Halted);
    let base = img.symbol("y_data").unwrap();
    let y = (0..input.len())
        .map(|i| sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32)
        .collect();
    (y, sim.cpu_stats().cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fir::reference::test_signal;
    use crate::lpc::reference::test_autocorrelation;

    #[test]
    fn composite_matches_composed_references() {
        let r = test_autocorrelation(4);
        let input = test_signal(24, 11);
        for p in [2usize, 4] {
            let (y, _) = run_beamformer(&r, p, &input);
            assert_eq!(y, expected_output(&r, p, &input), "P={p}");
        }
    }

    #[test]
    fn full_chain_matches_composed_references() {
        // Samples -> autocorrelation -> weight update -> filtering, all
        // on-device, against the composed golden models.
        let input = test_signal(32, 13);
        let (order, p) = (4usize, 4usize);
        let (y, _) = run_beamformer_full(&input, order, p);
        let r = autocorrelate(&input, order);
        assert!(r[0] > 0, "test signal has energy");
        let iters = (crate::lpc::reference::CORDIC_ITERS as usize).div_ceil(p) * p;
        let weights = levinson_durbin(&r, DivStrategy::Cordic(iters as u32));
        let expect = crate::fir::reference::fir(&weights.a, &input);
        assert_eq!(y, expect);
    }

    #[test]
    fn autocorrelation_reference_properties() {
        let input = test_signal(48, 14);
        let r = autocorrelate(&input, 6);
        assert!(r[0] > 0, "zero-lag energy positive");
        for k in 1..=6 {
            assert!(r[k].abs() <= r[0], "|r[{k}]| <= r[0]");
        }
    }

    #[test]
    fn both_peripherals_carry_traffic() {
        let r = test_autocorrelation(4);
        let input = test_signal(16, 12);
        let (mut sim, _) = beamformer_cosim(&r, 4, &input);
        assert_eq!(sim.run(100_000_000), CoSimStop::Halted);
        let hw = sim.hw_stats();
        // CORDIC: 4 divisions x 4 passes x 4 words + FIR: 5 taps + 16
        // samples — all delivered, all results consumed.
        assert_eq!(sim.cpu_stats().fsl_words_sent, hw.words_to_hw);
        assert_eq!(sim.cpu_stats().fsl_words_received, hw.words_from_hw);
        assert!(hw.words_to_hw > 60);
    }
}
