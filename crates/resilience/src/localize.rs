//! Divergence localization for fault-campaign trials.
//!
//! The campaign runner says *that* a trial silently corrupted its
//! output; this module says *where*: it re-runs the golden reference
//! and the trial fully instrumented (a [`MetricsCollector`] for the
//! cycle-windowed series, a [`Recorder`] for the raw timeline) and
//! hands both to [`MetricsDiff`], which reports the first cycle window
//! and the first architectural event — register writeback, FIFO word,
//! gateway word, block output — at which the trial departs from the
//! golden run. For a register-file upset the first diverging event *is*
//! the corrupted writeback the injector performed, so the report pins
//! the fault to its injection cycle.

use crate::campaign::{CampaignConfig, Outcome};
use crate::inject::{Injection, Injector};
use softsim_cosim::{CoSim, CoSimState, CoSimStop};
use softsim_metrics::{Divergence, MetricsCollector, MetricsDiff, RunRecord};
use softsim_trace::{shared, Fanout, Recorder};
use std::cell::RefCell;
use std::rc::Rc;

/// Instrumentation knobs for divergence localization.
#[derive(Debug, Clone, Copy)]
pub struct LocalizeConfig {
    /// Metrics window width in cycles.
    pub window_cycles: u64,
    /// Bounded recorder capacity per run. Runs that overflow it still
    /// localize, but the report is flagged lossy (see
    /// [`Divergence::lossy`]).
    pub recorder_capacity: usize,
    /// Watchdog / cycle-budget settings, shared with the campaign.
    pub campaign: CampaignConfig,
}

impl Default for LocalizeConfig {
    fn default() -> LocalizeConfig {
        LocalizeConfig {
            window_cycles: 256,
            recorder_capacity: 1 << 16,
            campaign: CampaignConfig::default(),
        }
    }
}

/// The instrumented golden reference a set of trials diffs against.
pub struct GoldenRun {
    /// Checkpoint of the initial state every run restores from.
    pub initial: CoSimState,
    /// Windowed series, event timeline and drop count of the golden run.
    pub record: RunRecord,
    /// Observable result words of the golden run.
    pub observed: Vec<u32>,
    /// Cycles the golden run took to halt.
    pub cycles: u64,
}

/// One localized trial: the campaign's classification plus where and
/// what first diverged.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// The fault this trial applied.
    pub injection: Injection,
    /// Whether the fault actually changed state.
    pub applied: bool,
    /// How the trial ended.
    pub stop: CoSimStop,
    /// The campaign outcome classification.
    pub outcome: Outcome,
    /// Where the trial departed from the golden run.
    pub divergence: Divergence,
}

impl DivergenceReport {
    /// Multi-line report text.
    pub fn text(&self) -> String {
        format!(
            "trial: {} @ cycle {} → {}\n{}",
            self.injection.kind,
            self.injection.cycle,
            self.outcome,
            self.divergence.text()
        )
    }
}

/// Runs `sim` (instrumented) from its current state to completion and
/// captures the golden reference. The initial state is checkpointed
/// first, and restored again afterwards, so trials can follow.
///
/// # Panics
/// Panics if the golden run does not halt within the configured budget
/// (the workload must terminate fault-free).
pub fn capture_golden(
    sim: &mut CoSim,
    observe: impl Fn(&CoSim) -> Vec<u32>,
    config: &LocalizeConfig,
) -> GoldenRun {
    let initial = sim.save_state();
    let budget = config.campaign.budget_floor * config.campaign.budget_factor.max(1);
    let (record, stop) = instrumented_run(sim, config, |sim| sim.run(budget));
    assert_eq!(stop, CoSimStop::Halted, "golden run must halt, got: {stop}");
    let cycles = sim.cpu().stats().cycles;
    let observed = observe(sim);
    let golden = GoldenRun { initial, record, observed, cycles };
    sim.load_state(&golden.initial);
    golden
}

/// Restores `sim` to the golden initial state, steps to the injection
/// cycle, applies the fault, runs the trial instrumented and localizes
/// its divergence against the golden record.
pub fn localize_trial(
    sim: &mut CoSim,
    golden: &GoldenRun,
    injection: Injection,
    observe: impl Fn(&CoSim) -> Vec<u32>,
    config: &LocalizeConfig,
) -> DivergenceReport {
    sim.load_state(&golden.initial);
    let budget = golden.cycles * config.campaign.budget_factor + config.campaign.budget_floor;
    let watchdog = config.campaign.watchdog_threshold;
    let mut applied = false;
    let (record, stop) = instrumented_run(sim, config, |sim| {
        // The pre-injection prefix runs instrumented too: both streams
        // must cover the whole run for the diff to align from cycle 0.
        while sim.cpu().stats().cycles < injection.cycle {
            let e = sim.step();
            if e.is_halt() {
                return CoSimStop::Halted;
            }
            if let softsim_iss::Event::Fault(f) = e {
                return CoSimStop::Fault(f);
            }
        }
        applied = Injector::apply(sim, injection.kind);
        sim.set_watchdog(watchdog);
        sim.run(budget - sim.cpu().stats().cycles.min(budget))
    });
    let outcome = match &stop {
        CoSimStop::Halted if observe(sim) == golden.observed => Outcome::Masked,
        CoSimStop::Halted => Outcome::Sdc,
        CoSimStop::Deadlock { .. } | CoSimStop::CycleLimit { .. } => Outcome::Deadlock,
        CoSimStop::Fault(_) => Outcome::Fault,
    };
    let divergence = MetricsDiff::diff(&golden.record, &record);
    DivergenceReport { injection, applied, stop, outcome, divergence }
}

/// Attaches a fresh collector + recorder pair to `sim`, runs `body`,
/// and packages the instrumentation into a [`RunRecord`].
fn instrumented_run(
    sim: &mut CoSim,
    config: &LocalizeConfig,
    body: impl FnOnce(&mut CoSim) -> CoSimStop,
) -> (RunRecord, CoSimStop) {
    let collector = Rc::new(RefCell::new(MetricsCollector::new(config.window_cycles)));
    let recorder = Rc::new(RefCell::new(Recorder::new(config.recorder_capacity)));
    let fanout = Fanout::new().with(shared(collector.clone())).with(shared(recorder.clone()));
    sim.attach_trace(shared(Rc::new(RefCell::new(fanout))));
    let stop = body(sim);
    let dropped = recorder.borrow().dropped();
    let events = recorder.borrow().events();
    let mut collector = collector.borrow_mut();
    collector.finish(sim.cpu().stats().cycles);
    collector.set_dropped_events(dropped);
    let record = RunRecord { series: collector.series(), events, dropped_events: dropped };
    (record, stop)
}
