//! The fault-campaign runner.
//!
//! A campaign replays a co-simulation once fault-free (the *golden*
//! run) and then once per scheduled injection, each trial restored from
//! the same initial checkpoint so every run starts from byte-identical
//! state. Outcomes follow the standard SEU classification: *masked*
//! (program halts with the golden observables), *SDC* (silent data
//! corruption — halts with different observables), *deadlock* (the
//! liveness watchdog fired, or the padded cycle budget expired), and
//! *fault* (the processor trapped).
//!
//! Two further outcomes make long campaigns robust rather than brittle:
//! *budget* (an explicit per-trial cycle or wall-clock budget cancelled
//! a runaway trial — graceful degradation instead of an unbounded run)
//! and *harness-error* (the harness itself panicked inside the trial;
//! the panic is caught, optionally retried with exponential backoff,
//! and recorded — one bad trial can no longer poison a campaign or
//! tear down a worker thread).

use crate::inject::{Injection, Injector};
use softsim_cosim::{CoSim, CoSimState, CoSimStop};
use softsim_iss::CpuStats;
use softsim_metrics::telemetry::{SpanKind, SpanRecord, Telemetry};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// SEU outcome classification of one fault-injection trial.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// The program halted and the observed results match the golden run.
    Masked,
    /// Silent data corruption: halted, but the observables differ.
    Sdc,
    /// The watchdog detected a deadlock or livelock, or the padded cycle
    /// budget expired (classified together — the stored stop keeps the
    /// precise cause, including which FSL the processor was stuck on).
    Deadlock,
    /// The processor raised an architectural fault.
    Fault,
    /// An explicit per-trial budget — [`CampaignConfig::trial_cycle_budget`]
    /// or [`CampaignConfig::trial_wall_budget`] — cancelled the trial
    /// before the padded campaign budget would have. The design was
    /// still running; the harness chose to stop it.
    Budget,
    /// The harness itself panicked while running the trial (not the
    /// design under test — the simulated program trapping is
    /// [`Outcome::Fault`]). The panic was caught, the configured
    /// retries were exhausted, and the trial was abandoned; sibling
    /// trials are unaffected.
    HarnessError {
        /// The panic payload, when it was a string (the common case).
        panic_msg: String,
    },
}

impl Outcome {
    /// Short lower-case label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::Deadlock => "deadlock",
            Outcome::Fault => "fault",
            Outcome::Budget => "budget",
            Outcome::HarnessError { .. } => "harness-error",
        }
    }

    /// True for the four SEU design classifications (everything except
    /// the harness-side [`Outcome::Budget`] / [`Outcome::HarnessError`]).
    pub fn is_design_outcome(&self) -> bool {
        !matches!(self, Outcome::Budget | Outcome::HarnessError { .. })
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The record of one injection trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The scheduled fault.
    pub injection: Injection,
    /// Whether the fault actually changed state (vacuous hits — r0,
    /// empty FIFO slots — still run to completion and classify, almost
    /// always as masked).
    pub applied: bool,
    /// How the run ended.
    pub stop: CoSimStop,
    /// Outcome classification.
    pub outcome: Outcome,
    /// Harness retries this trial consumed (0 for the normal
    /// first-attempt success; panicking trials count every retry
    /// whether or not one eventually succeeded).
    pub retries: u32,
    /// Processor statistics at the end of the trial.
    pub cpu_stats: CpuStats,
    /// Hardware statistics at the end of the trial.
    pub hw_stats: softsim_cosim::HwStats,
}

/// Campaign tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Liveness-watchdog threshold armed for every trial (cycles with no
    /// retired instruction and no FIFO traffic).
    pub watchdog_threshold: u64,
    /// Trial cycle budget = `golden_cycles * budget_factor +
    /// budget_floor`. The padding guarantees a fault can only exceed the
    /// budget by stopping progress, which the watchdog reports first —
    /// so trials never end in an ambiguous bare `CycleLimit`.
    pub budget_factor: u64,
    /// Additive part of the trial cycle budget.
    pub budget_floor: u64,
    /// Arm stall fast-forwarding on the simulator for the golden run and
    /// every trial (see [`CoSim::set_fast_forward`]). Statistics and
    /// classifications are bit-identical either way; deadlock-bound
    /// trials just stop burning one step per watchdog cycle. On by
    /// default.
    pub fast_forward: bool,
    /// Explicit per-trial cycle budget, counted from the injection
    /// point. A trial still running this many cycles after its fault
    /// was applied is cancelled and classified [`Outcome::Budget`]
    /// (deterministically — the cap composes with the watchdog and the
    /// padded budget, whichever fires first wins). `None` (the default)
    /// keeps the legacy behavior: only the padded budget bounds a
    /// trial, and its expiry still classifies as [`Outcome::Deadlock`].
    pub trial_cycle_budget: Option<u64>,
    /// Wall-clock budget per trial, measured from the injection point.
    /// Runaway trials are cancelled into [`Outcome::Budget`] at the
    /// next execution-slice boundary. Inherently machine-dependent —
    /// leave `None` (the default) for byte-reproducible reports; the
    /// deterministic alternative is [`CampaignConfig::trial_cycle_budget`].
    pub trial_wall_budget: Option<Duration>,
    /// Harness-panic retries per trial before the trial is abandoned as
    /// [`Outcome::HarnessError`]. Retries target *transient* harness
    /// failures; a deterministic panic (e.g.
    /// [`crate::FaultKind::HarnessPanic`]) fails every attempt and is
    /// abandoned after this many extra tries.
    pub max_trial_retries: u32,
    /// Base delay of the bounded exponential backoff between harness
    /// retries (doubled per attempt). `Duration::ZERO` (the default)
    /// retries immediately.
    pub retry_backoff: Duration,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            watchdog_threshold: 10_000,
            budget_factor: 4,
            budget_floor: 50_000,
            fast_forward: true,
            trial_cycle_budget: None,
            trial_wall_budget: None,
            max_trial_retries: 1,
            retry_backoff: Duration::ZERO,
        }
    }
}

/// Coverage accounting of a campaign — the honest-partial-results view
/// a durable (resumable) run reports. Derived entirely from the trial
/// records, so a resumed report and an uninterrupted one always agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Coverage {
    /// Trials with a design classification (masked / SDC / deadlock /
    /// fault).
    pub completed: usize,
    /// Trials an explicit cycle or wall-clock budget cancelled.
    pub budget: usize,
    /// Trials abandoned after harness panics exhausted their retries.
    pub abandoned: usize,
    /// Trials that consumed at least one harness retry (whatever their
    /// final outcome).
    pub retried: usize,
    /// Total harness retry attempts consumed across all trials (a
    /// trial retried twice contributes 2 here but 1 to `retried`).
    /// Deterministic — the wall-clock cost of those retries is
    /// telemetry, not report data (see `softsim_metrics::telemetry`).
    pub retry_attempts: usize,
}

/// The result of a whole campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Cycles the golden (fault-free) run took to halt.
    pub golden_cycles: u64,
    /// Observables of the golden run.
    pub golden_observed: Vec<u32>,
    /// One record per scheduled injection, schedule order.
    pub trials: Vec<Trial>,
}

impl CampaignReport {
    /// Trial counts as `(masked, sdc, deadlock, fault)` — the four SEU
    /// design classes. Harness-side outcomes ([`Outcome::Budget`],
    /// [`Outcome::HarnessError`]) are not design classes and are
    /// reported by [`CampaignReport::coverage`] instead.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for t in &self.trials {
            match t.outcome {
                Outcome::Masked => c.0 += 1,
                Outcome::Sdc => c.1 += 1,
                Outcome::Deadlock => c.2 += 1,
                Outcome::Fault => c.3 += 1,
                Outcome::Budget | Outcome::HarnessError { .. } => {}
            }
        }
        c
    }

    /// Completed / budget-cancelled / abandoned / retried accounting.
    pub fn coverage(&self) -> Coverage {
        let mut c = Coverage::default();
        for t in &self.trials {
            match t.outcome {
                Outcome::Budget => c.budget += 1,
                Outcome::HarnessError { .. } => c.abandoned += 1,
                _ => c.completed += 1,
            }
            if t.retries > 0 {
                c.retried += 1;
            }
            c.retry_attempts += t.retries as usize;
        }
        c
    }

    /// Plain-text summary table of the campaign.
    pub fn text(&self, title: &str) -> String {
        use std::fmt::Write;
        let (masked, sdc, deadlock, fault) = self.counts();
        let cov = self.coverage();
        let total = self.trials.len().max(1);
        let pct = |n: usize| 100.0 * n as f64 / total as f64;
        let mut s = String::new();
        let _ = writeln!(s, "fault campaign: {title}");
        let _ = writeln!(
            s,
            "  golden run: {} cycles, {} result words",
            self.golden_cycles,
            self.golden_observed.len()
        );
        let _ = writeln!(s, "  trials: {}", self.trials.len());
        let _ = writeln!(s, "    masked:   {masked:5}  ({:5.1}%)", pct(masked));
        let _ = writeln!(s, "    sdc:      {sdc:5}  ({:5.1}%)", pct(sdc));
        let _ = writeln!(s, "    deadlock: {deadlock:5}  ({:5.1}%)", pct(deadlock));
        let _ = writeln!(s, "    fault:    {fault:5}  ({:5.1}%)", pct(fault));
        if cov.budget > 0 {
            let _ = writeln!(s, "    budget:   {:5}  ({:5.1}%)", cov.budget, pct(cov.budget));
        }
        if cov.abandoned > 0 {
            let _ = writeln!(s, "    harness:  {:5}  ({:5.1}%)", cov.abandoned, pct(cov.abandoned));
        }
        let _ = writeln!(
            s,
            "  coverage: {} completed, {} budget-cancelled, {} abandoned, {} retried ({} retry attempts)",
            cov.completed, cov.budget, cov.abandoned, cov.retried, cov.retry_attempts
        );
        s
    }
}

/// Runs a fault-injection campaign.
///
/// `sim` is the system under test, positioned at its initial state (it
/// is checkpointed immediately, and restored from that checkpoint for
/// the golden run and before every trial). `observe` extracts the
/// workload's observable result words from a finished run — typically
/// the output buffer in local memory.
///
/// Every trial: restore the initial checkpoint, step to the injection
/// cycle, apply the fault, arm the watchdog, run under the padded
/// budget, classify. A trial that panics the harness is caught and
/// classified [`Outcome::HarnessError`] — subsequent trials still run.
/// The whole procedure is deterministic (wall-clock budgets aside): an
/// identical `sim`, `plan` and `observe` produce a byte-identical
/// report.
///
/// # Panics
/// Panics if the golden run does not halt within the configured budget
/// floor times the factor (the workload must terminate fault-free).
pub fn run_campaign(
    sim: &mut CoSim,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32>,
    config: CampaignConfig,
) -> CampaignReport {
    run_campaign_with_telemetry(sim, plan, observe, config, None)
}

/// [`run_campaign`] with optional harness telemetry. The report is
/// byte-identical whether `telemetry` is `None` or `Some` — spans carry
/// wall-clock data out-of-band (golden span, one trial span per
/// injection, one campaign span), never into the report.
pub fn run_campaign_with_telemetry(
    sim: &mut CoSim,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32>,
    config: CampaignConfig,
    telemetry: Option<&Telemetry>,
) -> CampaignReport {
    let campaign_start = telemetry.map(|t| {
        t.expect_trials(plan.len() as u64);
        Instant::now()
    });
    let prev_fast_forward = sim.fast_forward();
    sim.set_fast_forward(config.fast_forward);
    let initial = sim.save_state();
    let initial_cycles = sim.cpu().stats().cycles;
    let golden_start = telemetry.map(|_| Instant::now());
    let (golden_cycles, golden_observed, budget) = golden_run(sim, &observe, config);
    if let Some(t) = telemetry {
        let mut rec = SpanRecord::new(SpanKind::Golden, 0, golden_start.unwrap().elapsed());
        rec.sim_cycles = golden_cycles.saturating_sub(initial_cycles);
        t.record(rec);
    }
    let scope = telemetry.map(|t| TrialScope { telemetry: t, worker: 0, initial_cycles });

    let mut trials = Vec::with_capacity(plan.len());
    for &injection in plan {
        trials.push(run_trial_guarded(
            sim,
            None,
            &initial,
            injection,
            budget,
            &golden_observed,
            &observe,
            config,
            scope.as_ref(),
        ));
    }
    sim.load_state(&initial);
    sim.clear_watchdog();
    sim.set_fast_forward(prev_fast_forward);
    if let (Some(t), Some(start)) = (telemetry, campaign_start) {
        t.record(SpanRecord::new(SpanKind::Campaign, 0, start.elapsed()));
    }
    CampaignReport { golden_cycles, golden_observed, trials }
}

/// Runs a fault-injection campaign on worker threads.
///
/// Byte-identical to [`run_campaign`] with the same plan, configuration
/// and workload: every trial is independent given the shared initial
/// checkpoint and the golden reference, each worker runs the same
/// per-trial procedure ([`run_trial`] is shared between the serial and
/// parallel runners), and results are merged in plan order — so the
/// report, and any text rendered from it, does not depend on `workers`
/// or on thread scheduling.
///
/// `make_sim` builds one fresh co-simulator per worker (a [`CoSim`]
/// holds non-`Send` observers, so simulators cannot migrate across
/// threads); each must have the same image and peripheral shape. The
/// golden run executes once, on the calling thread. A trial that
/// panics the harness is caught inside the worker and classified
/// [`Outcome::HarnessError`] — the worker rebuilds its simulator via
/// `make_sim` and keeps draining its share of the plan.
///
/// # Panics
/// Panics if the golden run does not halt within the configured budget
/// floor times the factor, or if `make_sim` builds a simulator whose
/// shape does not match the checkpoint.
pub fn run_campaign_parallel(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    config: CampaignConfig,
    workers: usize,
) -> CampaignReport {
    run_campaign_parallel_with_telemetry(make_sim, plan, observe, config, workers, None)
}

/// [`run_campaign_parallel`] with optional harness telemetry: each
/// worker records one trial span per plan entry it drains (worker ids
/// follow chunk order, so worker `w` covers `plan[w*chunk..]`). The
/// report stays byte-identical for any `telemetry`/`workers` choice.
pub fn run_campaign_parallel_with_telemetry(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    config: CampaignConfig,
    workers: usize,
    telemetry: Option<&Telemetry>,
) -> CampaignReport {
    let campaign_start = telemetry.map(|t| {
        t.expect_trials(plan.len() as u64);
        Instant::now()
    });
    let mut sim = make_sim();
    sim.set_fast_forward(config.fast_forward);
    let initial = sim.save_state();
    let initial_cycles = sim.cpu().stats().cycles;
    let golden_start = telemetry.map(|_| Instant::now());
    let (golden_cycles, golden_observed, budget) = golden_run(&mut sim, &observe, config);
    if let Some(t) = telemetry {
        let mut rec = SpanRecord::new(SpanKind::Golden, 0, golden_start.unwrap().elapsed());
        rec.sim_cycles = golden_cycles.saturating_sub(initial_cycles);
        t.record(rec);
    }
    drop(sim);

    let workers = workers.clamp(1, plan.len().max(1));
    let mut trials: Vec<Option<Trial>> = vec![None; plan.len()];
    std::thread::scope(|scope| {
        // Contiguous chunks: worker w gets plan[w*chunk .. (w+1)*chunk]
        // and writes into the matching result slots, so the merge below
        // is a plain unwrap in plan order.
        let chunk = plan.len().div_ceil(workers);
        let mut slots = trials.as_mut_slice();
        let mut rest = plan;
        let (initial, golden_observed) = (&initial, &golden_observed);
        let (make_sim, observe) = (&make_sim, &observe);
        let mut worker_id: u32 = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (plan_chunk, plan_rest) = rest.split_at(take);
            let (slot_chunk, slot_rest) = slots.split_at_mut(take);
            rest = plan_rest;
            slots = slot_rest;
            let worker = worker_id;
            worker_id += 1;
            scope.spawn(move || {
                let mut sim = make_sim();
                sim.set_fast_forward(config.fast_forward);
                let rebuild: &dyn Fn() -> CoSim = make_sim;
                let scope_rec =
                    telemetry.map(|t| TrialScope { telemetry: t, worker, initial_cycles });
                for (slot, &injection) in slot_chunk.iter_mut().zip(plan_chunk) {
                    *slot = Some(run_trial_guarded(
                        &mut sim,
                        Some(rebuild),
                        initial,
                        injection,
                        budget,
                        golden_observed,
                        observe,
                        config,
                        scope_rec.as_ref(),
                    ));
                }
            });
        }
    });
    let trials = trials.into_iter().map(|t| t.expect("worker filled every slot")).collect();
    if let (Some(t), Some(start)) = (telemetry, campaign_start) {
        t.record(SpanRecord::new(SpanKind::Campaign, 0, start.elapsed()));
    }
    CampaignReport { golden_cycles, golden_observed, trials }
}

/// The golden (fault-free) reference run: returns its cycle count, its
/// observables and the padded per-trial budget derived from it.
pub(crate) fn golden_run(
    sim: &mut CoSim,
    observe: &impl Fn(&CoSim) -> Vec<u32>,
    config: CampaignConfig,
) -> (u64, Vec<u32>, u64) {
    let golden_budget = config.budget_floor * config.budget_factor.max(1);
    let stop = sim.run(golden_budget);
    assert_eq!(stop, CoSimStop::Halted, "golden run must halt, got: {stop}");
    let golden_cycles = sim.cpu().stats().cycles;
    let golden_observed = observe(sim);
    let budget = golden_cycles * config.budget_factor + config.budget_floor;
    (golden_cycles, golden_observed, budget)
}

/// Best-effort string rendering of a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execution-slice width (cycles) used when a wall-clock deadline is
/// armed: the deadline is checked between slices, so a runaway trial is
/// cancelled within one slice of the deadline. Slicing is invisible to
/// the simulation (`run(a)` then `run(b)` is bit-identical to
/// `run(a + b)`), so arming a wall budget never changes what a trial
/// that finishes in time computes.
const WALL_SLICE: u64 = 16_384;

/// Telemetry context one worker threads through its trials: the hub,
/// the worker's id, and the cycle counter value of the initial
/// checkpoint (subtracted from a trial's final cycle counter so the
/// span carries cycles *executed*, matching the report exactly).
pub(crate) struct TrialScope<'a> {
    pub telemetry: &'a Telemetry,
    pub worker: u32,
    pub initial_cycles: u64,
}

impl TrialScope<'_> {
    /// Closes one trial span. `first_attempt_end` marks the end of the
    /// first attempt, so everything after it — backoff sleeps included —
    /// is retry wall-time. Fast-forward counters are deltas against the
    /// worker's simulator (saturating: a rebuild after a panic resets
    /// them).
    fn record_trial(
        &self,
        sim: &CoSim,
        trial: &Trial,
        start: Instant,
        first_attempt_end: Instant,
        ff0: u64,
        ffc0: u64,
    ) {
        let mut rec = SpanRecord::new(SpanKind::Trial, self.worker, start.elapsed());
        rec.sim_cycles = trial.cpu_stats.cycles.saturating_sub(self.initial_cycles);
        rec.retries = trial.retries as u64;
        rec.retry_wall =
            if trial.retries > 0 { first_attempt_end.elapsed() } else { Duration::ZERO };
        rec.budget_cancelled = matches!(trial.outcome, Outcome::Budget) as u64;
        rec.abandoned = matches!(trial.outcome, Outcome::HarnessError { .. }) as u64;
        rec.ff_engagements = sim.ff_engagements().saturating_sub(ff0);
        rec.ff_skipped_cycles = sim.ff_skipped_cycles().saturating_sub(ffc0);
        self.telemetry.record(rec);
    }
}

/// [`run_trial`] wrapped in [`catch_unwind`]: a panicking trial is
/// retried up to `config.max_trial_retries` times with bounded
/// exponential backoff, then abandoned as [`Outcome::HarnessError`].
/// `rebuild` (the parallel runners' `make_sim`) replaces a simulator
/// the panic may have left inconsistent; the serial runner passes
/// `None` and relies on the next trial's checkpoint restore.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_trial_guarded(
    sim: &mut CoSim,
    rebuild: Option<&dyn Fn() -> CoSim>,
    initial: &CoSimState,
    injection: Injection,
    budget: u64,
    golden_observed: &[u32],
    observe: &(impl Fn(&CoSim) -> Vec<u32> + ?Sized),
    config: CampaignConfig,
    scope: Option<&TrialScope<'_>>,
) -> Trial {
    let start = scope.map(|_| Instant::now());
    let ff0 = sim.ff_engagements();
    let ffc0 = sim.ff_skipped_cycles();
    let mut first_attempt_end: Option<Instant> = None;
    let mut attempt = 0u32;
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_trial(sim, initial, injection, budget, golden_observed, observe, config)
        }));
        if scope.is_some() && first_attempt_end.is_none() {
            first_attempt_end = Some(Instant::now());
        }
        match result {
            Ok(mut trial) => {
                trial.retries = attempt;
                if let Some(sc) = scope {
                    sc.record_trial(
                        sim,
                        &trial,
                        start.unwrap(),
                        first_attempt_end.unwrap(),
                        ff0,
                        ffc0,
                    );
                }
                return trial;
            }
            Err(payload) => {
                let panic_msg = panic_message(payload);
                if let Some(make) = rebuild {
                    // The panic may have unwound mid-step; a fresh
                    // simulator is the only state guaranteed clean.
                    *sim = make();
                    sim.set_fast_forward(config.fast_forward);
                }
                if attempt >= config.max_trial_retries {
                    let trial = Trial {
                        injection,
                        applied: false,
                        stop: CoSimStop::CycleLimit { blocked: None },
                        outcome: Outcome::HarnessError { panic_msg },
                        retries: attempt,
                        cpu_stats: CpuStats::default(),
                        hw_stats: softsim_cosim::HwStats::default(),
                    };
                    if let Some(sc) = scope {
                        sc.record_trial(
                            sim,
                            &trial,
                            start.unwrap(),
                            first_attempt_end.unwrap(),
                            ff0,
                            ffc0,
                        );
                    }
                    return trial;
                }
                let backoff = config.retry_backoff.saturating_mul(1u32 << attempt.min(16));
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                attempt += 1;
            }
        }
    }
}

/// One injection trial, the procedure both runners share: restore the
/// initial checkpoint, run to the injection cycle (a fault this early is
/// impossible fault-free, but cheap to guard), apply the fault, arm the
/// watchdog, run under the padded budget — tightened by the explicit
/// per-trial budgets when configured — and classify.
fn run_trial(
    sim: &mut CoSim,
    initial: &CoSimState,
    injection: Injection,
    budget: u64,
    golden_observed: &[u32],
    observe: &(impl Fn(&CoSim) -> Vec<u32> + ?Sized),
    config: CampaignConfig,
) -> Trial {
    sim.load_state(initial);
    // The pre-injection prefix must replay the golden prefix exactly, so
    // no watchdog (the previous trial's stays armed across restore) and
    // a budget that stops precisely at the injection cycle.
    sim.clear_watchdog();
    let pre_budget = injection.cycle.saturating_sub(sim.cpu().stats().cycles);
    let early_stop = match sim.run(pre_budget) {
        CoSimStop::CycleLimit { .. } => None,
        stop => Some(stop),
    };
    let (applied, stop, budget_cancelled) = match early_stop {
        Some(stop) => (false, stop, false),
        None => {
            let applied = Injector::apply(sim, injection.kind);
            sim.set_watchdog(config.watchdog_threshold);
            let deadline = config.trial_wall_budget.map(|d| Instant::now() + d);
            // Absolute-cycle cap: the padded campaign budget, tightened
            // by the explicit per-trial budget counted from injection.
            let cap = match config.trial_cycle_budget {
                Some(tcb) => budget.min(sim.cpu().stats().cycles.saturating_add(tcb)),
                None => budget,
            };
            let (stop, cancelled) = run_capped(sim, cap, cap < budget, deadline);
            (applied, stop, cancelled)
        }
    };
    let outcome = match &stop {
        CoSimStop::Halted if observe(sim) == golden_observed => Outcome::Masked,
        CoSimStop::Halted => Outcome::Sdc,
        CoSimStop::CycleLimit { .. } if budget_cancelled => Outcome::Budget,
        CoSimStop::Deadlock { .. } | CoSimStop::CycleLimit { .. } => Outcome::Deadlock,
        CoSimStop::Fault(_) => Outcome::Fault,
    };
    Trial {
        injection,
        applied,
        stop,
        outcome,
        retries: 0,
        cpu_stats: sim.cpu().stats(),
        hw_stats: sim.hw_stats(),
    }
}

/// Runs `sim` to the absolute cycle `cap`, checking an optional
/// wall-clock `deadline` between [`WALL_SLICE`]-cycle slices. Returns
/// the stop plus whether an explicit budget (cycle cap tighter than the
/// padded campaign budget, flagged by `cap_is_trial_budget`, or the
/// wall deadline) cancelled the run.
fn run_capped(
    sim: &mut CoSim,
    cap: u64,
    cap_is_trial_budget: bool,
    deadline: Option<Instant>,
) -> (CoSimStop, bool) {
    loop {
        // The deadline is checked before each slice as well as after it,
        // so a trial whose wall budget has already expired — including
        // one about to fast-forward a stall the watchdog would later
        // diagnose — is cancelled as a budget hit at the slice boundary.
        // A stop the simulator reaches *inside* a slice (halt, diagnosed
        // deadlock, fault) still wins over a deadline that expires
        // during that same slice.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return (CoSimStop::CycleLimit { blocked: None }, true);
        }
        let now = sim.cpu().stats().cycles;
        if now >= cap {
            return (CoSimStop::CycleLimit { blocked: None }, cap_is_trial_budget);
        }
        let slice = match deadline {
            Some(_) => (cap - now).min(WALL_SLICE),
            None => cap - now,
        };
        match sim.run(slice) {
            CoSimStop::CycleLimit { blocked } => {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return (CoSimStop::CycleLimit { blocked }, true);
                }
                if sim.cpu().stats().cycles >= cap {
                    return (CoSimStop::CycleLimit { blocked }, cap_is_trial_budget);
                }
            }
            stop => return (stop, false),
        }
    }
}
