//! The fault-campaign runner.
//!
//! A campaign replays a co-simulation once fault-free (the *golden*
//! run) and then once per scheduled injection, each trial restored from
//! the same initial checkpoint so every run starts from byte-identical
//! state. Outcomes follow the standard SEU classification: *masked*
//! (program halts with the golden observables), *SDC* (silent data
//! corruption — halts with different observables), *deadlock* (the
//! liveness watchdog fired, or the padded cycle budget expired), and
//! *fault* (the processor trapped).

use crate::inject::{Injection, Injector};
use softsim_cosim::{CoSim, CoSimStop};
use softsim_iss::CpuStats;

/// SEU outcome classification of one fault-injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// The program halted and the observed results match the golden run.
    Masked,
    /// Silent data corruption: halted, but the observables differ.
    Sdc,
    /// The watchdog detected a deadlock or livelock, or the padded cycle
    /// budget expired (classified together — the stored stop keeps the
    /// precise cause, including which FSL the processor was stuck on).
    Deadlock,
    /// The processor raised an architectural fault.
    Fault,
}

impl Outcome {
    /// Short lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::Deadlock => "deadlock",
            Outcome::Fault => "fault",
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The record of one injection trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The scheduled fault.
    pub injection: Injection,
    /// Whether the fault actually changed state (vacuous hits — r0,
    /// empty FIFO slots — still run to completion and classify, almost
    /// always as masked).
    pub applied: bool,
    /// How the run ended.
    pub stop: CoSimStop,
    /// Outcome classification.
    pub outcome: Outcome,
    /// Processor statistics at the end of the trial.
    pub cpu_stats: CpuStats,
    /// Hardware statistics at the end of the trial.
    pub hw_stats: softsim_cosim::HwStats,
}

/// Campaign tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Liveness-watchdog threshold armed for every trial (cycles with no
    /// retired instruction and no FIFO traffic).
    pub watchdog_threshold: u64,
    /// Trial cycle budget = `golden_cycles * budget_factor +
    /// budget_floor`. The padding guarantees a fault can only exceed the
    /// budget by stopping progress, which the watchdog reports first —
    /// so trials never end in an ambiguous bare `CycleLimit`.
    pub budget_factor: u64,
    /// Additive part of the trial cycle budget.
    pub budget_floor: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig { watchdog_threshold: 10_000, budget_factor: 4, budget_floor: 50_000 }
    }
}

/// The result of a whole campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Cycles the golden (fault-free) run took to halt.
    pub golden_cycles: u64,
    /// Observables of the golden run.
    pub golden_observed: Vec<u32>,
    /// One record per scheduled injection, schedule order.
    pub trials: Vec<Trial>,
}

impl CampaignReport {
    /// Trial counts as `(masked, sdc, deadlock, fault)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for t in &self.trials {
            match t.outcome {
                Outcome::Masked => c.0 += 1,
                Outcome::Sdc => c.1 += 1,
                Outcome::Deadlock => c.2 += 1,
                Outcome::Fault => c.3 += 1,
            }
        }
        c
    }

    /// Plain-text summary table of the campaign.
    pub fn text(&self, title: &str) -> String {
        use std::fmt::Write;
        let (masked, sdc, deadlock, fault) = self.counts();
        let total = self.trials.len().max(1);
        let pct = |n: usize| 100.0 * n as f64 / total as f64;
        let mut s = String::new();
        let _ = writeln!(s, "fault campaign: {title}");
        let _ = writeln!(
            s,
            "  golden run: {} cycles, {} result words",
            self.golden_cycles,
            self.golden_observed.len()
        );
        let _ = writeln!(s, "  trials: {}", self.trials.len());
        let _ = writeln!(s, "    masked:   {masked:5}  ({:5.1}%)", pct(masked));
        let _ = writeln!(s, "    sdc:      {sdc:5}  ({:5.1}%)", pct(sdc));
        let _ = writeln!(s, "    deadlock: {deadlock:5}  ({:5.1}%)", pct(deadlock));
        let _ = writeln!(s, "    fault:    {fault:5}  ({:5.1}%)", pct(fault));
        s
    }
}

/// Runs a fault-injection campaign.
///
/// `sim` is the system under test, positioned at its initial state (it
/// is checkpointed immediately, and restored from that checkpoint for
/// the golden run and before every trial). `observe` extracts the
/// workload's observable result words from a finished run — typically
/// the output buffer in local memory.
///
/// Every trial: restore the initial checkpoint, step to the injection
/// cycle, apply the fault, arm the watchdog, run under the padded
/// budget, classify. The whole procedure is deterministic: an identical
/// `sim`, `plan` and `observe` produce a byte-identical report.
///
/// # Panics
/// Panics if the golden run does not halt within the configured budget
/// floor times the factor (the workload must terminate fault-free).
pub fn run_campaign(
    sim: &mut CoSim,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32>,
    config: CampaignConfig,
) -> CampaignReport {
    let initial = sim.save_state();

    // Golden run: fault-free reference for cycle count and observables.
    let golden_budget = config.budget_floor * config.budget_factor.max(1);
    let stop = sim.run(golden_budget);
    assert_eq!(stop, CoSimStop::Halted, "golden run must halt, got: {stop}");
    let golden_cycles = sim.cpu().stats().cycles;
    let golden_observed = observe(sim);
    let budget = golden_cycles * config.budget_factor + config.budget_floor;

    let mut trials = Vec::with_capacity(plan.len());
    for &injection in plan {
        sim.load_state(&initial);
        // Step to the injection point; a fault this early (impossible
        // fault-free, but cheap to guard) ends the trial immediately.
        let mut early_stop = None;
        while sim.cpu().stats().cycles < injection.cycle {
            let e = sim.step();
            if e.is_halt() {
                early_stop = Some(CoSimStop::Halted);
                break;
            }
            if let softsim_iss::Event::Fault(f) = e {
                early_stop = Some(CoSimStop::Fault(f));
                break;
            }
        }
        let (applied, stop) = match early_stop {
            Some(stop) => (false, stop),
            None => {
                let applied = Injector::apply(sim, injection.kind);
                sim.set_watchdog(config.watchdog_threshold);
                (applied, sim.run(budget - sim.cpu().stats().cycles.min(budget)))
            }
        };
        let outcome = match &stop {
            CoSimStop::Halted if observe(sim) == golden_observed => Outcome::Masked,
            CoSimStop::Halted => Outcome::Sdc,
            CoSimStop::Deadlock { .. } | CoSimStop::CycleLimit { .. } => Outcome::Deadlock,
            CoSimStop::Fault(_) => Outcome::Fault,
        };
        trials.push(Trial {
            injection,
            applied,
            stop,
            outcome,
            cpu_stats: sim.cpu().stats(),
            hw_stats: sim.hw_stats(),
        });
    }
    sim.load_state(&initial);
    CampaignReport { golden_cycles, golden_observed, trials }
}
