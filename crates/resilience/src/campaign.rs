//! The fault-campaign runner.
//!
//! A campaign replays a co-simulation once fault-free (the *golden*
//! run) and then once per scheduled injection, each trial restored from
//! the same initial checkpoint so every run starts from byte-identical
//! state. Outcomes follow the standard SEU classification: *masked*
//! (program halts with the golden observables), *SDC* (silent data
//! corruption — halts with different observables), *deadlock* (the
//! liveness watchdog fired, or the padded cycle budget expired), and
//! *fault* (the processor trapped).

use crate::inject::{Injection, Injector};
use softsim_cosim::{CoSim, CoSimState, CoSimStop};
use softsim_iss::CpuStats;

/// SEU outcome classification of one fault-injection trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// The program halted and the observed results match the golden run.
    Masked,
    /// Silent data corruption: halted, but the observables differ.
    Sdc,
    /// The watchdog detected a deadlock or livelock, or the padded cycle
    /// budget expired (classified together — the stored stop keeps the
    /// precise cause, including which FSL the processor was stuck on).
    Deadlock,
    /// The processor raised an architectural fault.
    Fault,
}

impl Outcome {
    /// Short lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Masked => "masked",
            Outcome::Sdc => "sdc",
            Outcome::Deadlock => "deadlock",
            Outcome::Fault => "fault",
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The record of one injection trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The scheduled fault.
    pub injection: Injection,
    /// Whether the fault actually changed state (vacuous hits — r0,
    /// empty FIFO slots — still run to completion and classify, almost
    /// always as masked).
    pub applied: bool,
    /// How the run ended.
    pub stop: CoSimStop,
    /// Outcome classification.
    pub outcome: Outcome,
    /// Processor statistics at the end of the trial.
    pub cpu_stats: CpuStats,
    /// Hardware statistics at the end of the trial.
    pub hw_stats: softsim_cosim::HwStats,
}

/// Campaign tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Liveness-watchdog threshold armed for every trial (cycles with no
    /// retired instruction and no FIFO traffic).
    pub watchdog_threshold: u64,
    /// Trial cycle budget = `golden_cycles * budget_factor +
    /// budget_floor`. The padding guarantees a fault can only exceed the
    /// budget by stopping progress, which the watchdog reports first —
    /// so trials never end in an ambiguous bare `CycleLimit`.
    pub budget_factor: u64,
    /// Additive part of the trial cycle budget.
    pub budget_floor: u64,
    /// Arm stall fast-forwarding on the simulator for the golden run and
    /// every trial (see [`CoSim::set_fast_forward`]). Statistics and
    /// classifications are bit-identical either way; deadlock-bound
    /// trials just stop burning one step per watchdog cycle. On by
    /// default.
    pub fast_forward: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            watchdog_threshold: 10_000,
            budget_factor: 4,
            budget_floor: 50_000,
            fast_forward: true,
        }
    }
}

/// The result of a whole campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Cycles the golden (fault-free) run took to halt.
    pub golden_cycles: u64,
    /// Observables of the golden run.
    pub golden_observed: Vec<u32>,
    /// One record per scheduled injection, schedule order.
    pub trials: Vec<Trial>,
}

impl CampaignReport {
    /// Trial counts as `(masked, sdc, deadlock, fault)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for t in &self.trials {
            match t.outcome {
                Outcome::Masked => c.0 += 1,
                Outcome::Sdc => c.1 += 1,
                Outcome::Deadlock => c.2 += 1,
                Outcome::Fault => c.3 += 1,
            }
        }
        c
    }

    /// Plain-text summary table of the campaign.
    pub fn text(&self, title: &str) -> String {
        use std::fmt::Write;
        let (masked, sdc, deadlock, fault) = self.counts();
        let total = self.trials.len().max(1);
        let pct = |n: usize| 100.0 * n as f64 / total as f64;
        let mut s = String::new();
        let _ = writeln!(s, "fault campaign: {title}");
        let _ = writeln!(
            s,
            "  golden run: {} cycles, {} result words",
            self.golden_cycles,
            self.golden_observed.len()
        );
        let _ = writeln!(s, "  trials: {}", self.trials.len());
        let _ = writeln!(s, "    masked:   {masked:5}  ({:5.1}%)", pct(masked));
        let _ = writeln!(s, "    sdc:      {sdc:5}  ({:5.1}%)", pct(sdc));
        let _ = writeln!(s, "    deadlock: {deadlock:5}  ({:5.1}%)", pct(deadlock));
        let _ = writeln!(s, "    fault:    {fault:5}  ({:5.1}%)", pct(fault));
        s
    }
}

/// Runs a fault-injection campaign.
///
/// `sim` is the system under test, positioned at its initial state (it
/// is checkpointed immediately, and restored from that checkpoint for
/// the golden run and before every trial). `observe` extracts the
/// workload's observable result words from a finished run — typically
/// the output buffer in local memory.
///
/// Every trial: restore the initial checkpoint, step to the injection
/// cycle, apply the fault, arm the watchdog, run under the padded
/// budget, classify. The whole procedure is deterministic: an identical
/// `sim`, `plan` and `observe` produce a byte-identical report.
///
/// # Panics
/// Panics if the golden run does not halt within the configured budget
/// floor times the factor (the workload must terminate fault-free).
pub fn run_campaign(
    sim: &mut CoSim,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32>,
    config: CampaignConfig,
) -> CampaignReport {
    let prev_fast_forward = sim.fast_forward();
    sim.set_fast_forward(config.fast_forward);
    let initial = sim.save_state();
    let (golden_cycles, golden_observed, budget) = golden_run(sim, &observe, config);

    let mut trials = Vec::with_capacity(plan.len());
    for &injection in plan {
        trials.push(run_trial(
            sim,
            &initial,
            injection,
            budget,
            &golden_observed,
            &observe,
            config,
        ));
    }
    sim.load_state(&initial);
    sim.clear_watchdog();
    sim.set_fast_forward(prev_fast_forward);
    CampaignReport { golden_cycles, golden_observed, trials }
}

/// Runs a fault-injection campaign on worker threads.
///
/// Byte-identical to [`run_campaign`] with the same plan, configuration
/// and workload: every trial is independent given the shared initial
/// checkpoint and the golden reference, each worker runs the same
/// per-trial procedure ([`run_trial`] is shared between the serial and
/// parallel runners), and results are merged in plan order — so the
/// report, and any text rendered from it, does not depend on `workers`
/// or on thread scheduling.
///
/// `make_sim` builds one fresh co-simulator per worker (a [`CoSim`]
/// holds non-`Send` observers, so simulators cannot migrate across
/// threads); each must have the same image and peripheral shape. The
/// golden run executes once, on the calling thread.
///
/// # Panics
/// Panics if the golden run does not halt within the configured budget
/// floor times the factor, or if `make_sim` builds a simulator whose
/// shape does not match the checkpoint.
pub fn run_campaign_parallel(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    config: CampaignConfig,
    workers: usize,
) -> CampaignReport {
    let mut sim = make_sim();
    sim.set_fast_forward(config.fast_forward);
    let initial = sim.save_state();
    let (golden_cycles, golden_observed, budget) = golden_run(&mut sim, &observe, config);
    drop(sim);

    let workers = workers.clamp(1, plan.len().max(1));
    let mut trials: Vec<Option<Trial>> = vec![None; plan.len()];
    std::thread::scope(|scope| {
        // Contiguous chunks: worker w gets plan[w*chunk .. (w+1)*chunk]
        // and writes into the matching result slots, so the merge below
        // is a plain unwrap in plan order.
        let chunk = plan.len().div_ceil(workers);
        let mut slots = trials.as_mut_slice();
        let mut rest = plan;
        let (initial, golden_observed) = (&initial, &golden_observed);
        let (make_sim, observe) = (&make_sim, &observe);
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (plan_chunk, plan_rest) = rest.split_at(take);
            let (slot_chunk, slot_rest) = slots.split_at_mut(take);
            rest = plan_rest;
            slots = slot_rest;
            scope.spawn(move || {
                let mut sim = make_sim();
                sim.set_fast_forward(config.fast_forward);
                for (slot, &injection) in slot_chunk.iter_mut().zip(plan_chunk) {
                    *slot = Some(run_trial(
                        &mut sim,
                        initial,
                        injection,
                        budget,
                        golden_observed,
                        observe,
                        config,
                    ));
                }
            });
        }
    });
    let trials = trials.into_iter().map(|t| t.expect("worker filled every slot")).collect();
    CampaignReport { golden_cycles, golden_observed, trials }
}

/// The golden (fault-free) reference run: returns its cycle count, its
/// observables and the padded per-trial budget derived from it.
fn golden_run(
    sim: &mut CoSim,
    observe: &impl Fn(&CoSim) -> Vec<u32>,
    config: CampaignConfig,
) -> (u64, Vec<u32>, u64) {
    let golden_budget = config.budget_floor * config.budget_factor.max(1);
    let stop = sim.run(golden_budget);
    assert_eq!(stop, CoSimStop::Halted, "golden run must halt, got: {stop}");
    let golden_cycles = sim.cpu().stats().cycles;
    let golden_observed = observe(sim);
    let budget = golden_cycles * config.budget_factor + config.budget_floor;
    (golden_cycles, golden_observed, budget)
}

/// One injection trial, the procedure both runners share: restore the
/// initial checkpoint, run to the injection cycle (a fault this early is
/// impossible fault-free, but cheap to guard), apply the fault, arm the
/// watchdog, run under the padded budget, classify.
fn run_trial(
    sim: &mut CoSim,
    initial: &CoSimState,
    injection: Injection,
    budget: u64,
    golden_observed: &[u32],
    observe: &impl Fn(&CoSim) -> Vec<u32>,
    config: CampaignConfig,
) -> Trial {
    sim.load_state(initial);
    // The pre-injection prefix must replay the golden prefix exactly, so
    // no watchdog (the previous trial's stays armed across restore) and
    // a budget that stops precisely at the injection cycle.
    sim.clear_watchdog();
    let pre_budget = injection.cycle.saturating_sub(sim.cpu().stats().cycles);
    let early_stop = match sim.run(pre_budget) {
        CoSimStop::CycleLimit { .. } => None,
        stop => Some(stop),
    };
    let (applied, stop) = match early_stop {
        Some(stop) => (false, stop),
        None => {
            let applied = Injector::apply(sim, injection.kind);
            sim.set_watchdog(config.watchdog_threshold);
            (applied, sim.run(budget - sim.cpu().stats().cycles.min(budget)))
        }
    };
    let outcome = match &stop {
        CoSimStop::Halted if observe(sim) == golden_observed => Outcome::Masked,
        CoSimStop::Halted => Outcome::Sdc,
        CoSimStop::Deadlock { .. } | CoSimStop::CycleLimit { .. } => Outcome::Deadlock,
        CoSimStop::Fault(_) => Outcome::Fault,
    };
    Trial {
        injection,
        applied,
        stop,
        outcome,
        cpu_stats: sim.cpu().stats(),
        hw_stats: sim.hw_stats(),
    }
}
