//! The rollback-recovery supervisor — closing the fault loop.
//!
//! The campaign runner ([`crate::campaign`]) *classifies* what a fault
//! did; this module *undoes* it. A [`Supervisor`] drives a
//! [`CoSim`] in checkpoint-aligned segments and watches four detectors:
//!
//! * the **liveness watchdog** (hangs → [`CoSimStop::Deadlock`]),
//! * the FSL **SEC-DED codec** (uncorrectable double-bit upsets, see
//!   `softsim-bus`),
//! * **TMR voters** in the peripheral graphs (replica miscompares, see
//!   `softsim-blocks`), and
//! * a **windowed signature diff** against a golden reference (silent
//!   data corruption surfacing as divergent architectural traffic),
//!
//! with a final observable comparison at halt as the backstop. On
//! detection the supervisor rolls the whole system back to a clean
//! checkpoint and replays. Faults are transient (single-event upsets):
//! a replay from a pre-fault checkpoint is clean, so recovery converges
//! — and because every step is deterministic, the same seed produces
//! the same [`RecoveryReport`], byte for byte, serial or parallel.
//!
//! Repeated detections without forward progress double the rollback
//! depth (1, 2, 4, … checkpoints), so a corrupted-but-undetected
//! checkpoint cannot trap the supervisor in a rollback livelock: the
//! backoff walks past it to older state, ultimately the initial
//! checkpoint. A bounded retry budget converts pathological cases into
//! a graceful [`RecoveryOutcome::Unrecoverable`] instead of an endless
//! loop.

use crate::inject::{Injection, Injector};
use softsim_cosim::{CoSim, CoSimState, CoSimStop};
use softsim_metrics::telemetry::{SpanKind, SpanRecord, Telemetry};
use softsim_metrics::MetricsCollector;
use softsim_trace::{shared, DetectorKind, SharedSink, TraceEvent};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// Tuning knobs of the rollback-recovery supervisor.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Checkpoint cadence in cycles; also the signature window width.
    /// Checkpoints land on absolute-cycle multiples of this value.
    pub checkpoint_every: u64,
    /// Rollbacks allowed before giving up with
    /// [`RecoveryOutcome::Unrecoverable`].
    pub max_retries: u32,
    /// Liveness-watchdog threshold armed for the whole supervised run.
    pub watchdog_threshold: u64,
    /// Work budget = `golden_cycles * budget_factor + budget_floor`,
    /// counted over *executed* cycles including rollback replays (the
    /// cycle counter itself moves backwards on rollback).
    pub budget_factor: u64,
    /// Additive part of the work budget.
    pub budget_floor: u64,
    /// Collect windowed signatures and diff them against the golden
    /// series (the SDC detector). Costs a trace sink per segment; with
    /// it off only watchdog / ECC / TMR / observable detection remain.
    pub signature_windows: bool,
    /// Checkpoints kept in memory beyond the initial one; older
    /// intermediate checkpoints are dropped first. The initial
    /// checkpoint is always retained as the rollback of last resort.
    pub max_kept_checkpoints: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            checkpoint_every: 1024,
            max_retries: 8,
            watchdog_threshold: 10_000,
            budget_factor: 4,
            budget_floor: 50_000,
            signature_windows: true,
            max_kept_checkpoints: 16,
        }
    }
}

/// How a supervised trial ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Halted with golden observables and no rollback was needed (the
    /// fault was vacuous, masked, or corrected in place by ECC).
    Clean,
    /// At least one rollback, then a halt with observables bit-exact
    /// against the golden run.
    Recovered {
        /// Cycles from fault application to first detection.
        detection_latency: u64,
        /// Cycles of re-executed work the rollbacks cost.
        recovery_cycles: u64,
        /// Rollbacks taken.
        retries: u32,
    },
    /// The retry or work budget ran out without a clean halt.
    Unrecoverable,
    /// The harness itself panicked inside the supervised trial (not the
    /// design — a design fault is a detection, handled by rollback).
    /// The panic was caught and the trial abandoned; sibling trials are
    /// unaffected.
    HarnessError {
        /// The panic payload, when it was a string (the common case).
        panic_msg: String,
    },
}

impl RecoveryOutcome {
    /// Short lower-case label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryOutcome::Clean => "clean",
            RecoveryOutcome::Recovered { .. } => "recovered",
            RecoveryOutcome::Unrecoverable => "unrecoverable",
            RecoveryOutcome::HarnessError { .. } => "harness-error",
        }
    }
}

impl std::fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryOutcome::Recovered { detection_latency, recovery_cycles, retries } => write!(
                f,
                "recovered (detected after {detection_latency} cycles, \
                 {recovery_cycles} cycles replayed, {retries} rollbacks)"
            ),
            other => f.write_str(other.label()),
        }
    }
}

/// The golden reference a supervised trial recovers toward: the initial
/// checkpoint, the halt cycle, the observable result words, and one
/// traffic signature per *full* checkpoint segment (partial final
/// segments are never compared).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryGolden {
    /// Checkpoint of the initial state every trial restores from.
    pub initial: CoSimState,
    /// Cycles the fault-free run took to halt.
    pub cycles: u64,
    /// Observable result words of the fault-free run.
    pub observed: Vec<u32>,
    /// Per-segment data signatures, indexed by segment (window) number;
    /// `None` for segments the golden run did not fully cover.
    pub seg_sigs: Vec<Option<u32>>,
}

/// The record of one supervised fault trial.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryTrial {
    /// The scheduled fault.
    pub injection: Injection,
    /// Whether the fault actually changed state when applied.
    pub applied: bool,
    /// How the trial ended.
    pub outcome: RecoveryOutcome,
    /// The final stop of the supervised run.
    pub stop: CoSimStop,
    /// The first detector that fired, if any.
    pub detector: Option<DetectorKind>,
    /// Total executed cycles, rollback replays included.
    pub work_cycles: u64,
}

/// The result of a whole recovery campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Cycles the golden (fault-free) run took to halt.
    pub golden_cycles: u64,
    /// Observables of the golden run.
    pub golden_observed: Vec<u32>,
    /// One record per scheduled injection, schedule order.
    pub trials: Vec<RecoveryTrial>,
}

impl RecoveryReport {
    /// Trial counts as `(clean, recovered, unrecoverable)`. A trial the
    /// harness abandoned ([`RecoveryOutcome::HarnessError`]) certainly
    /// did not recover, so it is folded into the unrecoverable column
    /// here; [`RecoveryReport::abandoned`] counts it separately.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for t in &self.trials {
            match t.outcome {
                RecoveryOutcome::Clean => c.0 += 1,
                RecoveryOutcome::Recovered { .. } => c.1 += 1,
                RecoveryOutcome::Unrecoverable | RecoveryOutcome::HarnessError { .. } => c.2 += 1,
            }
        }
        c
    }

    /// Trials abandoned because the harness panicked (a subset of the
    /// unrecoverable column of [`RecoveryReport::counts`]).
    pub fn abandoned(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| matches!(t.outcome, RecoveryOutcome::HarnessError { .. }))
            .count()
    }

    /// Mean detection latency and mean replayed cycles over the
    /// recovered trials, `(0.0, 0.0)` when none recovered.
    pub fn recovery_means(&self) -> (f64, f64) {
        let mut n = 0u64;
        let (mut lat, mut rep) = (0u64, 0u64);
        for t in &self.trials {
            if let RecoveryOutcome::Recovered { detection_latency, recovery_cycles, .. } = t.outcome
            {
                n += 1;
                lat += detection_latency;
                rep += recovery_cycles;
            }
        }
        if n == 0 {
            return (0.0, 0.0);
        }
        (lat as f64 / n as f64, rep as f64 / n as f64)
    }

    /// Plain-text summary table of the campaign.
    pub fn text(&self, title: &str) -> String {
        use std::fmt::Write;
        let (clean, recovered, unrecoverable) = self.counts();
        let total = self.trials.len().max(1);
        let pct = |n: usize| 100.0 * n as f64 / total as f64;
        let (lat, rep) = self.recovery_means();
        let mut s = String::new();
        let _ = writeln!(s, "recovery campaign: {title}");
        let _ = writeln!(s, "  golden run: {} cycles", self.golden_cycles);
        let _ = writeln!(s, "  trials: {}", self.trials.len());
        let _ = writeln!(s, "    clean:         {clean:5}  ({:5.1}%)", pct(clean));
        let _ = writeln!(s, "    recovered:     {recovered:5}  ({:5.1}%)", pct(recovered));
        let _ = writeln!(s, "    unrecoverable: {unrecoverable:5}  ({:5.1}%)", pct(unrecoverable));
        let abandoned = self.abandoned();
        if abandoned > 0 {
            let _ = writeln!(s, "    (harness-abandoned: {abandoned} of the unrecoverable)");
        }
        if recovered > 0 {
            let _ = writeln!(s, "  mean detection latency: {lat:.1} cycles");
            let _ = writeln!(s, "  mean replayed work:     {rep:.1} cycles");
        }
        s
    }
}

/// Which detector fired at a segment boundary, with a detail word for
/// the trace event.
struct Detection {
    detector: DetectorKind,
    detail: u32,
}

/// The rollback-recovery supervisor: a [`RecoveryPolicy`] plus an
/// optional trace sink for [`TraceEvent::FaultDetected`] /
/// [`TraceEvent::Recovered`] events.
#[derive(Default)]
pub struct Supervisor {
    policy: RecoveryPolicy,
    sink: Option<SharedSink>,
}

impl Supervisor {
    /// A supervisor with the given policy.
    pub fn new(policy: RecoveryPolicy) -> Supervisor {
        Supervisor { policy, sink: None }
    }

    /// The supervisor's policy.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Attaches a trace sink for detection and recovery events. The
    /// supervisor stamps them in the simulator's cycle domain, so they
    /// interleave correctly with profile and Chrome-trace exports.
    pub fn attach_trace(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    fn emit(&self, e: TraceEvent) {
        if let Some(s) = &self.sink {
            s.borrow_mut().event(&e);
        }
    }

    /// Captures the golden reference: runs `sim` fault-free through the
    /// same segmented machinery every trial uses (so the per-segment
    /// signatures compare apples to apples), then restores the initial
    /// state.
    ///
    /// # Panics
    /// Panics if the fault-free run does not halt within the policy's
    /// `budget_floor * budget_factor` cycles.
    pub fn capture_golden(
        &self,
        sim: &mut CoSim,
        observe: impl Fn(&CoSim) -> Vec<u32>,
    ) -> RecoveryGolden {
        let initial = sim.save_state();
        let w = self.policy.checkpoint_every;
        let budget = self.policy.budget_floor * self.policy.budget_factor.max(1);
        let mut seg_sigs: Vec<Option<u32>> = Vec::new();
        let mut work = 0u64;
        let stop = loop {
            let now = sim.cpu().stats().cycles;
            let boundary = (now / w + 1) * w;
            let (stop, sig) = self.run_segment(sim, boundary, budget - work.min(budget), None);
            work += sim.cpu().stats().cycles - now;
            let seg = boundary / w - 1;
            if sim.cpu().stats().cycles == boundary {
                let seg = seg as usize;
                if seg_sigs.len() <= seg {
                    seg_sigs.resize(seg + 1, None);
                }
                seg_sigs[seg] = sig;
            }
            match stop {
                CoSimStop::CycleLimit { .. } if work < budget => continue,
                stop => break stop,
            }
        };
        assert_eq!(stop, CoSimStop::Halted, "golden run must halt, got: {stop}");
        let cycles = sim.cpu().stats().cycles;
        let observed = observe(sim);
        sim.load_state(&initial);
        RecoveryGolden { initial, cycles, observed, seg_sigs }
    }

    /// Runs one supervised fault trial: restore the golden initial
    /// state, arm the watchdog, and execute checkpoint-aligned segments
    /// — injecting the fault at its cycle, checking every detector at
    /// each boundary, rolling back and replaying on detection — until a
    /// clean halt, retry exhaustion, or work-budget exhaustion.
    pub fn run_trial(
        &self,
        sim: &mut CoSim,
        golden: &RecoveryGolden,
        injection: Injection,
        observe: impl Fn(&CoSim) -> Vec<u32>,
    ) -> RecoveryTrial {
        self.run_trial_plan(sim, golden, vec![injection], observe)
    }

    /// [`Supervisor::run_trial`] with a multi-fault schedule (e.g. a
    /// double-bit upset as two coincident flips of the same FIFO word).
    /// The returned trial records the schedule's first injection.
    ///
    /// # Panics
    /// Panics if `injections` is empty.
    pub fn run_trial_plan(
        &self,
        sim: &mut CoSim,
        golden: &RecoveryGolden,
        injections: Vec<Injection>,
        observe: impl Fn(&CoSim) -> Vec<u32>,
    ) -> RecoveryTrial {
        assert!(!injections.is_empty(), "a trial needs at least one scheduled fault");
        let injection = injections[0];
        let earliest = injections.iter().map(|i| i.cycle).min().unwrap();
        let w = self.policy.checkpoint_every;
        sim.load_state(&golden.initial);
        sim.set_watchdog(self.policy.watchdog_threshold);
        let start_cycle = sim.cpu().stats().cycles;
        let budget = golden.cycles * self.policy.budget_factor + self.policy.budget_floor;

        let mut injector = Injector::new(injections);
        let mut checkpoints: Vec<(u64, CoSimState)> = vec![(start_cycle, golden.initial.clone())];
        let mut work = 0u64;
        let mut retries = 0u32;
        let mut depth = 1usize;
        let mut applied = false;
        let mut fault_cycle: Option<u64> = None;
        let mut first_detection: Option<(u64, DetectorKind)> = None;
        // Progress is measured in retired instructions, not cycles: a
        // hung replay burns cycles without doing work, and the backoff
        // must see through that to walk past poisoned checkpoints.
        let mut last_detection_insns: Option<u64> = None;
        let mut ckpt_insns = sim.cpu().stats().instructions;
        // Self-check counter baselines, re-read after every rollback.
        let mut ecc_base = sim.fsl().ecc_uncorrectable_total();
        let mut tmr_base = sim.detected_faults();

        let (outcome, stop) = loop {
            let now = sim.cpu().stats().cycles;
            let boundary = (now / w + 1) * w;
            let applied_before = injector.applied();
            let (stop, sig) =
                self.run_segment(sim, boundary, budget - work.min(budget), Some(&mut injector));
            let now2 = sim.cpu().stats().cycles;
            work += now2 - now;
            if injector.applied() > applied_before {
                applied = true;
                fault_cycle.get_or_insert(earliest);
            }

            // Detectors, most specific first. The segment signature is
            // only compared when both this trial and the golden run
            // covered the segment in full.
            let seg = (boundary / w - 1) as usize;
            let detection = match &stop {
                CoSimStop::Fault(_) => Some(Detection { detector: DetectorKind::Fault, detail: 0 }),
                CoSimStop::Deadlock { .. } => {
                    Some(Detection { detector: DetectorKind::Watchdog, detail: 0 })
                }
                _ => {
                    let ecc = sim.fsl().ecc_uncorrectable_total();
                    let tmr = sim.detected_faults();
                    if ecc > ecc_base {
                        Some(Detection {
                            detector: DetectorKind::Ecc,
                            detail: (ecc - ecc_base) as u32,
                        })
                    } else if tmr > tmr_base {
                        Some(Detection {
                            detector: DetectorKind::Tmr,
                            detail: (tmr - tmr_base) as u32,
                        })
                    } else if now2 == boundary
                        && matches!((sig, golden.seg_sigs.get(seg)), (Some(s), Some(Some(g))) if s != *g)
                    {
                        Some(Detection { detector: DetectorKind::Signature, detail: seg as u32 })
                    } else if stop == CoSimStop::Halted && observe(sim) != golden.observed {
                        Some(Detection { detector: DetectorKind::Observable, detail: 0 })
                    } else {
                        None
                    }
                }
            };

            let detection = match detection {
                None => {
                    if stop == CoSimStop::Halted {
                        let outcome = match (retries, first_detection) {
                            (0, _) => RecoveryOutcome::Clean,
                            (retries, first) => RecoveryOutcome::Recovered {
                                detection_latency: first
                                    .map(|(c, _)| c.saturating_sub(fault_cycle.unwrap_or(c)))
                                    .unwrap_or(0),
                                recovery_cycles: work
                                    .saturating_sub(now2.saturating_sub(start_cycle)),
                                retries,
                            },
                        };
                        break (outcome, stop);
                    }
                    if work >= budget {
                        break (RecoveryOutcome::Unrecoverable, stop);
                    }
                    // Clean boundary: checkpoint and keep going — but
                    // only if the processor retired something since the
                    // last checkpoint. A zero-progress segment (a stall
                    // the watchdog has not yet diagnosed) would pin a
                    // possibly-poisoned state without adding anything a
                    // rollback could use. The initial checkpoint is
                    // pinned; intermediates beyond the keep limit age
                    // out oldest-first.
                    let insns = sim.cpu().stats().instructions;
                    if insns > ckpt_insns {
                        ckpt_insns = insns;
                        checkpoints.push((now2, sim.save_state()));
                        if checkpoints.len() > self.policy.max_kept_checkpoints + 1 {
                            checkpoints.remove(1);
                        }
                    }
                    continue;
                }
                Some(d) => d,
            };

            self.emit(TraceEvent::FaultDetected {
                cycle: now2,
                detector: detection.detector,
                detail: detection.detail,
            });
            first_detection.get_or_insert((now2, detection.detector));
            retries += 1;
            if retries > self.policy.max_retries || work >= budget {
                break (RecoveryOutcome::Unrecoverable, stop);
            }
            // No forward progress (in retired instructions) since the
            // last detection: the replay tripped without doing new
            // work, so the restored checkpoint itself is suspect —
            // double the rollback depth. Progress resets it.
            let insns = sim.cpu().stats().instructions;
            depth = match last_detection_insns {
                Some(prev) if insns <= prev => (depth * 2).min(checkpoints.len()),
                _ => 1,
            };
            last_detection_insns = Some(insns);
            let idx = checkpoints.len() - depth.min(checkpoints.len());
            let (ckpt_cycle, ckpt) = &checkpoints[idx];
            let ckpt_cycle = *ckpt_cycle;
            sim.load_state(ckpt);
            checkpoints.truncate(idx + 1);
            ckpt_insns = sim.cpu().stats().instructions;
            ecc_base = sim.fsl().ecc_uncorrectable_total();
            tmr_base = sim.detected_faults();
            self.emit(TraceEvent::Recovered { cycle: now2, checkpoint_cycle: ckpt_cycle, retries });
        };

        sim.set_run_horizon(None);
        RecoveryTrial {
            injection,
            applied,
            outcome,
            stop,
            detector: first_detection.map(|(_, d)| d),
            work_cycles: work,
        }
    }

    /// Runs `sim` from its current cycle to `boundary` (an absolute
    /// cycle, normally the next checkpoint multiple), bounded by
    /// `work_budget` executed cycles, pausing at scheduled injection
    /// cycles to apply faults. Returns the stop and — when signature
    /// windows are enabled — the wrapping sum of the data signatures
    /// the segment's collector observed.
    fn run_segment(
        &self,
        sim: &mut CoSim,
        boundary: u64,
        work_budget: u64,
        mut injector: Option<&mut Injector>,
    ) -> (CoSimStop, Option<u32>) {
        let collector = if self.policy.signature_windows {
            let c = Rc::new(RefCell::new(MetricsCollector::new(self.policy.checkpoint_every)));
            sim.attach_trace(shared(c.clone()));
            Some(c)
        } else {
            None
        };
        let mut budget = work_budget;
        let stop = loop {
            if let Some(inj) = injector.as_deref_mut() {
                inj.poll(sim);
            }
            let now = sim.cpu().stats().cycles;
            if now >= boundary {
                break CoSimStop::CycleLimit { blocked: None };
            }
            let mut horizon = boundary;
            if let Some(c) = injector.as_deref().and_then(|i| i.next_cycle()) {
                // `poll` above applied everything due, so `c > now`.
                horizon = horizon.min(c);
            }
            sim.set_run_horizon(Some(horizon));
            let stop = sim.run(budget);
            let ran = sim.cpu().stats().cycles - now;
            budget = budget.saturating_sub(ran);
            match stop {
                CoSimStop::CycleLimit { .. } if sim.cpu().stats().cycles >= horizon => continue,
                stop => break stop,
            }
        };
        sim.set_run_horizon(None);
        let sig = collector.map(|c| {
            sim.detach_trace();
            let mut c = c.borrow_mut();
            c.finish(sim.cpu().stats().cycles);
            let series = c.series();
            let mut sig = 0u32;
            for row in &series.rows {
                sig = sig.wrapping_add(series.value(row, "data_signature").unwrap_or(0.0) as u32);
            }
            sig
        });
        (stop, sig)
    }
}

/// One retry after a harness panic before a supervised trial is
/// abandoned as [`RecoveryOutcome::HarnessError`] (the supervisor's own
/// `max_retries` governs *rollbacks*, a different budget).
const HARNESS_RETRIES: u32 = 1;

/// [`Supervisor::run_trial`] wrapped in `catch_unwind`: a panicking
/// trial is retried [`HARNESS_RETRIES`] times, then abandoned as
/// [`RecoveryOutcome::HarnessError`] — the campaign (and any worker
/// thread) survives and keeps draining the plan. `rebuild` replaces a
/// simulator the panic may have left inconsistent; the serial runner
/// passes `None` and relies on the next trial's checkpoint restore.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_recovery_trial_guarded(
    supervisor: &Supervisor,
    sim: &mut CoSim,
    rebuild: Option<&dyn Fn() -> CoSim>,
    golden: &RecoveryGolden,
    injection: Injection,
    observe: &(impl Fn(&CoSim) -> Vec<u32> + ?Sized),
    telemetry: Option<&Telemetry>,
    worker: u32,
) -> RecoveryTrial {
    let start = telemetry.map(|_| Instant::now());
    let ff0 = sim.ff_engagements();
    let ffc0 = sim.ff_skipped_cycles();
    let mut attempt = 0u32;
    let trial = loop {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            supervisor.run_trial(sim, golden, injection, observe)
        }));
        match result {
            Ok(trial) => break trial,
            Err(payload) => {
                let panic_msg = crate::campaign::panic_message(payload);
                if let Some(make) = rebuild {
                    *sim = make();
                }
                if attempt >= HARNESS_RETRIES {
                    break RecoveryTrial {
                        injection,
                        applied: false,
                        outcome: RecoveryOutcome::HarnessError { panic_msg },
                        stop: CoSimStop::CycleLimit { blocked: None },
                        detector: None,
                        work_cycles: 0,
                    };
                }
                attempt += 1;
            }
        }
    };
    if let Some(t) = telemetry {
        // `work_cycles` already counts every executed cycle including
        // rollback replays, so it is the span's sim-cycle cost exactly.
        let mut rec = SpanRecord::new(SpanKind::Trial, worker, start.unwrap().elapsed());
        rec.sim_cycles = trial.work_cycles;
        rec.retries = match trial.outcome {
            RecoveryOutcome::Recovered { retries, .. } => retries as u64,
            _ => 0,
        };
        rec.abandoned = matches!(trial.outcome, RecoveryOutcome::HarnessError { .. }) as u64;
        rec.ff_engagements = sim.ff_engagements().saturating_sub(ff0);
        rec.ff_skipped_cycles = sim.ff_skipped_cycles().saturating_sub(ffc0);
        t.record(rec);
    }
    trial
}

/// Runs a recovery campaign serially: one golden capture, then one
/// supervised trial per scheduled injection. Deterministic — identical
/// `sim`, `plan`, `observe` and `policy` produce a byte-identical
/// report. A trial that panics the harness is caught and classified
/// [`RecoveryOutcome::HarnessError`] — subsequent trials still run.
pub fn run_recovery_campaign(
    sim: &mut CoSim,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32>,
    policy: RecoveryPolicy,
) -> RecoveryReport {
    run_recovery_campaign_with_telemetry(sim, plan, observe, policy, None)
}

/// [`run_recovery_campaign`] with optional harness telemetry (golden
/// span, one trial span per injection, one campaign span). The report
/// is byte-identical whether `telemetry` is `None` or `Some`.
pub fn run_recovery_campaign_with_telemetry(
    sim: &mut CoSim,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32>,
    policy: RecoveryPolicy,
    telemetry: Option<&Telemetry>,
) -> RecoveryReport {
    let campaign_start = telemetry.map(|t| {
        t.expect_trials(plan.len() as u64);
        Instant::now()
    });
    let supervisor = Supervisor::new(policy);
    let golden_start = telemetry.map(|_| Instant::now());
    let golden = supervisor.capture_golden(sim, &observe);
    if let Some(t) = telemetry {
        let mut rec = SpanRecord::new(SpanKind::Golden, 0, golden_start.unwrap().elapsed());
        rec.sim_cycles = golden.cycles;
        t.record(rec);
    }
    let trials = plan
        .iter()
        .map(|&inj| {
            run_recovery_trial_guarded(&supervisor, sim, None, &golden, inj, &observe, telemetry, 0)
        })
        .collect();
    sim.load_state(&golden.initial);
    sim.clear_watchdog();
    if let (Some(t), Some(start)) = (telemetry, campaign_start) {
        t.record(SpanRecord::new(SpanKind::Campaign, 0, start.elapsed()));
    }
    RecoveryReport { golden_cycles: golden.cycles, golden_observed: golden.observed, trials }
}

/// Runs a recovery campaign on worker threads. Byte-identical to
/// [`run_recovery_campaign`] with the same plan, policy and workload:
/// trials are independent given the shared golden reference, every
/// worker runs the same per-trial procedure, and results merge in plan
/// order — the report does not depend on `workers` or scheduling.
///
/// `make_sim` builds one fresh co-simulator per worker (a [`CoSim`]
/// holds non-`Send` observers); each must have the same image and
/// peripheral shape. The golden capture runs once, on the calling
/// thread.
pub fn run_recovery_campaign_parallel(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    policy: RecoveryPolicy,
    workers: usize,
) -> RecoveryReport {
    run_recovery_campaign_parallel_with_telemetry(make_sim, plan, observe, policy, workers, None)
}

/// [`run_recovery_campaign_parallel`] with optional harness telemetry;
/// worker ids follow chunk order. The report stays byte-identical for
/// any `telemetry`/`workers` choice.
pub fn run_recovery_campaign_parallel_with_telemetry(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    policy: RecoveryPolicy,
    workers: usize,
    telemetry: Option<&Telemetry>,
) -> RecoveryReport {
    let campaign_start = telemetry.map(|t| {
        t.expect_trials(plan.len() as u64);
        Instant::now()
    });
    let supervisor = Supervisor::new(policy);
    let mut sim = make_sim();
    let golden_start = telemetry.map(|_| Instant::now());
    let golden = supervisor.capture_golden(&mut sim, &observe);
    if let Some(t) = telemetry {
        let mut rec = SpanRecord::new(SpanKind::Golden, 0, golden_start.unwrap().elapsed());
        rec.sim_cycles = golden.cycles;
        t.record(rec);
    }
    drop(sim);

    let workers = workers.clamp(1, plan.len().max(1));
    let mut trials: Vec<Option<RecoveryTrial>> = vec![None; plan.len()];
    std::thread::scope(|scope| {
        let chunk = plan.len().div_ceil(workers);
        let mut slots = trials.as_mut_slice();
        let mut rest = plan;
        let golden = &golden;
        let (make_sim, observe) = (&make_sim, &observe);
        let mut worker_id: u32 = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (plan_chunk, plan_rest) = rest.split_at(take);
            let (slot_chunk, slot_rest) = slots.split_at_mut(take);
            rest = plan_rest;
            slots = slot_rest;
            let worker = worker_id;
            worker_id += 1;
            scope.spawn(move || {
                let supervisor = Supervisor::new(policy);
                let mut sim = make_sim();
                let rebuild: &dyn Fn() -> CoSim = make_sim;
                for (slot, &injection) in slot_chunk.iter_mut().zip(plan_chunk) {
                    *slot = Some(run_recovery_trial_guarded(
                        &supervisor,
                        &mut sim,
                        Some(rebuild),
                        golden,
                        injection,
                        observe,
                        telemetry,
                        worker,
                    ));
                }
            });
        }
    });
    let trials = trials.into_iter().map(|t| t.expect("worker filled every slot")).collect();
    if let (Some(t), Some(start)) = (telemetry, campaign_start) {
        t.record(SpanRecord::new(SpanKind::Campaign, 0, start.elapsed()));
    }
    RecoveryReport { golden_cycles: golden.cycles, golden_observed: golden.observed, trials }
}
