//! Checkpoint serialization.
//!
//! [`CoSimState`] is a plain in-memory value; this module gives it a
//! stable byte encoding so checkpoints can be stored, hashed, or diffed
//! between runs. The format is deliberately simple: a 4-byte magic
//! (`SSCK`), a `u32` version, then every field little-endian in
//! declaration order, and finally a [`crc32`] over everything that
//! precedes it. `Option`s are a tag byte followed by the value;
//! variable-length sequences are length-prefixed with a `u32`.
//!
//! The CRC trailer is what makes a rollback supervisor trustworthy: a
//! checkpoint that was itself corrupted (on disk, in transit, or by the
//! very fault campaign it is meant to recover from) is rejected with
//! [`SnapshotError::ChecksumMismatch`] instead of being silently
//! restored into a diverged system.

use softsim_blocks::GraphState;
use softsim_bus::{FslBankState, FslFifoState, FslStats, FslWord};
use softsim_cosim::CoSimState;
use softsim_iss::{CpuSnapshot, CpuStats, PipeSnapshot};

/// Magic bytes at the head of every checkpoint ("SoftSim ChecKpoint").
pub const MAGIC: [u8; 4] = *b"SSCK";
/// Current checkpoint format version. Version 2 added the CRC-32
/// trailer, FSL ECC state and counters, and per-node span framing for
/// graph block state.
pub const VERSION: u32 = 2;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB8_8320`) over
/// `bytes`. Public because corruption tests and external checkpoint
/// tooling need to recompute the trailer after editing a payload.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a checkpoint byte stream could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The stream ended before the structure was complete.
    Truncated,
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream uses a format version this build does not understand.
    VersionUnsupported(u32),
    /// The CRC-32 trailer does not match the payload — the checkpoint
    /// bytes were corrupted after serialization.
    ChecksumMismatch,
    /// A field held a value that cannot occur in a real snapshot.
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "checkpoint truncated"),
            SnapshotError::BadMagic => write!(f, "not a softsim checkpoint (bad magic)"),
            SnapshotError::VersionUnsupported(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            SnapshotError::ChecksumMismatch => {
                write!(f, "checkpoint checksum mismatch (payload corrupted)")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serializes a co-simulation checkpoint to bytes.
pub fn to_bytes(state: &CoSimState) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096 + state.cpu.mem.len());
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, VERSION);
    put_cpu(&mut out, &state.cpu);
    put_bank(&mut out, &state.fsl);
    put_u32(&mut out, state.peripherals.len() as u32);
    for g in &state.peripherals {
        put_graph(&mut out, g);
    }
    put_u64(&mut out, state.hw_stats.words_to_hw);
    put_u64(&mut out, state.hw_stats.words_from_hw);
    put_u64(&mut out, state.hw_stats.output_overflows);
    put_u64(&mut out, state.hw_stats.max_to_hw_occupancy as u64);
    put_u64(&mut out, state.hw_stats.max_from_hw_occupancy as u64);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decodes a checkpoint produced by [`to_bytes`]. Rejection order:
/// magic before version before checksum before structure, so a caller
/// handed random bytes learns the most specific reason first.
pub fn from_bytes(bytes: &[u8]) -> Result<CoSimState, SnapshotError> {
    if bytes.len() < 4 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < 8 {
        return Err(SnapshotError::Truncated);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(SnapshotError::VersionUnsupported(version));
    }
    if bytes.len() < 12 {
        return Err(SnapshotError::Truncated);
    }
    let body_end = bytes.len() - 4;
    let stored = u32::from_le_bytes([
        bytes[body_end],
        bytes[body_end + 1],
        bytes[body_end + 2],
        bytes[body_end + 3],
    ]);
    if crc32(&bytes[..body_end]) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let mut r = Reader { bytes: &bytes[..body_end], pos: 8 };
    let cpu = get_cpu(&mut r)?;
    let fsl = get_bank(&mut r)?;
    let n = r.u32()? as usize;
    let mut peripherals = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        peripherals.push(get_graph(&mut r)?);
    }
    let hw_stats = softsim_cosim::HwStats {
        words_to_hw: r.u64()?,
        words_from_hw: r.u64()?,
        output_overflows: r.u64()?,
        max_to_hw_occupancy: r.u64()? as usize,
        max_from_hw_occupancy: r.u64()? as usize,
    };
    if r.pos != r.bytes.len() {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }
    Ok(CoSimState { cpu, fsl, peripherals, hw_stats })
}

// ---------------------------------------------------------------- writers

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_opt_u16(out: &mut Vec<u8>, v: Option<u16>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_u32(out, x);
        }
    }
}

fn put_cpu(out: &mut Vec<u8>, s: &CpuSnapshot) {
    for r in s.regs {
        put_u32(out, r);
    }
    put_u32(out, s.pc);
    put_bool(out, s.carry);
    put_opt_u16(out, s.imm_latch);
    put_opt_u32(out, s.delay_target);
    put_bool(out, s.in_delay_slot);
    put_opt_u32(out, s.redirect);
    put_u32(out, s.mem.len() as u32);
    out.extend_from_slice(&s.mem);
    put_u32(out, s.extra_cycles);
    match s.pipe {
        PipeSnapshot::Ready => out.push(0),
        PipeSnapshot::Busy { remaining, pc, word } => {
            out.push(1);
            put_u32(out, remaining);
            put_u32(out, pc);
            put_u32(out, word);
        }
        PipeSnapshot::FslStall { pc, word } => {
            out.push(2);
            put_u32(out, pc);
            put_u32(out, word);
        }
    }
    put_bool(out, s.halted);
    put_stats(out, &s.stats);
    put_opt_u32(out, s.bp_skip);
}

fn put_stats(out: &mut Vec<u8>, s: &CpuStats) {
    for v in [
        s.cycles,
        s.instructions,
        s.fsl_read_stalls,
        s.fsl_write_stalls,
        s.fsl_words_sent,
        s.fsl_words_received,
        s.fsl_nonblocking_misses,
        s.fsl_control_mismatches,
        s.taken_branches,
        s.mem_reads,
        s.mem_writes,
        s.multiplies,
    ] {
        put_u64(out, v);
    }
}

fn put_fifo(out: &mut Vec<u8>, s: &FslFifoState) {
    put_u32(out, s.words.len() as u32);
    for w in &s.words {
        put_u32(out, w.data);
        put_bool(out, w.control);
    }
    put_bool(out, s.ecc);
    put_u32(out, s.check.len() as u32);
    out.extend_from_slice(&s.check);
    put_u64(out, s.stats.pushes);
    put_u64(out, s.stats.pops);
    put_u64(out, s.stats.full_rejections);
    put_u64(out, s.stats.empty_rejections);
    put_u64(out, s.stats.ecc_corrected);
    put_u64(out, s.stats.ecc_uncorrectable);
    put_u64(out, s.stats.max_occupancy as u64);
    put_bool(out, s.stuck_full);
    put_bool(out, s.stuck_empty);
}

fn put_bank(out: &mut Vec<u8>, s: &FslBankState) {
    put_u32(out, s.to_hw.len() as u32);
    for f in &s.to_hw {
        put_fifo(out, f);
    }
    put_u32(out, s.from_hw.len() as u32);
    for f in &s.from_hw {
        put_fifo(out, f);
    }
}

fn put_graph(out: &mut Vec<u8>, g: &GraphState) {
    put_u64(out, g.cycle);
    put_u32(out, g.values.len() as u32);
    for v in &g.values {
        put_u64(out, *v);
    }
    put_u32(out, g.block_words.len() as u32);
    for v in &g.block_words {
        put_u64(out, *v);
    }
    put_u32(out, g.spans.len() as u32);
    for s in &g.spans {
        put_u32(out, *s);
    }
}

// ---------------------------------------------------------------- readers

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool out of range")),
        }
    }

    fn opt_u16(&mut self) -> Result<Option<u16>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u16()?)),
            _ => Err(SnapshotError::Corrupt("option tag out of range")),
        }
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(SnapshotError::Corrupt("option tag out of range")),
        }
    }
}

fn get_cpu(r: &mut Reader) -> Result<CpuSnapshot, SnapshotError> {
    let mut regs = [0u32; 32];
    for reg in &mut regs {
        *reg = r.u32()?;
    }
    let pc = r.u32()?;
    let carry = r.bool()?;
    let imm_latch = r.opt_u16()?;
    let delay_target = r.opt_u32()?;
    let in_delay_slot = r.bool()?;
    let redirect = r.opt_u32()?;
    let mem_len = r.u32()? as usize;
    let mem = r.take(mem_len)?.to_vec();
    let extra_cycles = r.u32()?;
    let pipe = match r.u8()? {
        0 => PipeSnapshot::Ready,
        1 => PipeSnapshot::Busy { remaining: r.u32()?, pc: r.u32()?, word: r.u32()? },
        2 => PipeSnapshot::FslStall { pc: r.u32()?, word: r.u32()? },
        _ => return Err(SnapshotError::Corrupt("pipeline tag out of range")),
    };
    let halted = r.bool()?;
    let stats = get_stats(r)?;
    let bp_skip = r.opt_u32()?;
    Ok(CpuSnapshot {
        regs,
        pc,
        carry,
        imm_latch,
        delay_target,
        in_delay_slot,
        redirect,
        mem,
        extra_cycles,
        pipe,
        halted,
        stats,
        bp_skip,
    })
}

fn get_stats(r: &mut Reader) -> Result<CpuStats, SnapshotError> {
    Ok(CpuStats {
        cycles: r.u64()?,
        instructions: r.u64()?,
        fsl_read_stalls: r.u64()?,
        fsl_write_stalls: r.u64()?,
        fsl_words_sent: r.u64()?,
        fsl_words_received: r.u64()?,
        fsl_nonblocking_misses: r.u64()?,
        fsl_control_mismatches: r.u64()?,
        taken_branches: r.u64()?,
        mem_reads: r.u64()?,
        mem_writes: r.u64()?,
        multiplies: r.u64()?,
    })
}

fn get_fifo(r: &mut Reader) -> Result<FslFifoState, SnapshotError> {
    let n = r.u32()? as usize;
    let mut words = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        words.push(FslWord { data: r.u32()?, control: r.bool()? });
    }
    let ecc = r.bool()?;
    let check_len = r.u32()? as usize;
    let check = r.take(check_len)?.to_vec();
    if check.len() != if ecc { words.len() } else { 0 } {
        return Err(SnapshotError::Corrupt("ECC check-byte framing"));
    }
    let stats = FslStats {
        pushes: r.u64()?,
        pops: r.u64()?,
        full_rejections: r.u64()?,
        empty_rejections: r.u64()?,
        ecc_corrected: r.u64()?,
        ecc_uncorrectable: r.u64()?,
        max_occupancy: r.u64()? as usize,
    };
    let stuck_full = r.bool()?;
    let stuck_empty = r.bool()?;
    Ok(FslFifoState { words, ecc, check, stats, stuck_full, stuck_empty })
}

fn get_bank(r: &mut Reader) -> Result<FslBankState, SnapshotError> {
    let n = r.u32()? as usize;
    let mut to_hw = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        to_hw.push(get_fifo(r)?);
    }
    let n = r.u32()? as usize;
    let mut from_hw = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        from_hw.push(get_fifo(r)?);
    }
    Ok(FslBankState { to_hw, from_hw })
}

fn get_graph(r: &mut Reader) -> Result<GraphState, SnapshotError> {
    let cycle = r.u64()?;
    let n = r.u32()? as usize;
    let mut values = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        values.push(r.u64()?);
    }
    let n = r.u32()? as usize;
    let mut block_words = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        block_words.push(r.u64()?);
    }
    let n = r.u32()? as usize;
    let mut spans = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        spans.push(r.u32()?);
    }
    if spans.iter().map(|&s| s as u64).sum::<u64>() != block_words.len() as u64 {
        return Err(SnapshotError::Corrupt("graph span framing"));
    }
    Ok(GraphState { cycle, values, block_words, spans })
}
