//! Durable (crash-resumable) campaign execution.
//!
//! A long fault campaign that dies at trial 9,999 of 10,000 should not
//! restart from zero. This module writes one CRC32-framed record per
//! completed trial to an append-only *journal* as the campaign runs, so
//! an interrupted run can be resumed: already-journaled trials are
//! loaded instead of re-executed, the torn or corrupt tail (a record
//! the crash cut mid-write) is discarded and re-run, and the merged
//! report is **byte-identical** to an uninterrupted run — at any worker
//! count, because trials are independent and merge in plan order.
//!
//! ## Journal format (`SSJL`)
//!
//! ```text
//! header   "SSJL" | version u32 | kind u8 | plan_hash u64 | trials u32 | crc32(header)
//! record   len u32 | payload | crc32(payload)      (repeated, append-only)
//! payload  trial_index u32 | encoded trial
//! ```
//!
//! Everything is little-endian, mirroring the `SSCK` checkpoint format
//! ([`crate::snapshot`]). `kind` is 0 for fault campaigns
//! ([`crate::campaign`]) and 1 for recovery campaigns
//! ([`crate::recover`]). `plan_hash` is an FNV-1a digest of the
//! campaign's deterministic inputs — configuration knobs, the full
//! injection plan, and the golden reference — so a journal can never be
//! resumed against a different workload: the mismatch is a typed
//! [`JournalError::PlanMismatch`], not a silently wrong report.
//!
//! Records are keyed by `(plan_hash, trial_index)`: the hash lives once
//! in the header, the index prefixes every payload. Workers append in
//! completion order (which depends on scheduling), but resume rebuilds
//! by index, so journal record order never affects the report. A
//! duplicate index (possible when a crash lands between the append and
//! the bookkeeping of a retried run) resolves last-wins; trials are
//! deterministic, so duplicates are byte-identical anyway.
//!
//! Reading a journal never panics: any torn, truncated, bit-flipped or
//! arbitrary byte sequence yields either a typed [`JournalError`] (for
//! header-level damage) or a shorter valid prefix (for record-level
//! damage — scanning stops at the first bad frame, the damaged tail is
//! dropped, and the trials it covered simply re-run on resume).
//!
//! ## Write-side degradation
//!
//! Appends can fail too (disk full, flush error, a short write). A
//! failed append must not kill a campaign that is otherwise healthy,
//! and must not leave a corrupt frame for the next resume to trip on.
//! So the append path *degrades*: on the first failed append the file
//! is truncated back to the last good frame, journaling stops, the
//! campaign finishes in memory, and the `_with_status` runners report a
//! [`DurabilityStatus`] with `durable = false` and a warning naming the
//! failure. [`AppendFaultPlan`] injects exactly these failures in tests
//! (the same philosophy as [`FaultKind::HarnessPanic`] for trial
//! isolation: the degradation path stays provable end to end).

use crate::campaign::{
    golden_run, run_trial_guarded, CampaignConfig, CampaignReport, Outcome, Trial, TrialScope,
};
use crate::inject::{FaultKind, Injection};
use crate::recover::{
    run_recovery_trial_guarded, RecoveryOutcome, RecoveryPolicy, RecoveryReport, RecoveryTrial,
    Supervisor,
};
use crate::snapshot::crc32;
use softsim_bus::MemError;
use softsim_cosim::{CoSim, CoSimStop, DeadlockCause, HwStats};
use softsim_isa::DecodeError;
use softsim_iss::{CpuStats, Fault, FslBlock};
use softsim_metrics::telemetry::{SpanKind, SpanRecord, Telemetry};
use softsim_trace::{DetectorKind, FifoDir};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Magic bytes at the head of every journal ("SoftSim Journal").
pub const MAGIC: [u8; 4] = *b"SSJL";
/// Current journal format version.
pub const VERSION: u32 = 1;

/// Header `kind` byte of a fault-campaign journal.
const KIND_CAMPAIGN: u8 = 0;
/// Header `kind` byte of a recovery-campaign journal.
const KIND_RECOVERY: u8 = 1;

/// Fixed header size: magic + version + kind + plan hash + trial count
/// + CRC trailer.
const HEADER_LEN: usize = 4 + 4 + 1 + 8 + 4 + 4;

/// Upper bound on one record's payload length. Real trial records are a
/// few hundred bytes; anything bigger is a corrupt length field, and
/// bounding it keeps a damaged journal from asking for gigabytes.
const MAX_RECORD: usize = 1 << 24;

/// Upper bound on a decoded panic-message string (matches nothing the
/// harness itself produces; guards against corrupt length fields).
const MAX_PANIC_MSG: usize = 4096;

/// Upper bound on the header's trial count. The resume scan allocates
/// one slot per planned trial before decoding any record, so a corrupt
/// count must fail typed instead of attempting a huge allocation.
const MAX_TRIALS: usize = 1 << 22;

/// Environment variable read by the durable runners: when set to `N`,
/// the process exits with status 3 immediately after the `N`-th record
/// append of this run. A crash-test hook for interrupt-and-resume
/// testing (CI kills a campaign "partway" deterministically with it) —
/// never set it in a process whose other work you care about.
pub const ABORT_ENV: &str = "SOFTSIM_ABORT_AFTER_TRIALS";

/// An environment variable held a value that cannot be used: not a
/// positive integer. Returned instead of silently falling back to the
/// default, so a typo'd `SOFTSIM_ABORT_AFTER_TRIALS=banana` (or `=0`)
/// fails loudly rather than quietly changing what a CI kill test means.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvConfigError {
    /// The variable that was set.
    pub var: &'static str,
    /// The rejected value.
    pub value: String,
}

impl std::fmt::Display for EnvConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {}={:?}: expected a positive integer (unset the variable for the default)",
            self.var, self.value
        )
    }
}

impl std::error::Error for EnvConfigError {}

/// Strictly parses [`ABORT_ENV`]: unset → `None`, a positive integer →
/// `Some(n)`, anything else (including `0`) → a typed
/// [`EnvConfigError`]. The durable runners call this on entry, so an
/// invalid value surfaces as [`JournalError::Config`] before any trial
/// runs; CLIs should call it eagerly for a clearer message.
pub fn abort_after_trials_from_env() -> Result<Option<u64>, EnvConfigError> {
    match std::env::var(ABORT_ENV) {
        Err(_) => Ok(None),
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(EnvConfigError { var: ABORT_ENV, value: v }),
        },
    }
}

/// Which failure an injected journal-append fault simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendFault {
    /// The frame is cut mid-write (half its bytes reach the file before
    /// the error) — the torn-tail case a power loss produces.
    ShortWrite,
    /// The write fails outright with a storage-full error; nothing of
    /// the frame reaches the file.
    DiskFull,
    /// The frame is written but the flush fails, so its durability
    /// cannot be trusted.
    FlushError,
}

impl std::fmt::Display for AppendFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AppendFault::ShortWrite => "short write",
            AppendFault::DiskFull => "disk full",
            AppendFault::FlushError => "flush error",
        })
    }
}

/// Injectable I/O fault for the journal append path: the append after
/// `after_appends` successful ones fails as `kind`. Tests use this to
/// prove a failed append degrades the run to non-durable (see the
/// module docs) instead of panicking or corrupting the journal tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendFaultPlan {
    /// The failure to simulate.
    pub kind: AppendFault,
    /// How many appends succeed before the fault fires.
    pub after_appends: u32,
}

/// How durable a journaled run actually was, reported by the
/// `_with_status` runners. The campaign report itself is byte-identical
/// either way — only the journal's fate differs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// `true` when every completed trial reached the journal; `false`
    /// when an append failed and journaling stopped.
    pub durable: bool,
    /// Records appended by this run (not counting resumed ones).
    pub appended: u32,
    /// Human-readable description of the append failure, when degraded.
    pub warning: Option<String>,
}

/// Why a journal could not be opened, read, or resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An underlying file operation failed.
    Io(std::io::ErrorKind),
    /// The journal ended before the fixed header was complete.
    Truncated,
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The journal uses a format version this build does not understand.
    VersionUnsupported(u32),
    /// The header CRC-32 trailer does not match — the header bytes were
    /// corrupted after they were written.
    ChecksumMismatch,
    /// The journal records a different campaign kind (fault vs
    /// recovery) than the caller expected.
    KindMismatch {
        /// Kind byte the caller expected.
        expected: u8,
        /// Kind byte found in the header.
        found: u8,
    },
    /// The journal was written for a different plan / configuration /
    /// golden reference than the one being resumed.
    PlanMismatch {
        /// Plan hash of the campaign being resumed.
        expected: u64,
        /// Plan hash recorded in the journal header.
        found: u64,
    },
    /// The journal's header declares a different trial count than the
    /// plan being resumed (possible only on a hash collision; checked
    /// anyway).
    TrialCountMismatch {
        /// Trial count of the campaign being resumed.
        expected: u32,
        /// Trial count recorded in the journal header.
        found: u32,
    },
    /// A field held a value that cannot occur in a real journal.
    Corrupt(&'static str),
    /// An environment knob the durable runners read was set to an
    /// unusable value (see [`abort_after_trials_from_env`]).
    Config(EnvConfigError),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(kind) => write!(f, "journal I/O error: {kind}"),
            JournalError::Truncated => write!(f, "journal truncated before the header ended"),
            JournalError::BadMagic => write!(f, "not a softsim trial journal (bad magic)"),
            JournalError::VersionUnsupported(v) => {
                write!(f, "unsupported journal version {v}")
            }
            JournalError::ChecksumMismatch => {
                write!(f, "journal header checksum mismatch (header corrupted)")
            }
            JournalError::KindMismatch { expected, found } => write!(
                f,
                "journal records a {} campaign, expected {}",
                kind_label(*found),
                kind_label(*expected)
            ),
            JournalError::PlanMismatch { expected, found } => write!(
                f,
                "journal plan hash {found:#018x} does not match this campaign ({expected:#018x})"
            ),
            JournalError::TrialCountMismatch { expected, found } => {
                write!(f, "journal declares {found} trials, this campaign has {expected}")
            }
            JournalError::Corrupt(what) => write!(f, "corrupt journal: {what}"),
            JournalError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e.kind())
    }
}

impl From<EnvConfigError> for JournalError {
    fn from(e: EnvConfigError) -> JournalError {
        JournalError::Config(e)
    }
}

fn kind_label(kind: u8) -> &'static str {
    match kind {
        KIND_CAMPAIGN => "fault",
        KIND_RECOVERY => "recovery",
        _ => "unknown",
    }
}

/// What a journal scan recovered: the completed trials by plan index,
/// plus accounting of how much of the file was trustworthy.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalScan<T> {
    /// Plan hash recorded in the journal header.
    pub plan_hash: u64,
    /// Trial count the journal's campaign was planned with.
    pub trials: usize,
    /// One slot per planned trial; `Some` where a valid record was
    /// found. Resume re-runs exactly the `None` slots.
    pub completed: Vec<Option<T>>,
    /// Valid records read (duplicates counted each time they appear).
    pub records: usize,
    /// Length of the valid journal prefix — header plus every
    /// well-framed record. Resume truncates the file to this length
    /// before appending.
    pub good_bytes: u64,
    /// Bytes after the valid prefix that were dropped (a torn final
    /// write, or corruption); the trials they covered re-run.
    pub torn_bytes: u64,
}

impl<T> JournalScan<T> {
    /// Planned trials with a valid journal record.
    pub fn done(&self) -> usize {
        self.completed.iter().filter(|t| t.is_some()).count()
    }

    /// Planned trials still to run.
    pub fn pending(&self) -> usize {
        self.trials - self.done()
    }
}

// ------------------------------------------------------------ byte helpers

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounded little-endian reader over one record payload.
struct Rd<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        let end = self.pos.checked_add(n).ok_or(JournalError::Corrupt("record truncated"))?;
        if end > self.bytes.len() {
            return Err(JournalError::Corrupt("record truncated"));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, JournalError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, JournalError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn bool(&mut self) -> Result<bool, JournalError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(JournalError::Corrupt("bool out of range")),
        }
    }

    fn str(&mut self) -> Result<String, JournalError> {
        let n = self.u32()? as usize;
        if n > MAX_PANIC_MSG {
            return Err(JournalError::Corrupt("string length out of range"));
        }
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| JournalError::Corrupt("string not UTF-8"))
    }
}

// ------------------------------------------------------------ trial codecs

fn put_dir(out: &mut Vec<u8>, dir: FifoDir) {
    put_u8(
        out,
        match dir {
            FifoDir::ToHw => 0,
            FifoDir::FromHw => 1,
        },
    );
}

fn get_dir(r: &mut Rd) -> Result<FifoDir, JournalError> {
    match r.u8()? {
        0 => Ok(FifoDir::ToHw),
        1 => Ok(FifoDir::FromHw),
        _ => Err(JournalError::Corrupt("FIFO direction out of range")),
    }
}

fn put_injection(out: &mut Vec<u8>, inj: &Injection) {
    put_u64(out, inj.cycle);
    match inj.kind {
        FaultKind::RegBitFlip { reg, bit } => {
            put_u8(out, 0);
            put_u8(out, reg);
            put_u8(out, bit);
        }
        FaultKind::MemBitFlip { addr, bit } => {
            put_u8(out, 1);
            put_u32(out, addr);
            put_u8(out, bit);
        }
        FaultKind::FifoBitFlip { dir, channel, index, bit } => {
            put_u8(out, 2);
            put_dir(out, dir);
            put_u8(out, channel);
            put_u8(out, index);
            put_u8(out, bit);
        }
        FaultKind::FifoDrop { dir, channel } => {
            put_u8(out, 3);
            put_dir(out, dir);
            put_u8(out, channel);
        }
        FaultKind::FifoDuplicate { dir, channel } => {
            put_u8(out, 4);
            put_dir(out, dir);
            put_u8(out, channel);
        }
        FaultKind::StuckFull { channel } => {
            put_u8(out, 5);
            put_u8(out, channel);
        }
        FaultKind::StuckEmpty { channel } => {
            put_u8(out, 6);
            put_u8(out, channel);
        }
        FaultKind::BlockStateFlip { peripheral, word, bit } => {
            put_u8(out, 7);
            put_u8(out, peripheral);
            put_u32(out, word);
            put_u8(out, bit);
        }
        FaultKind::HarnessPanic => put_u8(out, 8),
    }
}

fn get_injection(r: &mut Rd) -> Result<Injection, JournalError> {
    let cycle = r.u64()?;
    let kind = match r.u8()? {
        0 => FaultKind::RegBitFlip { reg: r.u8()?, bit: r.u8()? },
        1 => FaultKind::MemBitFlip { addr: r.u32()?, bit: r.u8()? },
        2 => FaultKind::FifoBitFlip {
            dir: get_dir(r)?,
            channel: r.u8()?,
            index: r.u8()?,
            bit: r.u8()?,
        },
        3 => FaultKind::FifoDrop { dir: get_dir(r)?, channel: r.u8()? },
        4 => FaultKind::FifoDuplicate { dir: get_dir(r)?, channel: r.u8()? },
        5 => FaultKind::StuckFull { channel: r.u8()? },
        6 => FaultKind::StuckEmpty { channel: r.u8()? },
        7 => FaultKind::BlockStateFlip { peripheral: r.u8()?, word: r.u32()?, bit: r.u8()? },
        8 => FaultKind::HarnessPanic,
        _ => return Err(JournalError::Corrupt("fault kind out of range")),
    };
    Ok(Injection { cycle, kind })
}

fn put_block(out: &mut Vec<u8>, b: &FslBlock) {
    put_u8(out, b.channel);
    put_dir(out, b.dir);
    put_u32(out, b.pc);
}

fn get_block(r: &mut Rd) -> Result<FslBlock, JournalError> {
    Ok(FslBlock { channel: r.u8()?, dir: get_dir(r)?, pc: r.u32()? })
}

fn put_fault(out: &mut Vec<u8>, fault: &Fault) {
    match fault {
        Fault::Decode { pc, err } => {
            put_u8(out, 0);
            put_u32(out, *pc);
            match err {
                DecodeError::UnknownOpcode { opcode, word } => {
                    put_u8(out, 0);
                    put_u8(out, *opcode);
                    put_u32(out, *word);
                }
                DecodeError::BadMinor { opcode, word } => {
                    put_u8(out, 1);
                    put_u8(out, *opcode);
                    put_u32(out, *word);
                }
            }
        }
        Fault::Memory { pc, err } => {
            put_u8(out, 1);
            put_u32(out, *pc);
            match err {
                MemError::OutOfRange { addr, size } => {
                    put_u8(out, 0);
                    put_u32(out, *addr);
                    put_u32(out, *size);
                }
                MemError::Misaligned { addr, align } => {
                    put_u8(out, 1);
                    put_u32(out, *addr);
                    put_u32(out, *align);
                }
            }
        }
        Fault::IllegalDelaySlot { pc } => {
            put_u8(out, 2);
            put_u32(out, *pc);
        }
        Fault::DisabledInstruction { pc, unit } => {
            put_u8(out, 3);
            put_u32(out, *pc);
            put_str(out, unit);
        }
    }
}

fn get_fault(r: &mut Rd) -> Result<Fault, JournalError> {
    match r.u8()? {
        0 => {
            let pc = r.u32()?;
            let err = match r.u8()? {
                0 => DecodeError::UnknownOpcode { opcode: r.u8()?, word: r.u32()? },
                1 => DecodeError::BadMinor { opcode: r.u8()?, word: r.u32()? },
                _ => return Err(JournalError::Corrupt("decode error tag out of range")),
            };
            Ok(Fault::Decode { pc, err })
        }
        1 => {
            let pc = r.u32()?;
            let err = match r.u8()? {
                0 => MemError::OutOfRange { addr: r.u32()?, size: r.u32()? },
                1 => MemError::Misaligned { addr: r.u32()?, align: r.u32()? },
                _ => return Err(JournalError::Corrupt("memory error tag out of range")),
            };
            Ok(Fault::Memory { pc, err })
        }
        2 => Ok(Fault::IllegalDelaySlot { pc: r.u32()? }),
        3 => {
            let pc = r.u32()?;
            // Decode back to the `&'static str` the ISS uses; a string
            // it never produces means the record is damaged.
            let unit = match r.str()?.as_str() {
                "multiplier" => "multiplier",
                "divider" => "divider",
                "barrel shifter" => "barrel shifter",
                _ => return Err(JournalError::Corrupt("unknown disabled unit")),
            };
            Ok(Fault::DisabledInstruction { pc, unit })
        }
        _ => Err(JournalError::Corrupt("fault tag out of range")),
    }
}

fn put_stop(out: &mut Vec<u8>, stop: &CoSimStop) {
    match stop {
        CoSimStop::Halted => put_u8(out, 0),
        CoSimStop::CycleLimit { blocked } => {
            put_u8(out, 1);
            match blocked {
                None => put_u8(out, 0),
                Some(b) => {
                    put_u8(out, 1);
                    put_block(out, b);
                }
            }
        }
        CoSimStop::Deadlock { cycle, cause } => {
            put_u8(out, 2);
            put_u64(out, *cycle);
            match cause {
                DeadlockCause::FslDeadlock { block } => {
                    put_u8(out, 0);
                    put_block(out, block);
                }
                DeadlockCause::Livelock => put_u8(out, 1),
            }
        }
        CoSimStop::Fault(fault) => {
            put_u8(out, 3);
            put_fault(out, fault);
        }
    }
}

fn get_stop(r: &mut Rd) -> Result<CoSimStop, JournalError> {
    match r.u8()? {
        0 => Ok(CoSimStop::Halted),
        1 => {
            let blocked = match r.u8()? {
                0 => None,
                1 => Some(get_block(r)?),
                _ => return Err(JournalError::Corrupt("option tag out of range")),
            };
            Ok(CoSimStop::CycleLimit { blocked })
        }
        2 => {
            let cycle = r.u64()?;
            let cause = match r.u8()? {
                0 => DeadlockCause::FslDeadlock { block: get_block(r)? },
                1 => DeadlockCause::Livelock,
                _ => return Err(JournalError::Corrupt("deadlock cause out of range")),
            };
            Ok(CoSimStop::Deadlock { cycle, cause })
        }
        3 => Ok(CoSimStop::Fault(get_fault(r)?)),
        _ => Err(JournalError::Corrupt("stop tag out of range")),
    }
}

fn put_cpu_stats(out: &mut Vec<u8>, s: &CpuStats) {
    for v in [
        s.cycles,
        s.instructions,
        s.fsl_read_stalls,
        s.fsl_write_stalls,
        s.fsl_words_sent,
        s.fsl_words_received,
        s.fsl_nonblocking_misses,
        s.fsl_control_mismatches,
        s.taken_branches,
        s.mem_reads,
        s.mem_writes,
        s.multiplies,
    ] {
        put_u64(out, v);
    }
}

fn get_cpu_stats(r: &mut Rd) -> Result<CpuStats, JournalError> {
    Ok(CpuStats {
        cycles: r.u64()?,
        instructions: r.u64()?,
        fsl_read_stalls: r.u64()?,
        fsl_write_stalls: r.u64()?,
        fsl_words_sent: r.u64()?,
        fsl_words_received: r.u64()?,
        fsl_nonblocking_misses: r.u64()?,
        fsl_control_mismatches: r.u64()?,
        taken_branches: r.u64()?,
        mem_reads: r.u64()?,
        mem_writes: r.u64()?,
        multiplies: r.u64()?,
    })
}

fn put_hw_stats(out: &mut Vec<u8>, s: &HwStats) {
    put_u64(out, s.words_to_hw);
    put_u64(out, s.words_from_hw);
    put_u64(out, s.output_overflows);
    put_u64(out, s.max_to_hw_occupancy as u64);
    put_u64(out, s.max_from_hw_occupancy as u64);
}

fn get_hw_stats(r: &mut Rd) -> Result<HwStats, JournalError> {
    Ok(HwStats {
        words_to_hw: r.u64()?,
        words_from_hw: r.u64()?,
        output_overflows: r.u64()?,
        max_to_hw_occupancy: r.u64()? as usize,
        max_from_hw_occupancy: r.u64()? as usize,
    })
}

fn put_outcome(out: &mut Vec<u8>, outcome: &Outcome) {
    match outcome {
        Outcome::Masked => put_u8(out, 0),
        Outcome::Sdc => put_u8(out, 1),
        Outcome::Deadlock => put_u8(out, 2),
        Outcome::Fault => put_u8(out, 3),
        Outcome::Budget => put_u8(out, 4),
        Outcome::HarnessError { panic_msg } => {
            put_u8(out, 5);
            put_str(out, panic_msg);
        }
    }
}

fn get_outcome(r: &mut Rd) -> Result<Outcome, JournalError> {
    Ok(match r.u8()? {
        0 => Outcome::Masked,
        1 => Outcome::Sdc,
        2 => Outcome::Deadlock,
        3 => Outcome::Fault,
        4 => Outcome::Budget,
        5 => Outcome::HarnessError { panic_msg: r.str()? },
        _ => return Err(JournalError::Corrupt("outcome tag out of range")),
    })
}

fn put_trial(out: &mut Vec<u8>, t: &Trial) {
    put_injection(out, &t.injection);
    put_bool(out, t.applied);
    put_stop(out, &t.stop);
    put_outcome(out, &t.outcome);
    put_u32(out, t.retries);
    put_cpu_stats(out, &t.cpu_stats);
    put_hw_stats(out, &t.hw_stats);
}

fn get_trial(r: &mut Rd) -> Result<Trial, JournalError> {
    Ok(Trial {
        injection: get_injection(r)?,
        applied: r.bool()?,
        stop: get_stop(r)?,
        outcome: get_outcome(r)?,
        retries: r.u32()?,
        cpu_stats: get_cpu_stats(r)?,
        hw_stats: get_hw_stats(r)?,
    })
}

fn put_recovery_outcome(out: &mut Vec<u8>, outcome: &RecoveryOutcome) {
    match outcome {
        RecoveryOutcome::Clean => put_u8(out, 0),
        RecoveryOutcome::Recovered { detection_latency, recovery_cycles, retries } => {
            put_u8(out, 1);
            put_u64(out, *detection_latency);
            put_u64(out, *recovery_cycles);
            put_u32(out, *retries);
        }
        RecoveryOutcome::Unrecoverable => put_u8(out, 2),
        RecoveryOutcome::HarnessError { panic_msg } => {
            put_u8(out, 3);
            put_str(out, panic_msg);
        }
    }
}

fn get_recovery_outcome(r: &mut Rd) -> Result<RecoveryOutcome, JournalError> {
    Ok(match r.u8()? {
        0 => RecoveryOutcome::Clean,
        1 => RecoveryOutcome::Recovered {
            detection_latency: r.u64()?,
            recovery_cycles: r.u64()?,
            retries: r.u32()?,
        },
        2 => RecoveryOutcome::Unrecoverable,
        3 => RecoveryOutcome::HarnessError { panic_msg: r.str()? },
        _ => return Err(JournalError::Corrupt("recovery outcome tag out of range")),
    })
}

fn put_detector(out: &mut Vec<u8>, d: Option<DetectorKind>) {
    match d {
        None => put_u8(out, 0),
        Some(k) => put_u8(
            out,
            match k {
                DetectorKind::Watchdog => 1,
                DetectorKind::Ecc => 2,
                DetectorKind::Tmr => 3,
                DetectorKind::Signature => 4,
                DetectorKind::Observable => 5,
                DetectorKind::Fault => 6,
            },
        ),
    }
}

fn get_detector(r: &mut Rd) -> Result<Option<DetectorKind>, JournalError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(DetectorKind::Watchdog),
        2 => Some(DetectorKind::Ecc),
        3 => Some(DetectorKind::Tmr),
        4 => Some(DetectorKind::Signature),
        5 => Some(DetectorKind::Observable),
        6 => Some(DetectorKind::Fault),
        _ => return Err(JournalError::Corrupt("detector tag out of range")),
    })
}

fn put_recovery_trial(out: &mut Vec<u8>, t: &RecoveryTrial) {
    put_injection(out, &t.injection);
    put_bool(out, t.applied);
    put_recovery_outcome(out, &t.outcome);
    put_stop(out, &t.stop);
    put_detector(out, t.detector);
    put_u64(out, t.work_cycles);
}

fn get_recovery_trial(r: &mut Rd) -> Result<RecoveryTrial, JournalError> {
    Ok(RecoveryTrial {
        injection: get_injection(r)?,
        applied: r.bool()?,
        outcome: get_recovery_outcome(r)?,
        stop: get_stop(r)?,
        detector: get_detector(r)?,
        work_cycles: r.u64()?,
    })
}

// ------------------------------------------------------------- plan hashes

/// FNV-1a 64-bit digest.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hash of a fault campaign's deterministic identity: the
/// classification-relevant configuration knobs, the full plan, and the
/// golden reference. The wall-clock budget and retry backoff are
/// deliberately excluded — they are machine-local tuning, not part of
/// what the campaign computes.
fn campaign_plan_hash(
    plan: &[Injection],
    config: CampaignConfig,
    golden_cycles: u64,
    golden_observed: &[u32],
) -> u64 {
    let mut buf = Vec::with_capacity(64 + plan.len() * 16 + golden_observed.len() * 4);
    put_u64(&mut buf, config.watchdog_threshold);
    put_u64(&mut buf, config.budget_factor);
    put_u64(&mut buf, config.budget_floor);
    put_bool(&mut buf, config.fast_forward);
    match config.trial_cycle_budget {
        None => put_u8(&mut buf, 0),
        Some(v) => {
            put_u8(&mut buf, 1);
            put_u64(&mut buf, v);
        }
    }
    put_u32(&mut buf, plan.len() as u32);
    for inj in plan {
        put_injection(&mut buf, inj);
    }
    put_u64(&mut buf, golden_cycles);
    put_u32(&mut buf, golden_observed.len() as u32);
    for &w in golden_observed {
        put_u32(&mut buf, w);
    }
    fnv1a64(&buf)
}

/// Hash of a recovery campaign's deterministic identity (policy knobs,
/// plan, golden reference).
fn recovery_plan_hash(
    plan: &[Injection],
    policy: RecoveryPolicy,
    golden_cycles: u64,
    golden_observed: &[u32],
) -> u64 {
    let mut buf = Vec::with_capacity(64 + plan.len() * 16 + golden_observed.len() * 4);
    put_u64(&mut buf, policy.checkpoint_every);
    put_u32(&mut buf, policy.max_retries);
    put_u64(&mut buf, policy.watchdog_threshold);
    put_u64(&mut buf, policy.budget_factor);
    put_u64(&mut buf, policy.budget_floor);
    put_bool(&mut buf, policy.signature_windows);
    put_u64(&mut buf, policy.max_kept_checkpoints as u64);
    put_u32(&mut buf, plan.len() as u32);
    for inj in plan {
        put_injection(&mut buf, inj);
    }
    put_u64(&mut buf, golden_cycles);
    put_u32(&mut buf, golden_observed.len() as u32);
    for &w in golden_observed {
        put_u32(&mut buf, w);
    }
    fnv1a64(&buf)
}

// --------------------------------------------------------- header and scan

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    kind: u8,
    plan_hash: u64,
    trials: u32,
}

impl Header {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN);
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u8(&mut out, self.kind);
        put_u64(&mut out, self.plan_hash);
        put_u32(&mut out, self.trials);
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }
}

/// Validates the header and walks the record frames of `bytes`.
/// Header-level damage is a typed error; record-level damage ends the
/// scan at the last good frame (the tail is reported, not an error).
fn scan_bytes<T: Clone>(
    bytes: &[u8],
    expected_kind: u8,
    decode: &dyn Fn(&mut Rd) -> Result<T, JournalError>,
) -> Result<JournalScan<T>, JournalError> {
    if bytes.len() < 4 {
        return Err(JournalError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(JournalError::BadMagic);
    }
    if bytes.len() < 8 {
        return Err(JournalError::Truncated);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(JournalError::VersionUnsupported(version));
    }
    if bytes.len() < HEADER_LEN {
        return Err(JournalError::Truncated);
    }
    let body = HEADER_LEN - 4;
    let stored =
        u32::from_le_bytes([bytes[body], bytes[body + 1], bytes[body + 2], bytes[body + 3]]);
    if crc32(&bytes[..body]) != stored {
        return Err(JournalError::ChecksumMismatch);
    }
    let kind = bytes[8];
    if kind != expected_kind {
        return Err(JournalError::KindMismatch { expected: expected_kind, found: kind });
    }
    let plan_hash = u64::from_le_bytes([
        bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15], bytes[16],
    ]);
    let trials = u32::from_le_bytes([bytes[17], bytes[18], bytes[19], bytes[20]]) as usize;
    // The slot table is allocated from the header before any record is
    // decoded, so clamp hostile counts (a CRC-colliding corruption)
    // rather than attempting a multi-gigabyte allocation.
    if trials > MAX_TRIALS {
        return Err(JournalError::Corrupt("implausible trial count"));
    }

    let mut completed: Vec<Option<T>> = vec![None; trials];
    let mut records = 0usize;
    let mut pos = HEADER_LEN;
    while let Some(rest) = bytes.len().checked_sub(pos) {
        if rest < 4 {
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        // A payload is at least the 4-byte trial index.
        if !(4..=MAX_RECORD).contains(&len) || rest < 4 + len + 4 {
            break;
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let crc_at = pos + 4 + len;
        let stored = u32::from_le_bytes([
            bytes[crc_at],
            bytes[crc_at + 1],
            bytes[crc_at + 2],
            bytes[crc_at + 3],
        ]);
        if crc32(payload) != stored {
            break;
        }
        let mut r = Rd { bytes: payload, pos: 0 };
        let Ok(index) = r.u32() else { break };
        let Ok(trial) = decode(&mut r) else { break };
        if r.pos != payload.len() || index as usize >= trials {
            break;
        }
        // Duplicate indices resolve last-wins; trials are deterministic
        // so duplicates are byte-identical anyway.
        completed[index as usize] = Some(trial);
        records += 1;
        pos = crc_at + 4;
    }
    Ok(JournalScan {
        plan_hash,
        trials,
        completed,
        records,
        good_bytes: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
    })
}

/// Reads a fault-campaign journal: which trials completed, under what
/// plan hash, and how much of the file survived. Pure inspection — the
/// file is not modified (resume truncates; this does not).
pub fn resume_from_journal(path: &Path) -> Result<JournalScan<Trial>, JournalError> {
    let bytes = std::fs::read(path)?;
    scan_bytes(&bytes, KIND_CAMPAIGN, &get_trial)
}

/// Reads a recovery-campaign journal; see [`resume_from_journal`].
pub fn resume_recovery_from_journal(
    path: &Path,
) -> Result<JournalScan<RecoveryTrial>, JournalError> {
    let bytes = std::fs::read(path)?;
    scan_bytes(&bytes, KIND_RECOVERY, &get_recovery_trial)
}

// ---------------------------------------------------------------- appends

/// Opens the journal for a run: on resume, scan + validate + truncate
/// the torn tail and return the already-completed slots; otherwise (or
/// when the file is missing/empty) start fresh with a new header.
fn open_journal<T: Clone>(
    path: &Path,
    header: &Header,
    resume: bool,
    decode: &dyn Fn(&mut Rd) -> Result<T, JournalError>,
) -> Result<(File, Vec<Option<T>>, u64), JournalError> {
    if resume {
        match std::fs::read(path) {
            Ok(bytes) if bytes.is_empty() => {} // crash before the header: fresh start
            Ok(bytes) => {
                let scan = scan_bytes(&bytes, header.kind, decode)?;
                if scan.plan_hash != header.plan_hash {
                    return Err(JournalError::PlanMismatch {
                        expected: header.plan_hash,
                        found: scan.plan_hash,
                    });
                }
                if scan.trials != header.trials as usize {
                    return Err(JournalError::TrialCountMismatch {
                        expected: header.trials,
                        found: scan.trials as u32,
                    });
                }
                let mut file = OpenOptions::new().write(true).open(path)?;
                file.set_len(scan.good_bytes)?;
                file.seek(SeekFrom::End(0))?;
                return Ok((file, scan.completed, scan.good_bytes));
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {} // fresh start
            Err(e) => return Err(e.into()),
        }
    }
    let mut file = File::create(path)?;
    file.write_all(&header.encode())?;
    file.flush()?;
    Ok((file, vec![None; header.trials as usize], HEADER_LEN as u64))
}

/// The journal's write side: frames appends, tracks the last good byte
/// offset, optionally injects an [`AppendFaultPlan`], and degrades on
/// the first failure — truncating the file back to the last good frame
/// so nothing torn is left behind, then dropping every later append.
struct Appender {
    file: File,
    good_bytes: u64,
    appended: u32,
    fault: Option<AppendFaultPlan>,
    degraded: Option<String>,
}

impl Appender {
    fn new(file: File, good_bytes: u64, fault: Option<AppendFaultPlan>) -> Appender {
        Appender { file, good_bytes, appended: 0, fault, degraded: None }
    }

    /// One framed append (`len | payload | crc`, then flush, so a crash
    /// can tear at most the final frame). Returns `false` once the
    /// appender has degraded; the campaign carries on in memory.
    fn append(&mut self, payload: &[u8]) -> bool {
        if self.degraded.is_some() {
            return false;
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(payload);
        put_u32(&mut frame, crc32(payload));
        let injected = self.fault.filter(|f| self.appended == f.after_appends).map(|f| f.kind);
        match self.write_frame(&frame, injected) {
            Ok(()) => {
                self.appended += 1;
                self.good_bytes += frame.len() as u64;
                true
            }
            Err(e) => {
                // Degrade, not die: drop any partial frame so the
                // journal ends on the last good record, then stop
                // journaling for the rest of the run.
                let _ = self.file.set_len(self.good_bytes);
                let _ = self.file.seek(SeekFrom::End(0));
                self.degraded = Some(format!(
                    "journal append {} failed ({e}); continuing non-durable from record {}",
                    self.appended, self.appended,
                ));
                false
            }
        }
    }

    fn write_frame(&mut self, frame: &[u8], injected: Option<AppendFault>) -> std::io::Result<()> {
        match injected {
            Some(AppendFault::ShortWrite) => {
                // Half the frame reaches the disk before the failure —
                // exactly the torn tail a power loss leaves.
                self.file.write_all(&frame[..frame.len() / 2])?;
                self.file.flush()?;
                Err(std::io::Error::new(std::io::ErrorKind::WriteZero, "injected short write"))
            }
            Some(AppendFault::DiskFull) => {
                Err(std::io::Error::new(std::io::ErrorKind::StorageFull, "injected disk full"))
            }
            Some(AppendFault::FlushError) => {
                self.file.write_all(frame)?;
                Err(std::io::Error::other("injected flush error"))
            }
            None => {
                self.file.write_all(frame)?;
                self.file.flush()
            }
        }
    }

    fn status(&self) -> DurabilityStatus {
        DurabilityStatus {
            durable: self.degraded.is_none(),
            appended: self.appended,
            warning: self.degraded.clone(),
        }
    }
}

/// The [`ABORT_ENV`] crash-test hook: exits the process with status 3
/// after the configured number of record appends.
struct AbortHook {
    after: Option<u64>,
    appended: AtomicU64,
}

impl AbortHook {
    fn from_env() -> Result<AbortHook, EnvConfigError> {
        let after = abort_after_trials_from_env()?;
        Ok(AbortHook { after, appended: AtomicU64::new(0) })
    }

    fn on_append(&self) {
        if let Some(n) = self.after {
            if self.appended.fetch_add(1, Ordering::SeqCst) + 1 >= n {
                // Simulates a hard kill mid-campaign; the journal holds
                // everything appended so far.
                std::process::exit(3);
            }
        }
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------- runners

/// [`crate::campaign::run_campaign`] with a durable journal: every
/// completed trial is appended to `journal` before the campaign moves
/// on, and with `resume` set a prior journal's trials are loaded
/// instead of re-executed (after validating the plan hash; the torn
/// tail of an interrupted run is dropped and re-run). The report is
/// byte-identical to the plain runner's.
///
/// `resume = false` always starts fresh, truncating any existing file;
/// `resume = true` with no existing journal is also a fresh start.
pub fn run_campaign_durable(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    config: CampaignConfig,
    journal: &Path,
    resume: bool,
) -> Result<CampaignReport, JournalError> {
    run_campaign_durable_parallel(make_sim, plan, observe, config, journal, resume, 1)
}

/// [`run_campaign_durable`] on worker threads. Workers append records
/// in completion order, but resume keys on trial indices and results
/// merge in plan order — the report (and the resumability of the
/// journal) is independent of `workers` and of where a previous run was
/// interrupted.
pub fn run_campaign_durable_parallel(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    config: CampaignConfig,
    journal: &Path,
    resume: bool,
    workers: usize,
) -> Result<CampaignReport, JournalError> {
    run_campaign_durable_parallel_with_telemetry(
        make_sim, plan, observe, config, journal, resume, workers, None,
    )
}

/// [`run_campaign_durable_parallel`] with optional harness telemetry:
/// besides the campaign/golden/trial spans of the plain runners, every
/// journal record append is its own span carrying the frame bytes
/// written. On resume, only the missing trials are announced as
/// expected work. The report and the journal bytes are byte-identical
/// whether `telemetry` is `None` or `Some`, at any worker count.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_durable_parallel_with_telemetry(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    config: CampaignConfig,
    journal: &Path,
    resume: bool,
    workers: usize,
    telemetry: Option<&Telemetry>,
) -> Result<CampaignReport, JournalError> {
    let (report, status) = run_campaign_durable_with_status(
        make_sim, plan, observe, config, journal, resume, workers, telemetry, None,
    )?;
    if let Some(w) = &status.warning {
        eprintln!("warning: {w}");
    }
    Ok(report)
}

/// [`run_campaign_durable_parallel_with_telemetry`] plus the write-side
/// degradation contract: the returned [`DurabilityStatus`] reports
/// whether every completed trial reached the journal, and `fault`
/// injects an [`AppendFaultPlan`] into the write path (tests and
/// fault-shim callers only — pass `None` in production). A failed
/// append never fails the campaign: the journal is truncated to its
/// last good frame and the run continues non-durable, so the report is
/// byte-identical to the healthy run's.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_durable_with_status(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    config: CampaignConfig,
    journal: &Path,
    resume: bool,
    workers: usize,
    telemetry: Option<&Telemetry>,
    fault: Option<AppendFaultPlan>,
) -> Result<(CampaignReport, DurabilityStatus), JournalError> {
    let campaign_start = telemetry.map(|_| Instant::now());
    let mut sim = make_sim();
    sim.set_fast_forward(config.fast_forward);
    let initial = sim.save_state();
    let initial_cycles = sim.cpu().stats().cycles;
    let golden_start = telemetry.map(|_| Instant::now());
    let (golden_cycles, golden_observed, budget) = golden_run(&mut sim, &observe, config);
    if let Some(t) = telemetry {
        let mut rec = SpanRecord::new(SpanKind::Golden, 0, golden_start.unwrap().elapsed());
        rec.sim_cycles = golden_cycles.saturating_sub(initial_cycles);
        t.record(rec);
    }
    drop(sim);

    let header = Header {
        kind: KIND_CAMPAIGN,
        plan_hash: campaign_plan_hash(plan, config, golden_cycles, &golden_observed),
        trials: plan.len() as u32,
    };
    let (file, mut slots, good_bytes) = open_journal(journal, &header, resume, &get_trial)?;
    let pending: Vec<u32> =
        (0..plan.len() as u32).filter(|&i| slots[i as usize].is_none()).collect();
    if let Some(t) = telemetry {
        t.expect_trials(pending.len() as u64);
    }

    let appender = Mutex::new(Appender::new(file, good_bytes, fault));
    let hook = AbortHook::from_env()?;
    let workers = workers.clamp(1, pending.len().max(1));
    let mut fresh: Vec<Option<Trial>> = vec![None; pending.len()];
    std::thread::scope(|scope| {
        let chunk = pending.len().div_ceil(workers);
        let mut slot_rest = fresh.as_mut_slice();
        let mut idx_rest = pending.as_slice();
        let (initial, golden_observed) = (&initial, &golden_observed);
        let (make_sim, observe) = (&make_sim, &observe);
        let (appender, hook) = (&appender, &hook);
        let mut worker_id: u32 = 0;
        while !idx_rest.is_empty() {
            let take = chunk.min(idx_rest.len());
            let (idx_chunk, idx_next) = idx_rest.split_at(take);
            let (slot_chunk, slot_next) = slot_rest.split_at_mut(take);
            idx_rest = idx_next;
            slot_rest = slot_next;
            let worker = worker_id;
            worker_id += 1;
            scope.spawn(move || {
                let mut sim = make_sim();
                sim.set_fast_forward(config.fast_forward);
                let rebuild: &dyn Fn() -> CoSim = make_sim;
                let scope_rec =
                    telemetry.map(|t| TrialScope { telemetry: t, worker, initial_cycles });
                for (slot, &index) in slot_chunk.iter_mut().zip(idx_chunk) {
                    let trial = run_trial_guarded(
                        &mut sim,
                        Some(rebuild),
                        initial,
                        plan[index as usize],
                        budget,
                        golden_observed,
                        observe,
                        config,
                        scope_rec.as_ref(),
                    );
                    let mut payload = Vec::with_capacity(256);
                    put_u32(&mut payload, index);
                    put_trial(&mut payload, &trial);
                    let append_start = telemetry.map(|_| Instant::now());
                    let appended = lock(appender).append(&payload);
                    if let Some(t) = telemetry {
                        let mut rec = SpanRecord::new(
                            SpanKind::JournalAppend,
                            worker,
                            append_start.unwrap().elapsed(),
                        );
                        rec.journal_bytes = if appended { 8 + payload.len() as u64 } else { 0 };
                        t.record(rec);
                    }
                    if appended {
                        hook.on_append();
                    }
                    *slot = Some(trial);
                }
            });
        }
    });
    let status = lock(&appender).status();
    for (&index, trial) in pending.iter().zip(fresh) {
        slots[index as usize] = trial;
    }
    let trials = slots.into_iter().map(|t| t.expect("worker filled every slot")).collect();
    if let (Some(t), Some(start)) = (telemetry, campaign_start) {
        t.record(SpanRecord::new(SpanKind::Campaign, 0, start.elapsed()));
    }
    Ok((CampaignReport { golden_cycles, golden_observed, trials }, status))
}

/// [`crate::recover::run_recovery_campaign`] with a durable journal;
/// see [`run_campaign_durable`] for the journal and resume semantics.
pub fn run_recovery_campaign_durable(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    policy: RecoveryPolicy,
    journal: &Path,
    resume: bool,
) -> Result<RecoveryReport, JournalError> {
    run_recovery_campaign_durable_parallel(make_sim, plan, observe, policy, journal, resume, 1)
}

/// [`run_recovery_campaign_durable`] on worker threads; see
/// [`run_campaign_durable_parallel`].
pub fn run_recovery_campaign_durable_parallel(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    policy: RecoveryPolicy,
    journal: &Path,
    resume: bool,
    workers: usize,
) -> Result<RecoveryReport, JournalError> {
    run_recovery_campaign_durable_parallel_with_telemetry(
        make_sim, plan, observe, policy, journal, resume, workers, None,
    )
}

/// [`run_recovery_campaign_durable_parallel`] with optional harness
/// telemetry; see [`run_campaign_durable_parallel_with_telemetry`] for
/// the span set and the determinism contract.
#[allow(clippy::too_many_arguments)]
pub fn run_recovery_campaign_durable_parallel_with_telemetry(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    policy: RecoveryPolicy,
    journal: &Path,
    resume: bool,
    workers: usize,
    telemetry: Option<&Telemetry>,
) -> Result<RecoveryReport, JournalError> {
    let (report, status) = run_recovery_campaign_durable_with_status(
        make_sim, plan, observe, policy, journal, resume, workers, telemetry, None,
    )?;
    if let Some(w) = &status.warning {
        eprintln!("warning: {w}");
    }
    Ok(report)
}

/// [`run_campaign_durable_with_status`] for recovery campaigns: same
/// degrade-on-append-failure contract and injectable write faults.
#[allow(clippy::too_many_arguments)]
pub fn run_recovery_campaign_durable_with_status(
    make_sim: impl Fn() -> CoSim + Sync,
    plan: &[Injection],
    observe: impl Fn(&CoSim) -> Vec<u32> + Sync,
    policy: RecoveryPolicy,
    journal: &Path,
    resume: bool,
    workers: usize,
    telemetry: Option<&Telemetry>,
    fault: Option<AppendFaultPlan>,
) -> Result<(RecoveryReport, DurabilityStatus), JournalError> {
    let campaign_start = telemetry.map(|_| Instant::now());
    let supervisor = Supervisor::new(policy);
    let mut sim = make_sim();
    let golden_start = telemetry.map(|_| Instant::now());
    let golden = supervisor.capture_golden(&mut sim, &observe);
    if let Some(t) = telemetry {
        let mut rec = SpanRecord::new(SpanKind::Golden, 0, golden_start.unwrap().elapsed());
        rec.sim_cycles = golden.cycles;
        t.record(rec);
    }
    drop(sim);

    let header = Header {
        kind: KIND_RECOVERY,
        plan_hash: recovery_plan_hash(plan, policy, golden.cycles, &golden.observed),
        trials: plan.len() as u32,
    };
    let (file, mut slots, good_bytes) =
        open_journal(journal, &header, resume, &get_recovery_trial)?;
    let pending: Vec<u32> =
        (0..plan.len() as u32).filter(|&i| slots[i as usize].is_none()).collect();
    if let Some(t) = telemetry {
        t.expect_trials(pending.len() as u64);
    }

    let appender = Mutex::new(Appender::new(file, good_bytes, fault));
    let hook = AbortHook::from_env()?;
    let workers = workers.clamp(1, pending.len().max(1));
    let mut fresh: Vec<Option<RecoveryTrial>> = vec![None; pending.len()];
    std::thread::scope(|scope| {
        let chunk = pending.len().div_ceil(workers);
        let mut slot_rest = fresh.as_mut_slice();
        let mut idx_rest = pending.as_slice();
        let golden = &golden;
        let (make_sim, observe) = (&make_sim, &observe);
        let (appender, hook) = (&appender, &hook);
        let mut worker_id: u32 = 0;
        while !idx_rest.is_empty() {
            let take = chunk.min(idx_rest.len());
            let (idx_chunk, idx_next) = idx_rest.split_at(take);
            let (slot_chunk, slot_next) = slot_rest.split_at_mut(take);
            idx_rest = idx_next;
            slot_rest = slot_next;
            let worker = worker_id;
            worker_id += 1;
            scope.spawn(move || {
                let supervisor = Supervisor::new(policy);
                let mut sim = make_sim();
                let rebuild: &dyn Fn() -> CoSim = make_sim;
                for (slot, &index) in slot_chunk.iter_mut().zip(idx_chunk) {
                    let trial = run_recovery_trial_guarded(
                        &supervisor,
                        &mut sim,
                        Some(rebuild),
                        golden,
                        plan[index as usize],
                        observe,
                        telemetry,
                        worker,
                    );
                    let mut payload = Vec::with_capacity(256);
                    put_u32(&mut payload, index);
                    put_recovery_trial(&mut payload, &trial);
                    let append_start = telemetry.map(|_| Instant::now());
                    let appended = lock(appender).append(&payload);
                    if let Some(t) = telemetry {
                        let mut rec = SpanRecord::new(
                            SpanKind::JournalAppend,
                            worker,
                            append_start.unwrap().elapsed(),
                        );
                        rec.journal_bytes = if appended { 8 + payload.len() as u64 } else { 0 };
                        t.record(rec);
                    }
                    if appended {
                        hook.on_append();
                    }
                    *slot = Some(trial);
                }
            });
        }
    });
    let status = lock(&appender).status();
    for (&index, trial) in pending.iter().zip(fresh) {
        slots[index as usize] = trial;
    }
    let trials = slots.into_iter().map(|t| t.expect("worker filled every slot")).collect();
    if let (Some(t), Some(start)) = (telemetry, campaign_start) {
        t.record(SpanRecord::new(SpanKind::Campaign, 0, start.elapsed()));
    }
    Ok((
        RecoveryReport { golden_cycles: golden.cycles, golden_observed: golden.observed, trials },
        status,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test owns every `ABORT_ENV` mutation (parallel tests in this
    /// binary never set it), covering unset, valid, zero, and garbage.
    #[test]
    fn abort_env_parsing_is_strict() {
        std::env::remove_var(ABORT_ENV);
        assert_eq!(abort_after_trials_from_env(), Ok(None));
        std::env::set_var(ABORT_ENV, " 37 ");
        assert_eq!(abort_after_trials_from_env(), Ok(Some(37)));
        for bad in ["0", "banana", "-3", "3.5", ""] {
            std::env::set_var(ABORT_ENV, bad);
            let err = abort_after_trials_from_env().expect_err(bad);
            assert_eq!(err.var, ABORT_ENV);
            assert_eq!(err.value, bad);
            let msg = err.to_string();
            assert!(msg.contains(ABORT_ENV) && msg.contains("positive integer"), "{msg}");
            assert!(JournalError::from(err).to_string().contains("invalid configuration"));
        }
        std::env::remove_var(ABORT_ENV);
    }

    fn sample_trials() -> Vec<Trial> {
        vec![
            Trial {
                injection: Injection {
                    cycle: 123,
                    kind: FaultKind::RegBitFlip { reg: 7, bit: 31 },
                },
                applied: true,
                stop: CoSimStop::Halted,
                outcome: Outcome::Masked,
                retries: 0,
                cpu_stats: CpuStats { cycles: 999, instructions: 500, ..Default::default() },
                hw_stats: HwStats { words_to_hw: 3, max_to_hw_occupancy: 9, ..Default::default() },
            },
            Trial {
                injection: Injection { cycle: 5, kind: FaultKind::StuckEmpty { channel: 2 } },
                applied: true,
                stop: CoSimStop::Deadlock {
                    cycle: 777,
                    cause: DeadlockCause::FslDeadlock {
                        block: FslBlock { channel: 2, dir: FifoDir::FromHw, pc: 0x40 },
                    },
                },
                outcome: Outcome::Deadlock,
                retries: 1,
                cpu_stats: CpuStats::default(),
                hw_stats: HwStats::default(),
            },
            Trial {
                injection: Injection { cycle: 9, kind: FaultKind::HarnessPanic },
                applied: false,
                stop: CoSimStop::CycleLimit { blocked: None },
                outcome: Outcome::HarnessError { panic_msg: "boom".into() },
                retries: 1,
                cpu_stats: CpuStats::default(),
                hw_stats: HwStats::default(),
            },
            Trial {
                injection: Injection {
                    cycle: 50,
                    kind: FaultKind::MemBitFlip { addr: 0x100, bit: 3 },
                },
                applied: true,
                stop: CoSimStop::Fault(Fault::Memory {
                    pc: 0x44,
                    err: MemError::OutOfRange { addr: 0xFFFF_0000, size: 65536 },
                }),
                outcome: Outcome::Fault,
                retries: 0,
                cpu_stats: CpuStats::default(),
                hw_stats: HwStats::default(),
            },
        ]
    }

    #[test]
    fn trial_codec_roundtrips() {
        for trial in sample_trials() {
            let mut buf = Vec::new();
            put_trial(&mut buf, &trial);
            let mut r = Rd { bytes: &buf, pos: 0 };
            let back = get_trial(&mut r).expect("roundtrip decodes");
            assert_eq!(r.pos, buf.len(), "decode consumes every byte");
            assert_eq!(back, trial);
        }
    }

    #[test]
    fn recovery_trial_codec_roundtrips() {
        let trial = RecoveryTrial {
            injection: Injection {
                cycle: 42,
                kind: FaultKind::FifoBitFlip { dir: FifoDir::ToHw, channel: 1, index: 0, bit: 32 },
            },
            applied: true,
            outcome: RecoveryOutcome::Recovered {
                detection_latency: 100,
                recovery_cycles: 2048,
                retries: 2,
            },
            stop: CoSimStop::Halted,
            detector: Some(DetectorKind::Signature),
            work_cycles: 10_000,
        };
        let mut buf = Vec::new();
        put_recovery_trial(&mut buf, &trial);
        let mut r = Rd { bytes: &buf, pos: 0 };
        let back = get_recovery_trial(&mut r).expect("roundtrip decodes");
        assert_eq!(r.pos, buf.len());
        assert_eq!(back, trial);
    }

    #[test]
    fn scan_recovers_valid_prefix_and_drops_torn_tail() {
        let header = Header { kind: KIND_CAMPAIGN, plan_hash: 0xDEAD_BEEF, trials: 4 };
        let mut bytes = header.encode();
        let trials = sample_trials();
        for (i, t) in trials.iter().enumerate() {
            let mut payload = Vec::new();
            put_u32(&mut payload, i as u32);
            put_trial(&mut payload, t);
            put_u32(&mut bytes, payload.len() as u32);
            bytes.extend_from_slice(&payload);
            put_u32(&mut bytes, crc32(&payload));
        }
        let full_len = bytes.len();
        // Tear the final record mid-frame.
        bytes.truncate(full_len - 5);
        let scan = scan_bytes(&bytes, KIND_CAMPAIGN, &get_trial).expect("header intact");
        assert_eq!(scan.plan_hash, 0xDEAD_BEEF);
        assert_eq!(scan.done(), 3);
        assert_eq!(scan.pending(), 1);
        assert!(scan.completed[3].is_none(), "torn record re-runs");
        assert_eq!(scan.torn_bytes, bytes.len() as u64 - scan.good_bytes);
        assert_eq!(scan.completed[0].as_ref(), Some(&trials[0]));
    }

    #[test]
    fn scan_rejects_header_damage_with_typed_errors() {
        let header = Header { kind: KIND_CAMPAIGN, plan_hash: 1, trials: 2 };
        let good = header.encode();

        assert_eq!(scan_bytes(&good[..3], KIND_CAMPAIGN, &get_trial), Err(JournalError::Truncated));
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(scan_bytes(&bad, KIND_CAMPAIGN, &get_trial), Err(JournalError::BadMagic));
        let mut bad = good.clone();
        bad[4] = 99;
        assert_eq!(
            scan_bytes(&bad, KIND_CAMPAIGN, &get_trial),
            Err(JournalError::VersionUnsupported(99))
        );
        let mut bad = good.clone();
        bad[10] ^= 0x01; // plan hash byte: header CRC no longer matches
        assert_eq!(
            scan_bytes(&bad, KIND_CAMPAIGN, &get_trial),
            Err(JournalError::ChecksumMismatch)
        );
        assert_eq!(
            scan_bytes(&good, KIND_RECOVERY, &get_trial),
            Err(JournalError::KindMismatch { expected: KIND_RECOVERY, found: KIND_CAMPAIGN })
        );
    }

    #[test]
    fn scan_stops_at_bit_flipped_record() {
        let header = Header { kind: KIND_CAMPAIGN, plan_hash: 7, trials: 4 };
        let mut bytes = header.encode();
        let trials = sample_trials();
        let mut record_starts = Vec::new();
        for (i, t) in trials.iter().enumerate() {
            record_starts.push(bytes.len());
            let mut payload = Vec::new();
            put_u32(&mut payload, i as u32);
            put_trial(&mut payload, t);
            put_u32(&mut bytes, payload.len() as u32);
            bytes.extend_from_slice(&payload);
            put_u32(&mut bytes, crc32(&payload));
        }
        // Flip a bit inside record 1's payload: records 0 stays, 1..
        // are dropped (append-only means nothing after a bad frame can
        // be trusted to be framed correctly).
        bytes[record_starts[1] + 6] ^= 0x10;
        let scan = scan_bytes(&bytes, KIND_CAMPAIGN, &get_trial).expect("header intact");
        assert_eq!(scan.done(), 1);
        assert_eq!(scan.good_bytes, record_starts[1] as u64);
        assert_eq!(scan.completed[0].as_ref(), Some(&trials[0]));
    }
}
