//! Fault injection, liveness watchdogs and checkpoint/restore for the
//! softsim co-simulation stack.
//!
//! The paper's co-simulation framework (Ou & Prasanna, IPDPS 2005)
//! validates *functional* designs; this crate adds the robustness story
//! around it. Three pieces compose:
//!
//! * **Injection** ([`inject`]) — a deterministic schedule of SEU-style
//!   faults (register/memory/FIFO bit flips) and protocol faults
//!   (dropped, duplicated words; stuck `full`/`exists` flags) applied to
//!   a running [`softsim_cosim::CoSim`] at exact cycles.
//! * **Checkpoints** ([`snapshot`]) — a stable byte encoding of
//!   [`softsim_cosim::CoSimState`], enabling run-to-checkpoint → inject
//!   → resume workflows and byte-level determinism checks.
//! * **Campaigns** ([`campaign`]) — golden run plus one restored trial
//!   per fault, each classified masked / SDC / deadlock / fault, with
//!   the co-simulator's liveness watchdog guaranteeing hung trials end
//!   in a diagnosed [`softsim_cosim::CoSimStop::Deadlock`] rather than a
//!   silent cycle-limit timeout. Trials are independent, so
//!   [`campaign::run_campaign_parallel`] spreads them over worker
//!   threads and merges in plan order — the report is byte-identical to
//!   the serial runner's.
//! * **Localization** ([`localize`]) — instrumented golden/trial
//!   re-runs diffed by `softsim-metrics`, upgrading an SDC verdict with
//!   the first cycle window and the first architectural event (register
//!   writeback, FIFO word, block output) where the trial diverged.
//! * **Recovery** ([`recover`]) — a rollback-recovery [`Supervisor`]
//!   that closes the loop: checkpoint-aligned supervised execution,
//!   fault *detection* (watchdog, FSL SEC-DED, TMR voters, windowed
//!   signature diff, observable backstop), and automatic rollback +
//!   replay with exponential backoff, classifying each trial clean /
//!   recovered / unrecoverable.
//! * **Durability** ([`durable`]) — crash-resumable campaign execution:
//!   every completed trial is appended to a CRC32-framed `SSJL` journal
//!   keyed by `(plan_hash, trial_index)`, so an interrupted campaign
//!   resumes where it died and the merged report is byte-identical to
//!   an uninterrupted run at any worker count. Together with trial
//!   isolation (`catch_unwind` per trial) and per-trial cycle /
//!   wall-clock budgets in [`campaign`], this is the fault-tolerant
//!   execution layer long campaigns run on.
//!
//! Everything is seeded through [`softsim_testkit::Rng`]: the same seed
//! and schedule reproduce the same report, bit for bit — the property CI
//! gates on.

#![warn(missing_docs)]

pub mod campaign;
pub mod durable;
pub mod inject;
pub mod localize;
pub mod recover;
pub mod snapshot;

pub use campaign::{
    run_campaign, run_campaign_parallel, run_campaign_parallel_with_telemetry,
    run_campaign_with_telemetry, CampaignConfig, CampaignReport, Coverage, Outcome, Trial,
};
pub use durable::{
    abort_after_trials_from_env, resume_from_journal, resume_recovery_from_journal,
    run_campaign_durable, run_campaign_durable_parallel,
    run_campaign_durable_parallel_with_telemetry, run_campaign_durable_with_status,
    run_recovery_campaign_durable, run_recovery_campaign_durable_parallel,
    run_recovery_campaign_durable_parallel_with_telemetry,
    run_recovery_campaign_durable_with_status, AppendFault, AppendFaultPlan, DurabilityStatus,
    EnvConfigError, JournalError, JournalScan,
};
pub use inject::{random_plan, random_plan_hardware, FaultKind, Injection, Injector};
pub use localize::{capture_golden, localize_trial, DivergenceReport, GoldenRun, LocalizeConfig};
pub use recover::{
    run_recovery_campaign, run_recovery_campaign_parallel,
    run_recovery_campaign_parallel_with_telemetry, run_recovery_campaign_with_telemetry,
    RecoveryGolden, RecoveryOutcome, RecoveryPolicy, RecoveryReport, RecoveryTrial, Supervisor,
};
pub use snapshot::{crc32, from_bytes, to_bytes, SnapshotError};
