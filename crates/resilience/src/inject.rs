//! The deterministic fault injector.
//!
//! Faults model single-event upsets (SEUs) and protocol errors at the
//! abstraction level the co-simulator works at: architectural register
//! bits, local-memory words, words sitting in FSL FIFOs, and the FIFO
//! handshake itself (dropped/duplicated words, stuck `full`/`exists`
//! flags). Injection schedules are plain data — `(cycle, kind)` pairs —
//! so a campaign seeded from [`softsim_testkit::Rng`] replays exactly.

use softsim_cosim::CoSim;
use softsim_isa::Reg;
use softsim_testkit::Rng;
use softsim_trace::{FifoDir, InjectionSite, SharedSink, TraceEvent};

/// One fault to apply to the design under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of a general-purpose register. Targeting `r0` is
    /// vacuous by construction (it is hardwired to zero).
    RegBitFlip {
        /// Register number (0–31).
        reg: u8,
        /// Bit position (0–31).
        bit: u8,
    },
    /// Flip one bit of an aligned local-memory word.
    MemBitFlip {
        /// Word-aligned byte address.
        addr: u32,
        /// Bit position (0–31).
        bit: u8,
    },
    /// Flip one bit of a word currently buffered in an FSL FIFO.
    /// `bit == 32` flips the control flag instead of a data bit.
    FifoBitFlip {
        /// FIFO direction relative to the processor.
        dir: FifoDir,
        /// Channel number (0–7).
        channel: u8,
        /// Position in the FIFO (0 = head); vacuous past the occupancy.
        index: u8,
        /// Bit position (0–31 data, 32 control).
        bit: u8,
    },
    /// Silently drop the head word of an FSL FIFO (a lost transfer).
    FifoDrop {
        /// FIFO direction relative to the processor.
        dir: FifoDir,
        /// Channel number (0–7).
        channel: u8,
    },
    /// Duplicate the head word of an FSL FIFO (a replayed transfer).
    FifoDuplicate {
        /// FIFO direction relative to the processor.
        dir: FifoDir,
        /// Channel number (0–7).
        channel: u8,
    },
    /// Permanently stick the `full` flag of a processor → hardware
    /// channel: every subsequent blocking `put` stalls forever.
    StuckFull {
        /// Channel number (0–7).
        channel: u8,
    },
    /// Permanently stick the `exists` flag of a hardware → processor
    /// channel deasserted: every subsequent blocking `get` stalls
    /// forever.
    StuckEmpty {
        /// Channel number (0–7).
        channel: u8,
    },
    /// Flip one bit of a peripheral block's sequential state — an SEU in
    /// the configured hardware itself (a CORDIC pipeline register, a
    /// matmul accumulator), the fault class TMR hardening exists for.
    /// Vacuous when the design has no peripherals or no sequential state.
    BlockStateFlip {
        /// Peripheral index (wrapped modulo the attached count).
        peripheral: u8,
        /// Index into the graph's flat state words (wrapped modulo the
        /// word count).
        word: u32,
        /// Bit position (0–63, wrapped).
        bit: u8,
    },
    /// Deliberately panic the *harness* (not the simulated design) —
    /// the crash-test fault trial isolation is exercised against.
    /// [`Injector::apply`] panics with a fixed message; the campaign
    /// runners catch it and classify the trial
    /// [`crate::Outcome::HarnessError`] while sibling trials complete.
    /// Never emitted by the seeded plan generators.
    HarnessPanic,
}

impl FaultKind {
    /// The coarse trace-event site of this fault.
    pub fn site(&self) -> InjectionSite {
        match self {
            FaultKind::RegBitFlip { .. } => InjectionSite::Register,
            FaultKind::MemBitFlip { .. } => InjectionSite::Memory,
            FaultKind::FifoBitFlip { .. } => InjectionSite::FifoWord,
            FaultKind::FifoDrop { .. }
            | FaultKind::FifoDuplicate { .. }
            | FaultKind::StuckFull { .. }
            | FaultKind::StuckEmpty { .. } => InjectionSite::Protocol,
            FaultKind::BlockStateFlip { .. } => InjectionSite::Block,
            FaultKind::HarnessPanic => InjectionSite::Harness,
        }
    }

    /// Site-specific detail word carried in the trace event.
    fn detail(&self) -> u32 {
        match *self {
            FaultKind::RegBitFlip { reg, bit } => (reg as u32) << 8 | bit as u32,
            FaultKind::MemBitFlip { addr, .. } => addr,
            FaultKind::FifoBitFlip { channel, index, bit, .. } => {
                (channel as u32) << 16 | (index as u32) << 8 | bit as u32
            }
            FaultKind::FifoDrop { channel, .. }
            | FaultKind::FifoDuplicate { channel, .. }
            | FaultKind::StuckFull { channel }
            | FaultKind::StuckEmpty { channel } => channel as u32,
            FaultKind::BlockStateFlip { peripheral, word, bit } => {
                (peripheral as u32) << 24 | (word & 0xFFFF) << 8 | bit as u32
            }
            FaultKind::HarnessPanic => 0,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultKind::RegBitFlip { reg, bit } => write!(f, "flip bit {bit} of r{reg}"),
            FaultKind::MemBitFlip { addr, bit } => {
                write!(f, "flip bit {bit} of memory word {addr:#010x}")
            }
            FaultKind::FifoBitFlip { dir, channel, index, bit } if bit >= 32 => {
                write!(f, "flip the control flag of word {index} in {} FSL {channel}", dir.label())
            }
            FaultKind::FifoBitFlip { dir, channel, index, bit } => {
                write!(f, "flip bit {bit} of word {index} in {} FSL {channel}", dir.label())
            }
            FaultKind::FifoDrop { dir, channel } => {
                write!(f, "drop the head word of {} FSL {channel}", dir.label())
            }
            FaultKind::FifoDuplicate { dir, channel } => {
                write!(f, "duplicate the head word of {} FSL {channel}", dir.label())
            }
            FaultKind::StuckFull { channel } => {
                write!(f, "stick the full flag of to_hw FSL {channel}")
            }
            FaultKind::StuckEmpty { channel } => {
                write!(f, "stick the exists flag of from_hw FSL {channel} low")
            }
            FaultKind::BlockStateFlip { peripheral, word, bit } => {
                write!(f, "flip bit {bit} of state word {word} in peripheral {peripheral}")
            }
            FaultKind::HarnessPanic => {
                write!(f, "panic the harness (deliberate crash-test fault)")
            }
        }
    }
}

/// A scheduled fault: apply `kind` once the simulation reaches `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Cycle at which to apply the fault.
    pub cycle: u64,
    /// The fault.
    pub kind: FaultKind,
}

impl std::fmt::Display for Injection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at cycle {}: {}", self.cycle, self.kind)
    }
}

/// Applies a schedule of [`Injection`]s to a running co-simulation.
///
/// Call [`Injector::poll`] after every [`CoSim::step`]; every injection
/// whose cycle has been reached is applied exactly once, in schedule
/// order. Each applied fault is emitted as a
/// [`TraceEvent::FaultInjected`] on the injector's own sink, so fault
/// campaigns can be correlated against the rest of the cycle-domain
/// trace.
#[derive(Clone, Default)]
pub struct Injector {
    plan: Vec<Injection>,
    next: usize,
    sink: Option<SharedSink>,
    applied: u64,
    vacuous: u64,
}

impl Injector {
    /// An injector for the given schedule (sorted by cycle internally;
    /// ties keep their relative order).
    pub fn new(mut plan: Vec<Injection>) -> Injector {
        plan.sort_by_key(|i| i.cycle);
        Injector { plan, next: 0, sink: None, applied: 0, vacuous: 0 }
    }

    /// Attaches a trace sink for [`TraceEvent::FaultInjected`] events.
    pub fn attach_trace(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    /// The remaining (not yet applied) schedule.
    pub fn pending(&self) -> &[Injection] {
        &self.plan[self.next.min(self.plan.len())..]
    }

    /// Faults that changed simulator state when applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Faults that hit nothing (empty FIFO slot, register `r0`,
    /// out-of-range address) and left the state unchanged.
    pub fn vacuous(&self) -> u64 {
        self.vacuous
    }

    /// True once every scheduled injection has been applied.
    pub fn done(&self) -> bool {
        self.next >= self.plan.len()
    }

    /// Cycle of the next not-yet-applied injection, if any. Stall
    /// fast-forwarding uses this as an activity horizon: a jump must
    /// never skip past a scheduled fault, so callers cap their run
    /// budget at this cycle before letting the engine coalesce stalls.
    pub fn next_cycle(&self) -> Option<u64> {
        self.plan.get(self.next).map(|i| i.cycle)
    }

    /// Applies every injection whose cycle the simulation has reached.
    pub fn poll(&mut self, sim: &mut CoSim) {
        let now = sim.cpu().stats().cycles;
        while let Some(inj) = self.plan.get(self.next).copied() {
            if inj.cycle > now {
                break;
            }
            self.next += 1;
            let changed = Injector::apply(sim, inj.kind);
            if changed {
                self.applied += 1;
            } else {
                self.vacuous += 1;
            }
            if let Some(sink) = &self.sink {
                sink.borrow_mut().event(&TraceEvent::FaultInjected {
                    cycle: now,
                    site: inj.kind.site(),
                    detail: inj.kind.detail(),
                });
            }
        }
    }

    /// Applies one fault immediately. Returns `true` when the simulator
    /// state actually changed; `false` for vacuous hits (flipping a bit
    /// of `r0`, corrupting an empty FIFO slot, addressing past memory).
    pub fn apply(sim: &mut CoSim, kind: FaultKind) -> bool {
        match kind {
            FaultKind::RegBitFlip { reg, bit } => {
                let r = Reg::new(reg % 32);
                if r.is_zero() {
                    return false;
                }
                let old = sim.cpu().reg(r);
                sim.cpu_mut().set_reg(r, old ^ (1 << (bit % 32)));
                true
            }
            FaultKind::MemBitFlip { addr, bit } => {
                let addr = addr & !3;
                let Ok(old) = sim.cpu().mem().read_u32(addr) else {
                    return false;
                };
                sim.cpu_mut()
                    .mem_mut()
                    .write_u32(addr, old ^ (1 << (bit % 32)))
                    .expect("readable word is writable");
                true
            }
            FaultKind::FifoBitFlip { dir, channel, index, bit } => {
                let fsl = sim.fsl_mut();
                let fifo = match dir {
                    FifoDir::ToHw => fsl.to_hw(channel as usize % 8),
                    FifoDir::FromHw => fsl.from_hw(channel as usize % 8),
                };
                match fifo.word_mut(index as usize) {
                    Some(w) if bit >= 32 => {
                        w.control = !w.control;
                        true
                    }
                    Some(w) => {
                        w.data ^= 1 << bit;
                        true
                    }
                    None => false,
                }
            }
            FaultKind::FifoDrop { dir, channel } => {
                let fsl = sim.fsl_mut();
                let fifo = match dir {
                    FifoDir::ToHw => fsl.to_hw(channel as usize % 8),
                    FifoDir::FromHw => fsl.from_hw(channel as usize % 8),
                };
                fifo.remove_word(0).is_some()
            }
            FaultKind::FifoDuplicate { dir, channel } => {
                let fsl = sim.fsl_mut();
                let fifo = match dir {
                    FifoDir::ToHw => fsl.to_hw(channel as usize % 8),
                    FifoDir::FromHw => fsl.from_hw(channel as usize % 8),
                };
                fifo.duplicate_head()
            }
            FaultKind::StuckFull { channel } => {
                sim.fsl_mut().to_hw(channel as usize % 8).set_stuck_full(true);
                true
            }
            FaultKind::StuckEmpty { channel } => {
                sim.fsl_mut().from_hw(channel as usize % 8).set_stuck_empty(true);
                true
            }
            FaultKind::BlockStateFlip { peripheral, word, bit } => {
                let peripherals = sim.peripherals_mut();
                if peripherals.is_empty() {
                    return false;
                }
                let g = peripherals[peripheral as usize % peripherals.len()].graph_mut();
                let mut st = g.save_state();
                if st.block_words.is_empty() {
                    return false;
                }
                let idx = word as usize % st.block_words.len();
                st.block_words[idx] ^= 1 << (bit % 64);
                g.load_state(&st);
                true
            }
            FaultKind::HarnessPanic => {
                panic!("deliberate harness panic (FaultKind::HarnessPanic)")
            }
        }
    }
}

/// Generates a deterministic random injection schedule: `n` faults with
/// cycles drawn uniformly from `[window.0, window.1)`, sites spread over
/// registers, the first `mem_bytes` of memory, and the given FSL
/// `channels`. Identical arguments always produce the identical plan —
/// the determinism the campaign runner and CI gate rely on.
///
/// # Panics
/// Panics if the window is empty or `channels` is empty.
pub fn random_plan(
    seed: u64,
    n: usize,
    window: (u64, u64),
    mem_bytes: u32,
    channels: &[u8],
) -> Vec<Injection> {
    assert!(window.1 > window.0, "empty injection window");
    assert!(!channels.is_empty(), "need at least one FSL channel");
    let mut rng = Rng::new(seed);
    let mut plan = Vec::with_capacity(n);
    for _ in 0..n {
        let cycle = window.0 + rng.below(window.1 - window.0);
        let channel = *rng.pick(channels);
        let dir = if rng.flip() { FifoDir::ToHw } else { FifoDir::FromHw };
        let kind = match rng.below(7) {
            0 => FaultKind::RegBitFlip {
                reg: rng.range_u32(1, 32) as u8,
                bit: rng.range_u32(0, 32) as u8,
            },
            1 => FaultKind::MemBitFlip {
                addr: (rng.below(mem_bytes as u64 / 4) as u32) * 4,
                bit: rng.range_u32(0, 32) as u8,
            },
            2 => FaultKind::FifoBitFlip {
                dir,
                channel,
                index: rng.range_u32(0, 4) as u8,
                bit: rng.range_u32(0, 33) as u8,
            },
            3 => FaultKind::FifoDrop { dir, channel },
            4 => FaultKind::FifoDuplicate { dir, channel },
            5 => FaultKind::StuckFull { channel },
            _ => FaultKind::StuckEmpty { channel },
        };
        plan.push(Injection { cycle, kind });
    }
    plan.sort_by_key(|i| i.cycle);
    plan
}

/// Like [`random_plan`], but the site mix also covers SEUs inside the
/// configured hardware ([`FaultKind::BlockStateFlip`]) — the fault class
/// the TMR-hardened variants are built against. A separate generator
/// rather than a new case in [`random_plan`] keeps every historical
/// seed's plan (and therefore every committed campaign report)
/// byte-identical.
///
/// # Panics
/// Panics if the window is empty or `channels` is empty.
pub fn random_plan_hardware(
    seed: u64,
    n: usize,
    window: (u64, u64),
    mem_bytes: u32,
    channels: &[u8],
) -> Vec<Injection> {
    assert!(window.1 > window.0, "empty injection window");
    assert!(!channels.is_empty(), "need at least one FSL channel");
    let mut rng = Rng::new(seed);
    let mut plan = Vec::with_capacity(n);
    for _ in 0..n {
        let cycle = window.0 + rng.below(window.1 - window.0);
        let channel = *rng.pick(channels);
        let dir = if rng.flip() { FifoDir::ToHw } else { FifoDir::FromHw };
        let kind = match rng.below(8) {
            0 => FaultKind::RegBitFlip {
                reg: rng.range_u32(1, 32) as u8,
                bit: rng.range_u32(0, 32) as u8,
            },
            1 => FaultKind::MemBitFlip {
                addr: (rng.below(mem_bytes as u64 / 4) as u32) * 4,
                bit: rng.range_u32(0, 32) as u8,
            },
            2 => FaultKind::FifoBitFlip {
                dir,
                channel,
                index: rng.range_u32(0, 4) as u8,
                bit: rng.range_u32(0, 33) as u8,
            },
            3 => FaultKind::FifoDrop { dir, channel },
            4 => FaultKind::FifoDuplicate { dir, channel },
            5 => FaultKind::StuckFull { channel },
            6 => FaultKind::StuckEmpty { channel },
            _ => FaultKind::BlockStateFlip {
                peripheral: 0,
                word: rng.below(256) as u32,
                bit: rng.range_u32(0, 32) as u8,
            },
        };
        plan.push(Injection { cycle, kind });
    }
    plan.sort_by_key(|i| i.cycle);
    plan
}
