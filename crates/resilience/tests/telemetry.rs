//! Integration tests for harness telemetry: the instrumented runners
//! must leave every deterministic artifact — campaign reports, recovery
//! reports, durable reports, and journal bytes — byte-identical to the
//! uninstrumented ones at any worker count, while the span rollups
//! reconcile exactly with what the reports say happened.

use softsim_blocks::library::{AddSub, AddSubOp, Constant, Delay, Register};
use softsim_blocks::{FixFmt, Graph};
use softsim_cosim::{CoSim, FslFromHw, FslToHw, Peripheral};
use softsim_isa::asm::assemble;
use softsim_isa::reg::r;
use softsim_metrics::telemetry::{SpanKind, Telemetry, TelemetryConfig};
use softsim_resilience::{
    run_campaign, run_campaign_durable_parallel, run_campaign_durable_parallel_with_telemetry,
    run_campaign_parallel_with_telemetry, run_campaign_with_telemetry, run_recovery_campaign,
    run_recovery_campaign_parallel_with_telemetry, CampaignConfig, FaultKind, Injection,
    RecoveryPolicy,
};
use std::path::PathBuf;

/// A peripheral that adds 100 to every word on FSL0, one cycle later.
fn adder_peripheral() -> Peripheral {
    let mut g = Graph::new();
    let data = g.gateway_in("fsl0_data", FixFmt::INT32);
    let valid = g.gateway_in("fsl0_valid", FixFmt::BOOL);
    let hundred = g.add("hundred", Constant::int(100, FixFmt::INT32));
    let add = g.add("add", AddSub::new(AddSubOp::Add, FixFmt::INT32));
    let rdata = g.add("rdata", Register::zeroed(FixFmt::INT32));
    let rvalid = g.add("rvalid", Delay::new(FixFmt::BOOL, 1));
    g.connect(data, 0, add, 0).unwrap();
    g.connect(hundred, 0, add, 1).unwrap();
    g.connect(add, 0, rdata, 0).unwrap();
    g.connect(valid, 0, rdata, 1).unwrap();
    g.connect(valid, 0, rvalid, 0).unwrap();
    g.gateway_out("fsl0_out_data", rdata, 0);
    g.gateway_out("fsl0_out_valid", rvalid, 0);
    g.compile().unwrap();
    Peripheral::new(g, vec![FslToHw::standard(0).without_control()], vec![FslFromHw::standard(0)])
}

/// An FSL round-trip workload: send 4 words, read 4 results, sum them
/// into `r6`. Blocks on `get`, so stuck-flag faults deadlock it and
/// stall fast-forwarding has something to skip.
fn fsl_sim() -> CoSim {
    let image = assemble(
        "addik r3, r0, 0\n\
         addik r5, r0, 4\n\
         send: put r3, rfsl0\n\
         addik r3, r3, 1\n\
         addik r5, r5, -1\n\
         bnei r5, send\n\
         addik r5, r0, 4\n\
         addik r6, r0, 0\n\
         recv: get r4, rfsl0\n\
         addk r6, r6, r4\n\
         addik r5, r5, -1\n\
         bnei r5, recv\n\
         halt\n",
    )
    .unwrap();
    CoSim::with_peripheral(&image, adder_peripheral())
}

fn observe(sim: &CoSim) -> Vec<u32> {
    vec![sim.cpu().reg(r(6))]
}

/// A short watchdog so deadlocked trials diagnose quickly.
fn quick_config() -> CampaignConfig {
    CampaignConfig { watchdog_threshold: 2_000, ..CampaignConfig::default() }
}

/// A small deterministic plan mixing benign flips, one guaranteed
/// deadlock, and one deliberate harness panic (so the retry and
/// abandoned counters have something to count).
fn mixed_plan() -> Vec<Injection> {
    vec![
        Injection { cycle: 3, kind: FaultKind::RegBitFlip { reg: 3, bit: 0 } },
        Injection { cycle: 5, kind: FaultKind::MemBitFlip { addr: 0x40, bit: 7 } },
        Injection { cycle: 6, kind: FaultKind::HarnessPanic },
        Injection { cycle: 8, kind: FaultKind::StuckEmpty { channel: 0 } },
        Injection { cycle: 10, kind: FaultKind::RegBitFlip { reg: 6, bit: 2 } },
        Injection {
            cycle: 12,
            kind: FaultKind::FifoDrop { dir: softsim_trace::FifoDir::ToHw, channel: 0 },
        },
        Injection { cycle: 14, kind: FaultKind::RegBitFlip { reg: 5, bit: 0 } },
        Injection { cycle: 16, kind: FaultKind::MemBitFlip { addr: 0x80, bit: 0 } },
        Injection { cycle: 18, kind: FaultKind::RegBitFlip { reg: 4, bit: 4 } },
    ]
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("softsim_tel_{}_{}.ssjl", tag, std::process::id()))
}

#[test]
fn campaign_report_is_byte_identical_with_telemetry_at_any_worker_count() {
    let plan = mixed_plan();
    let mut sim = fsl_sim();
    let reference = run_campaign(&mut sim, &plan, observe, quick_config());

    // Serial instrumented run.
    let t = Telemetry::new(TelemetryConfig::default());
    let mut sim = fsl_sim();
    let serial = run_campaign_with_telemetry(&mut sim, &plan, observe, quick_config(), Some(&t));
    assert_eq!(serial, reference, "serial telemetry run must not perturb the report");

    // Parallel instrumented runs at several worker counts.
    for workers in [1, 2, 5] {
        let t = Telemetry::new(TelemetryConfig::default());
        let parallel = run_campaign_parallel_with_telemetry(
            fsl_sim,
            &plan,
            observe,
            quick_config(),
            workers,
            Some(&t),
        );
        assert_eq!(parallel, reference, "workers={workers}");
        assert_eq!(t.trial_count(), plan.len() as u64, "one trial span per injection");
    }
}

#[test]
fn campaign_span_rollups_reconcile_with_the_report() {
    let plan = mixed_plan();
    let t = Telemetry::new(TelemetryConfig::default());
    let mut sim = fsl_sim();
    let report = run_campaign_with_telemetry(&mut sim, &plan, observe, quick_config(), Some(&t));

    // Exactly one trial span per injection; sim-cycle rollup equals the
    // report's per-trial cycle sum, and the golden span carries the
    // golden run's cycles.
    assert_eq!(t.trial_count(), report.trials.len() as u64);
    let report_cycles: u64 = report.trials.iter().map(|tr| tr.cpu_stats.cycles).sum();
    assert_eq!(t.trial_cycles(), report_cycles, "trial sim-cycles reconcile exactly");
    assert_eq!(t.golden_cycles(), report.golden_cycles, "golden sim-cycles reconcile exactly");

    // Retry attempts roll up from the same per-trial counter the
    // deterministic coverage line prints.
    let report_retries: u64 = report.trials.iter().map(|tr| tr.retries as u64).sum();
    assert_eq!(t.retries(), report_retries);
    assert_eq!(report.coverage().retry_attempts, report_retries as usize);
    assert!(t.retries() >= 1, "the deliberate panic forces at least one retry");
    assert!(t.retry_wall() > std::time::Duration::ZERO, "retries cost measurable wall time");

    // Worker rollups cover every recorded sim-cycle.
    let worker_cycles: u64 = t.worker_stats().iter().map(|w| w.cycles).sum();
    assert_eq!(worker_cycles, t.trial_cycles() + t.golden_cycles());
}

#[test]
fn parallel_worker_rollups_cover_all_trials() {
    let plan = mixed_plan();
    let t = Telemetry::new(TelemetryConfig::default());
    let report =
        run_campaign_parallel_with_telemetry(fsl_sim, &plan, observe, quick_config(), 3, Some(&t));
    let workers = t.worker_stats();
    assert!(workers.len() >= 2, "three chunks spread over at least two worker slots");
    let span_total: u64 = workers.iter().map(|w| w.spans).sum();
    // Golden + one span per trial (abandoned ones included); the
    // campaign span is an aggregate, not worker occupancy.
    assert_eq!(span_total, 1 + plan.len() as u64);
    let worker_cycles: u64 = workers.iter().map(|w| w.cycles).sum();
    let report_cycles: u64 = report.trials.iter().map(|tr| tr.cpu_stats.cycles).sum();
    assert_eq!(worker_cycles, report_cycles + report.golden_cycles);
}

#[test]
fn recovery_report_is_byte_identical_with_telemetry_and_rollups_reconcile() {
    let plan = mixed_plan();
    let mut sim = fsl_sim();
    let reference = run_recovery_campaign(&mut sim, &plan, observe, RecoveryPolicy::default());

    for workers in [1, 2, 5] {
        let t = Telemetry::new(TelemetryConfig::default());
        let report = run_recovery_campaign_parallel_with_telemetry(
            fsl_sim,
            &plan,
            observe,
            RecoveryPolicy::default(),
            workers,
            Some(&t),
        );
        assert_eq!(report, reference, "workers={workers}");
        assert_eq!(t.trial_count(), plan.len() as u64);
        // Recovery trial spans carry work_cycles (rollback replays
        // included), the honest measure of simulation effort.
        let work: u64 = report.trials.iter().map(|tr| tr.work_cycles).sum();
        assert_eq!(t.trial_cycles(), work, "workers={workers}");
        assert_eq!(t.golden_cycles(), report.golden_cycles, "workers={workers}");
    }
}

#[test]
fn durable_report_and_journal_bytes_are_byte_identical_with_telemetry() {
    let plan = mixed_plan();
    let reference_journal = scratch("ref");
    let _ = std::fs::remove_file(&reference_journal);
    let reference = run_campaign_durable_parallel(
        fsl_sim,
        &plan,
        observe,
        quick_config(),
        &reference_journal,
        false,
        1,
    )
    .expect("journal I/O");
    let reference_bytes = std::fs::read(&reference_journal).expect("journal readable");
    let _ = std::fs::remove_file(&reference_journal);

    const HEADER_LEN: u64 = 25;
    for workers in [1, 2, 5] {
        let journal = scratch(&format!("tel_{workers}"));
        let _ = std::fs::remove_file(&journal);
        let t = Telemetry::new(TelemetryConfig::default());
        let report = run_campaign_durable_parallel_with_telemetry(
            fsl_sim,
            &plan,
            observe,
            quick_config(),
            &journal,
            false,
            workers,
            Some(&t),
        )
        .expect("journal I/O");
        assert_eq!(report, reference, "workers={workers}");
        let bytes = std::fs::read(&journal).expect("journal readable");
        if workers == 1 {
            // With one worker append order is plan order, so the whole
            // journal is byte-identical to the uninstrumented run's.
            assert_eq!(bytes, reference_bytes, "journal bytes identical at one worker");
        } else {
            // Parallel workers append records in completion order (that
            // is the durability design — resume keys on trial indices),
            // so only the byte *count* is order-independent.
            assert_eq!(
                bytes.len(),
                reference_bytes.len(),
                "same records, same total bytes, workers={workers}"
            );
        }
        // The journal-append spans account for every byte after the
        // header: frame bytes are the whole file minus the 25-byte
        // plan-hash header written at creation.
        assert_eq!(
            t.journal_bytes(),
            bytes.len() as u64 - HEADER_LEN,
            "journal-append spans account for every frame byte, workers={workers}"
        );
        let _ = std::fs::remove_file(&journal);
    }
}

#[test]
fn resume_announces_only_the_missing_trials() {
    let plan = mixed_plan();
    let journal = scratch("resume");
    let _ = std::fs::remove_file(&journal);
    let reference =
        run_campaign_durable_parallel(fsl_sim, &plan, observe, quick_config(), &journal, false, 1)
            .expect("journal I/O");
    let full = std::fs::read(&journal).expect("journal readable");

    // Truncate to the header plus the first three complete records.
    const HEADER_LEN: usize = 25;
    let mut pos = HEADER_LEN;
    for _ in 0..3 {
        let len =
            u32::from_le_bytes([full[pos], full[pos + 1], full[pos + 2], full[pos + 3]]) as usize;
        pos += 8 + len;
    }
    std::fs::write(&journal, &full[..pos]).expect("journal writable");

    let t = Telemetry::new(TelemetryConfig::default());
    let resumed = run_campaign_durable_parallel_with_telemetry(
        fsl_sim,
        &plan,
        observe,
        quick_config(),
        &journal,
        true,
        2,
        Some(&t),
    )
    .expect("journal I/O");
    assert_eq!(resumed, reference, "resume reproduces the full report");
    // Only the re-run trials show up as spans and expected work.
    assert_eq!(t.trial_count(), (plan.len() - 3) as u64);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn exposition_reflects_the_run_and_escapes_correctly() {
    let plan = mixed_plan();
    let t = Telemetry::new(TelemetryConfig::default());
    let mut sim = fsl_sim();
    let _ = run_campaign_with_telemetry(&mut sim, &plan, observe, quick_config(), Some(&t));

    let prom = t.to_prometheus();
    assert!(prom.contains(&format!(
        "softsim_harness_spans_total{{kind=\"{}\"}} {}",
        SpanKind::Trial.label(),
        plan.len()
    )));
    assert!(prom.contains("softsim_harness_trial_wall_seconds_bucket"));
    assert!(prom.contains("le=\"+Inf\""));
    assert!(prom.contains(&format!("softsim_harness_trials_expected {}", plan.len())));

    let json = t.to_json();
    let v = softsim_trace::json::parse(&json).expect("telemetry JSON parses");
    assert_eq!(v.get("trials").and_then(|c| c.as_f64()), Some(plan.len() as f64));
    assert_eq!(v.get("retries").and_then(|c| c.as_f64()), Some(t.retries() as f64));
}
