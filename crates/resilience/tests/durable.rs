//! Integration tests for the durable (fault-tolerant) execution layer:
//! trial isolation, per-trial budgets, crash-resumable journals, and
//! the never-panic contract of both byte readers (`snapshot::from_bytes`
//! and the `SSJL` journal scan) under truncation, bit flips, and
//! arbitrary bytes.

use softsim_blocks::library::{AddSub, AddSubOp, Constant, Delay, Register};
use softsim_blocks::{FixFmt, Graph};
use softsim_cosim::{CoSim, CoSimStop, FslFromHw, FslToHw, Peripheral};
use softsim_isa::asm::assemble;
use softsim_isa::reg::r;
use softsim_resilience::{
    from_bytes, resume_from_journal, run_campaign, run_campaign_durable,
    run_campaign_durable_parallel, run_campaign_durable_with_status, to_bytes, AppendFault,
    AppendFaultPlan, CampaignConfig, FaultKind, Injection, JournalError, Outcome,
};
use softsim_testkit::Rng;
use std::path::PathBuf;
use std::time::Duration;

/// A peripheral that adds 100 to every word on FSL0, one cycle later.
fn adder_peripheral() -> Peripheral {
    let mut g = Graph::new();
    let data = g.gateway_in("fsl0_data", FixFmt::INT32);
    let valid = g.gateway_in("fsl0_valid", FixFmt::BOOL);
    let hundred = g.add("hundred", Constant::int(100, FixFmt::INT32));
    let add = g.add("add", AddSub::new(AddSubOp::Add, FixFmt::INT32));
    let rdata = g.add("rdata", Register::zeroed(FixFmt::INT32));
    let rvalid = g.add("rvalid", Delay::new(FixFmt::BOOL, 1));
    g.connect(data, 0, add, 0).unwrap();
    g.connect(hundred, 0, add, 1).unwrap();
    g.connect(add, 0, rdata, 0).unwrap();
    g.connect(valid, 0, rdata, 1).unwrap();
    g.connect(valid, 0, rvalid, 0).unwrap();
    g.gateway_out("fsl0_out_data", rdata, 0);
    g.gateway_out("fsl0_out_valid", rvalid, 0);
    g.compile().unwrap();
    Peripheral::new(g, vec![FslToHw::standard(0).without_control()], vec![FslFromHw::standard(0)])
}

/// An FSL round-trip workload: send 4 words, read 4 results, sum them
/// into `r6`. Blocks on `get`, so stuck-flag faults deadlock it and
/// stall fast-forwarding has something to skip.
fn fsl_sim() -> CoSim {
    let image = assemble(
        "addik r3, r0, 0\n\
         addik r5, r0, 4\n\
         send: put r3, rfsl0\n\
         addik r3, r3, 1\n\
         addik r5, r5, -1\n\
         bnei r5, send\n\
         addik r5, r0, 4\n\
         addik r6, r0, 0\n\
         recv: get r4, rfsl0\n\
         addk r6, r6, r4\n\
         addik r5, r5, -1\n\
         bnei r5, recv\n\
         halt\n",
    )
    .unwrap();
    CoSim::with_peripheral(&image, adder_peripheral())
}

fn observe(sim: &CoSim) -> Vec<u32> {
    vec![sim.cpu().reg(r(6))]
}

/// A short watchdog so deadlocked trials diagnose quickly.
fn quick_config() -> CampaignConfig {
    CampaignConfig { watchdog_threshold: 2_000, ..CampaignConfig::default() }
}

/// A small deterministic plan mixing benign flips with one guaranteed
/// deadlock (stuck `exists` flag under a blocking `get` loop).
fn mixed_plan() -> Vec<Injection> {
    vec![
        Injection { cycle: 3, kind: FaultKind::RegBitFlip { reg: 3, bit: 0 } },
        Injection { cycle: 5, kind: FaultKind::MemBitFlip { addr: 0x40, bit: 7 } },
        Injection { cycle: 8, kind: FaultKind::StuckEmpty { channel: 0 } },
        Injection { cycle: 10, kind: FaultKind::RegBitFlip { reg: 6, bit: 2 } },
        Injection {
            cycle: 12,
            kind: FaultKind::FifoDrop { dir: softsim_trace::FifoDir::ToHw, channel: 0 },
        },
        Injection { cycle: 14, kind: FaultKind::RegBitFlip { reg: 5, bit: 0 } },
        Injection { cycle: 16, kind: FaultKind::MemBitFlip { addr: 0x80, bit: 0 } },
        Injection { cycle: 18, kind: FaultKind::RegBitFlip { reg: 4, bit: 4 } },
    ]
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("softsim_it_{}_{}.ssjl", tag, std::process::id()))
}

#[test]
fn harness_panic_is_isolated_and_siblings_complete() {
    let mut plan = mixed_plan();
    plan.insert(2, Injection { cycle: 6, kind: FaultKind::HarnessPanic });
    for workers in [1, 3] {
        let journal = scratch(&format!("isolation_{workers}"));
        let _ = std::fs::remove_file(&journal);
        let report = run_campaign_durable_parallel(
            fsl_sim,
            &plan,
            observe,
            quick_config(),
            &journal,
            false,
            workers,
        )
        .expect("journal I/O");
        assert_eq!(report.trials.len(), plan.len(), "no trial dropped, workers={workers}");
        let cov = report.coverage();
        assert_eq!(cov.abandoned, 1, "exactly the deliberate panic is abandoned");
        assert_eq!(cov.completed + cov.budget + cov.abandoned, plan.len());
        let panicked = &report.trials[2];
        match &panicked.outcome {
            Outcome::HarnessError { panic_msg } => {
                assert!(panic_msg.contains("deliberate harness panic"), "{panic_msg}");
            }
            other => panic!("expected HarnessError, got {other:?}"),
        }
        assert!(panicked.retries >= 1, "a panicking trial is retried before abandonment");
        for (i, t) in report.trials.iter().enumerate() {
            if i != 2 {
                assert!(
                    !matches!(t.outcome, Outcome::HarnessError { .. }),
                    "sibling {i} classified normally"
                );
            }
        }
        let _ = std::fs::remove_file(&journal);
    }
}

#[test]
fn cycle_budget_cancels_runaway_trials() {
    let plan = mixed_plan();
    let config = CampaignConfig { trial_cycle_budget: Some(8), ..quick_config() };
    let mut sim = fsl_sim();
    let report = run_campaign(&mut sim, &plan, observe, config);
    // The stuck-flag trial would burn the whole watchdog threshold; the
    // 8-cycle budget cancels it (and every other trial, none of which
    // can halt within 8 post-injection cycles) as Budget, not Deadlock.
    let cov = report.coverage();
    assert_eq!(cov.budget, plan.len(), "every trial hit the 8-cycle budget");
    for t in &report.trials {
        assert_eq!(t.outcome, Outcome::Budget, "{:?}", t.injection);
    }
}

#[test]
fn wall_budget_hit_while_fast_forwarding_classifies_budget_not_deadlock() {
    let stuck = vec![Injection { cycle: 8, kind: FaultKind::StuckEmpty { channel: 0 } }];
    // Reference: with no wall budget the stuck trial is a diagnosed
    // deadlock (the watchdog fires while fast-forwarding the stall).
    let mut sim = fsl_sim();
    let reference = run_campaign(&mut sim, &stuck, observe, quick_config());
    assert_eq!(reference.trials[0].outcome, Outcome::Deadlock, "{:?}", reference.trials[0].stop);

    // With an already-expired wall budget the same trial is cancelled
    // mid-fast-forward and must classify Budget, not Deadlock.
    let config = CampaignConfig {
        trial_wall_budget: Some(Duration::ZERO),
        fast_forward: true,
        ..quick_config()
    };
    let mut sim = fsl_sim();
    let capped = run_campaign(&mut sim, &stuck, observe, config);
    assert_eq!(capped.trials[0].outcome, Outcome::Budget, "{:?}", capped.trials[0].stop);

    // The cancelled-while-fast-forwarding trial must leave the co-sim
    // consistent: the same instance immediately runs another campaign
    // and agrees bit for bit with a fresh simulator's.
    let benign = vec![Injection { cycle: 3, kind: FaultKind::RegBitFlip { reg: 3, bit: 0 } }];
    let after = run_campaign(&mut sim, &benign, observe, quick_config());
    let mut fresh = fsl_sim();
    let expected = run_campaign(&mut fresh, &benign, observe, quick_config());
    assert_eq!(after, expected, "co-sim state survives a mid-fast-forward cancellation");
}

#[test]
fn interrupt_and_resume_is_byte_identical_at_any_worker_count() {
    let plan = mixed_plan();
    let journal = scratch("resume");
    let _ = std::fs::remove_file(&journal);
    let reference =
        run_campaign_durable_parallel(fsl_sim, &plan, observe, quick_config(), &journal, false, 2)
            .expect("journal I/O");
    let full = std::fs::read(&journal).expect("journal readable");

    // Every interesting interruption point: header only (crash before
    // the first record), a few complete records, and a torn tail.
    const HEADER_LEN: usize = 25;
    let torn_cut = {
        // Walk the frames to find the start of the 4th record, then keep
        // 3 extra bytes of it as the torn tail.
        let mut pos = HEADER_LEN;
        for _ in 0..3 {
            let len = u32::from_le_bytes([full[pos], full[pos + 1], full[pos + 2], full[pos + 3]])
                as usize;
            pos += 8 + len;
        }
        pos + 3
    };
    for cut in [HEADER_LEN, torn_cut, full.len()] {
        for workers in [1, 2, 5] {
            std::fs::write(&journal, &full[..cut]).expect("journal writable");
            let resumed = run_campaign_durable_parallel(
                fsl_sim,
                &plan,
                observe,
                quick_config(),
                &journal,
                true,
                workers,
            )
            .expect("journal I/O");
            assert_eq!(
                resumed, reference,
                "resume from {cut} bytes at {workers} workers reproduces the report"
            );
        }
    }

    // Resuming a complete journal re-runs nothing and leaves it alone.
    std::fs::write(&journal, &full).expect("journal writable");
    let resumed = run_campaign_durable(fsl_sim, &plan, observe, quick_config(), &journal, true)
        .expect("journal I/O");
    assert_eq!(resumed, reference);
    assert_eq!(std::fs::read(&journal).expect("journal readable"), full, "journal untouched");
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn append_fault_degrades_to_non_durable_with_a_clean_tail() {
    let plan = mixed_plan();
    let mut sim = fsl_sim();
    let reference = run_campaign(&mut sim, &plan, observe, quick_config());
    for fault in [AppendFault::ShortWrite, AppendFault::DiskFull, AppendFault::FlushError] {
        let journal = scratch(&format!("fault_{fault:?}"));
        let _ = std::fs::remove_file(&journal);
        // The 4th append fails: the run must finish with the same
        // report, flagged non-durable with a warning — never a panic.
        let (report, status) = run_campaign_durable_with_status(
            fsl_sim,
            &plan,
            observe,
            quick_config(),
            &journal,
            false,
            1,
            None,
            Some(AppendFaultPlan { kind: fault, after_appends: 3 }),
        )
        .expect("an append failure must not fail the campaign");
        assert_eq!(report, reference, "report unaffected by {fault}");
        assert!(!status.durable, "{fault} must degrade the run");
        assert_eq!(status.appended, 3, "{fault}");
        let warning = status.warning.expect("degraded run carries a warning");
        assert!(warning.contains("non-durable"), "{warning}");

        // The journal tail is clean: exactly the three good records,
        // nothing torn (the partial frame of a short write is dropped).
        let scan = resume_from_journal(&journal).expect("degraded journal still scans");
        assert_eq!(scan.records, 3, "{fault}");
        assert_eq!(scan.torn_bytes, 0, "no torn tail left behind by {fault}");
        assert_eq!(std::fs::metadata(&journal).expect("journal stat").len(), scan.good_bytes);

        // And it resumes: only the five missing trials re-run, to the
        // byte-identical report.
        let (resumed, status) = run_campaign_durable_with_status(
            fsl_sim,
            &plan,
            observe,
            quick_config(),
            &journal,
            true,
            2,
            None,
            None,
        )
        .expect("journal I/O");
        assert_eq!(resumed, reference, "resume after {fault} degrade");
        assert!(status.durable);
        assert_eq!(status.appended as usize, plan.len() - 3);
        let _ = std::fs::remove_file(&journal);
    }
}

#[test]
fn resume_with_a_different_plan_is_a_typed_error() {
    let journal = scratch("mismatch");
    let _ = std::fs::remove_file(&journal);
    let plan = mixed_plan();
    run_campaign_durable(fsl_sim, &plan, observe, quick_config(), &journal, false)
        .expect("journal I/O");
    let mut other = plan.clone();
    other.push(Injection { cycle: 20, kind: FaultKind::RegBitFlip { reg: 7, bit: 1 } });
    let err = run_campaign_durable(fsl_sim, &other, observe, quick_config(), &journal, true)
        .expect_err("a different plan must be rejected");
    assert!(
        matches!(err, JournalError::PlanMismatch { .. } | JournalError::TrialCountMismatch { .. }),
        "typed mismatch, got {err}"
    );
    let _ = std::fs::remove_file(&journal);
}

/// Builds a valid completed journal once, for the fuzz tests below.
fn valid_journal_bytes() -> Vec<u8> {
    let journal = scratch("fuzz_seed");
    let _ = std::fs::remove_file(&journal);
    run_campaign_durable(fsl_sim, &mixed_plan(), observe, quick_config(), &journal, false)
        .expect("journal I/O");
    let bytes = std::fs::read(&journal).expect("journal readable");
    let _ = std::fs::remove_file(&journal);
    bytes
}

#[test]
fn journal_scan_never_panics_and_clamps_under_any_damage() {
    let full = valid_journal_bytes();
    let journal = scratch("fuzz");
    let header_trials = mixed_plan().len();

    // Every truncation length: the scan returns a typed error or a
    // valid prefix — never panics, never reads past the buffer.
    for cut in 0..=full.len() {
        std::fs::write(&journal, &full[..cut]).expect("journal writable");
        // A typed error is fine (pre-header truncations); an Ok scan
        // must stay within bounds.
        if let Ok(scan) = resume_from_journal(&journal) {
            assert_eq!(scan.completed.len(), header_trials);
            assert!(scan.good_bytes as usize <= cut);
            assert!(scan.done() <= header_trials);
        }
    }

    // Seeded bit flips anywhere in the journal.
    let mut rng = Rng::new(0xD1CE_F00D);
    for _ in 0..250 {
        let mut bytes = full.clone();
        for _ in 0..rng.range_usize(1, 8) {
            let i = rng.range_usize(0, bytes.len() - 1);
            bytes[i] ^= 1 << rng.range_usize(0, 7);
        }
        std::fs::write(&journal, &bytes).expect("journal writable");
        if let Ok(scan) = resume_from_journal(&journal) {
            assert!(scan.good_bytes as usize <= bytes.len());
        }
    }

    // Arbitrary byte soup, half of it wearing a valid magic + version.
    for case in 0..250 {
        let n = rng.range_usize(0, 600);
        let mut bytes: Vec<u8> = (0..n).map(|_| rng.next_u32() as u8).collect();
        if case % 2 == 0 && bytes.len() >= 8 {
            bytes[..4].copy_from_slice(b"SSJL");
            bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        }
        std::fs::write(&journal, &bytes).expect("journal writable");
        let _ = resume_from_journal(&journal);
    }

    // Clamping guarantee: a CRC-valid header declaring an implausible
    // trial count must fail typed instead of allocating gigabytes of
    // slot table.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(b"SSJL");
    hostile.extend_from_slice(&1u32.to_le_bytes());
    hostile.push(0); // campaign kind
    hostile.extend_from_slice(&0u64.to_le_bytes()); // plan hash
    hostile.extend_from_slice(&u32::MAX.to_le_bytes()); // 4G trials
    let crc = softsim_resilience::crc32(&hostile);
    hostile.extend_from_slice(&crc.to_le_bytes());
    std::fs::write(&journal, &hostile).expect("journal writable");
    match resume_from_journal(&journal) {
        Err(JournalError::Corrupt(_)) => {}
        other => panic!("implausible trial count must be Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn snapshot_from_bytes_never_panics_under_any_damage() {
    let mut sim = fsl_sim();
    assert_eq!(sim.run(20), CoSimStop::CycleLimit { blocked: None });
    let full = to_bytes(&sim.save_state());

    // Every truncation length fails typed (a shorter buffer can never
    // checksum-match the trailer).
    for cut in 0..full.len() {
        assert!(from_bytes(&full[..cut]).is_err(), "truncation at {cut} must fail");
    }

    // Seeded bit flips: decode returns Ok only for flips the checksum
    // cannot see (there are none — CRC32 detects all 1-8 bit burbles in
    // these sizes), so every case must fail typed; none may panic.
    let mut rng = Rng::new(0x5EED_5AFE);
    for _ in 0..300 {
        let mut bytes = full.clone();
        for _ in 0..rng.range_usize(1, 8) {
            let i = rng.range_usize(0, bytes.len() - 1);
            bytes[i] ^= 1 << rng.range_usize(0, 7);
        }
        let _ = from_bytes(&bytes);
    }

    // Arbitrary byte soup, half of it wearing the snapshot magic.
    for case in 0..300 {
        let n = rng.range_usize(0, 400);
        let mut bytes: Vec<u8> = (0..n).map(|_| rng.next_u32() as u8).collect();
        if case % 2 == 0 && bytes.len() >= 4 {
            bytes[..4].copy_from_slice(b"SSCK");
        }
        let _ = from_bytes(&bytes);
    }

    // The undamaged bytes still round-trip.
    let state = from_bytes(&full).expect("valid snapshot decodes");
    assert_eq!(to_bytes(&state), full);
}
