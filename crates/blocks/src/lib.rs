//! # softsim-blocks — high-level cycle-accurate hardware simulation
//!
//! The MATLAB/Simulink + Xilinx System Generator analog in the `softsim`
//! reproduction: customized hardware peripherals are described as graphs
//! of fixed-point blocks and simulated **cycle-accurately at the
//! arithmetic level** — the paper's key abstraction. Low-level details
//! (whether a multiplier is slice-based or embedded, how a FIFO is
//! buffered) affect only the *resource estimates*, never the simulated
//! values or cycle counts.
//!
//! * [`fix`] — the bit-accurate fixed-point value type;
//! * [`block`] — the block trait (two-phase evaluate/clock);
//! * [`graph`] — design graphs with gateway I/O and the synchronous
//!   scheduler;
//! * [`library`] — the standard blockset (add/sub, mult, delay, mux, ...);
//! * [`resource`] — per-block FPGA resource estimates (§III-C).

#![warn(missing_docs)]

pub mod block;
pub mod fix;
pub mod gen;
pub mod graph;
pub mod library;
pub mod resource;

pub use block::Block;
pub use fix::{Fix, FixFmt, Overflow, Rounding};
pub use graph::{Graph, GraphError, GraphState, NodeId};
pub use resource::Resources;

#[cfg(test)]
mod randomized {
    use crate::fix::{Fix, FixFmt, Overflow, Rounding};
    use softsim_testkit::{cases, Rng};

    fn random_fmt(rng: &mut Rng) -> FixFmt {
        FixFmt {
            word: rng.range_u32(1, 33) as u8,
            frac: rng.range_i16(-8, 33) as i8,
            signed: rng.flip(),
        }
    }

    fn random_fix(rng: &mut Rng) -> Fix {
        let fmt = random_fmt(rng);
        let raw = rng.range_i64(fmt.min_raw(), fmt.max_raw() + 1);
        Fix::from_raw(raw, fmt)
    }

    /// Quantization always produces a representable value.
    #[test]
    fn quantize_in_range() {
        cases(3_000, |seed, rng| {
            let v = rng.next_u64() as i64;
            let frac = rng.range_i16(-8, 33) as i8;
            let fmt = random_fmt(rng);
            let ovf = if rng.flip() { Overflow::Saturate } else { Overflow::Wrap };
            let rnd = if rng.flip() { Rounding::Nearest } else { Rounding::Truncate };
            let q = Fix::quantize(v as i128, frac, fmt, ovf, rnd);
            assert!(fmt.contains_raw(q.raw()), "seed {seed}: {q:?} not in {fmt:?}");
        });
    }

    /// Bit transport round-trips every value.
    #[test]
    fn bits_round_trip() {
        cases(3_000, |seed, rng| {
            let x = random_fix(rng);
            assert_eq!(Fix::from_bits(x.to_bits(), x.fmt()), x, "seed {seed}");
        });
    }

    /// Full-precision add/sub agree with exact rational arithmetic
    /// whenever the grown result format fits the 63-bit cap (f64 is
    /// exact for these bit widths).
    #[test]
    fn full_precision_ops_exact() {
        cases(3_000, |seed, rng| {
            let (a, b) = (random_fix(rng), random_fix(rng));
            // The exact result needs max(int bits)+2 integer bits and the
            // finer binary point; skip pairs that exceed the 63-bit cap.
            let frac = a.fmt().frac.max(b.fmt().frac) as i32;
            let int = (a.fmt().int_bits().max(b.fmt().int_bits()) as i32) + 2;
            if int + frac > 63
                || a.fmt().word as i32 + frac - a.fmt().frac as i32 > 52
                || b.fmt().word as i32 + frac - b.fmt().frac as i32 > 52
            {
                return;
            }
            let s = a.add_full(&b);
            assert_eq!(s.to_f64(), a.to_f64() + b.to_f64(), "seed {seed} add");
            let d = a.sub_full(&b);
            assert_eq!(d.to_f64(), a.to_f64() - b.to_f64(), "seed {seed} sub");
        });
    }

    /// Converting into a wider same-signedness format is lossless.
    #[test]
    fn widening_convert_lossless() {
        cases(3_000, |seed, rng| {
            let x = random_fix(rng);
            let fmt = x.fmt();
            if fmt.word <= 30 {
                let wide = FixFmt { word: fmt.word + 2, frac: fmt.frac, signed: fmt.signed };
                let y = x.convert(wide, Overflow::Wrap, Rounding::Truncate);
                assert_eq!(y.to_f64(), x.to_f64(), "seed {seed}");
            }
        });
    }

    /// Saturating conversion is monotone: order never reverses.
    #[test]
    fn saturating_convert_monotone() {
        cases(3_000, |seed, rng| {
            let fmt = random_fmt(rng);
            let raw_a = rng.range_i64(fmt.min_raw(), fmt.max_raw() + 1);
            let raw_b = rng.range_i64(fmt.min_raw(), fmt.max_raw() + 1);
            let (a, b) = (Fix::from_raw(raw_a, fmt), Fix::from_raw(raw_b, fmt));
            let target = random_fmt(rng);
            let ca = a.convert(target, Overflow::Saturate, Rounding::Truncate);
            let cb = b.convert(target, Overflow::Saturate, Rounding::Truncate);
            if a.raw() <= b.raw() {
                assert!(
                    ca.cmp_value(&cb) != std::cmp::Ordering::Greater,
                    "seed {seed}: order reversed"
                );
            }
        });
    }
}
