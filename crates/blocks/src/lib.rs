//! # softsim-blocks — high-level cycle-accurate hardware simulation
//!
//! The MATLAB/Simulink + Xilinx System Generator analog in the `softsim`
//! reproduction: customized hardware peripherals are described as graphs
//! of fixed-point blocks and simulated **cycle-accurately at the
//! arithmetic level** — the paper's key abstraction. Low-level details
//! (whether a multiplier is slice-based or embedded, how a FIFO is
//! buffered) affect only the *resource estimates*, never the simulated
//! values or cycle counts.
//!
//! * [`fix`] — the bit-accurate fixed-point value type;
//! * [`block`] — the block trait (two-phase evaluate/clock);
//! * [`graph`] — design graphs with gateway I/O and the synchronous
//!   scheduler;
//! * [`library`] — the standard blockset (add/sub, mult, delay, mux, ...);
//! * [`resource`] — per-block FPGA resource estimates (§III-C).

#![warn(missing_docs)]

pub mod block;
pub mod fix;
pub mod gen;
pub mod graph;
pub mod library;
pub mod resource;

pub use block::Block;
pub use fix::{Fix, FixFmt, Overflow, Rounding};
pub use graph::{Graph, GraphError, NodeId};
pub use resource::Resources;

#[cfg(test)]
mod proptests {
    use crate::fix::{Fix, FixFmt, Overflow, Rounding};
    use proptest::prelude::*;

    fn fmt_strategy() -> impl Strategy<Value = FixFmt> {
        (1u8..=32, -8i8..=32, any::<bool>()).prop_map(|(word, frac, signed)| FixFmt {
            word,
            frac,
            signed,
        })
    }

    fn fix_strategy() -> impl Strategy<Value = Fix> {
        fmt_strategy().prop_flat_map(|fmt| {
            (fmt.min_raw()..=fmt.max_raw()).prop_map(move |raw| Fix::from_raw(raw, fmt))
        })
    }

    proptest! {
        /// Quantization always produces a representable value.
        #[test]
        fn quantize_in_range(v in any::<i64>(), frac in -8i8..=32, fmt in fmt_strategy(),
                             sat in any::<bool>(), near in any::<bool>()) {
            let ovf = if sat { Overflow::Saturate } else { Overflow::Wrap };
            let rnd = if near { Rounding::Nearest } else { Rounding::Truncate };
            let q = Fix::quantize(v as i128, frac, fmt, ovf, rnd);
            prop_assert!(fmt.contains_raw(q.raw()));
        }

        /// Bit transport round-trips every value.
        #[test]
        fn bits_round_trip(x in fix_strategy()) {
            prop_assert_eq!(Fix::from_bits(x.to_bits(), x.fmt()), x);
        }

        /// Full-precision add/sub agree with exact rational arithmetic
        /// whenever the grown result format fits the 63-bit cap (f64 is
        /// exact for these bit widths).
        #[test]
        fn full_precision_ops_exact(a in fix_strategy(), b in fix_strategy()) {
            // The exact result needs max(int bits)+2 integer bits and the
            // finer binary point; skip pairs that exceed the 63-bit cap.
            let frac = a.fmt().frac.max(b.fmt().frac) as i32;
            let int = (a.fmt().int_bits().max(b.fmt().int_bits()) as i32) + 2;
            prop_assume!(int + frac <= 63 && a.fmt().word as i32 + frac - a.fmt().frac as i32 <= 52);
            prop_assume!(b.fmt().word as i32 + frac - b.fmt().frac as i32 <= 52);
            let s = a.add_full(&b);
            prop_assert_eq!(s.to_f64(), a.to_f64() + b.to_f64());
            let d = a.sub_full(&b);
            prop_assert_eq!(d.to_f64(), a.to_f64() - b.to_f64());
        }

        /// Converting into a wider same-signedness format is lossless.
        #[test]
        fn widening_convert_lossless(x in fix_strategy()) {
            let fmt = x.fmt();
            if fmt.word <= 30 {
                let wide = FixFmt { word: fmt.word + 2, frac: fmt.frac, signed: fmt.signed };
                let y = x.convert(wide, Overflow::Wrap, Rounding::Truncate);
                prop_assert_eq!(y.to_f64(), x.to_f64());
            }
        }

        /// Saturating conversion is monotone: order never reverses.
        #[test]
        fn saturating_convert_monotone(a in fix_strategy(), b in fix_strategy(), target in fmt_strategy()) {
            if a.fmt() == b.fmt() {
                let ca = a.convert(target, Overflow::Saturate, Rounding::Truncate);
                let cb = b.convert(target, Overflow::Saturate, Rounding::Truncate);
                if a.raw() <= b.raw() {
                    prop_assert!(ca.cmp_value(&cb) != std::cmp::Ordering::Greater);
                }
            }
        }
    }
}
