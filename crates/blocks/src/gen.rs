//! Parameterized design generators — the PyGen analog.
//!
//! The paper parameterizes its hardware designs "using the PyGen
//! developed by us": Python functions that emit System Generator designs
//! for a given parameter set. This module provides the same capability as
//! Rust builders over [`Graph`]: linear pipelines, adder trees and MAC
//! banks, each returning the created node handles so callers wire them
//! into larger designs.

use crate::block::Block;
use crate::fix::FixFmt;
use crate::graph::{Graph, GraphError, NodeId};
use crate::library::{AddSub, AddSubOp, Delay, Mult};

/// Builds a linear pipeline of `n` identical stages produced by `make`,
/// wiring output port `i` of each stage to input port `i` of the next
/// (all stages must share the port shape of `first`).
///
/// Returns the stage handles in order.
pub fn linear_pipeline<B: Block + 'static>(
    g: &mut Graph,
    name: &str,
    n: usize,
    mut make: impl FnMut(usize) -> B,
) -> Result<Vec<NodeId>, GraphError> {
    assert!(n >= 1);
    let mut stages = Vec::with_capacity(n);
    for i in 0..n {
        let stage = g.add(format!("{name}{i}"), make(i));
        if let Some(&prev) = stages.last() {
            let ports = {
                let b = make(i); // prototype for port count
                b.inputs()
            };
            for p in 0..ports {
                g.connect(prev, p, stage, p)?;
            }
        }
        stages.push(stage);
    }
    Ok(stages)
}

/// Builds a balanced adder tree summing `leaves` (all the same format),
/// returning the root node. A classic reduction structure for MAC banks
/// and dot products.
pub fn adder_tree(
    g: &mut Graph,
    name: &str,
    leaves: &[(NodeId, usize)],
    fmt: FixFmt,
) -> Result<(NodeId, usize), GraphError> {
    assert!(!leaves.is_empty());
    let mut level: Vec<(NodeId, usize)> = leaves.to_vec();
    let mut depth = 0;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for (i, pair) in level.chunks(2).enumerate() {
            if let [a, b] = pair {
                let add = g.add(format!("{name}_l{depth}_{i}"), AddSub::new(AddSubOp::Add, fmt));
                g.connect(a.0, a.1, add, 0)?;
                g.connect(b.0, b.1, add, 1)?;
                next.push((add, 0));
            } else {
                // Odd leaf: delay to stay aligned with the added pairs'
                // combinational depth (zero-cycle here, pass through).
                next.push(pair[0]);
            }
        }
        level = next;
        depth += 1;
    }
    Ok(level[0])
}

/// Builds a bank of `n` pipelined multipliers sharing input `a`
/// (broadcast) against per-lane inputs `b[i]` — the Fig. 6 MAC front end.
/// Returns the multiplier handles.
pub fn mult_bank(
    g: &mut Graph,
    name: &str,
    a: (NodeId, usize),
    b: &[(NodeId, usize)],
    out_fmt: FixFmt,
    latency: usize,
) -> Result<Vec<NodeId>, GraphError> {
    let mut mults = Vec::with_capacity(b.len());
    for (i, lane) in b.iter().enumerate() {
        let m = g.add(format!("{name}{i}"), Mult::new(out_fmt, latency));
        g.connect(a.0, a.1, m, 0)?;
        g.connect(lane.0, lane.1, m, 1)?;
        mults.push(m);
    }
    Ok(mults)
}

/// Builds an `n`-cycle delay-line (shift register) of individual one-
/// cycle [`Delay`] stages and returns them; useful for matching pipeline
/// alignment across parallel paths.
pub fn delay_line(
    g: &mut Graph,
    name: &str,
    from: (NodeId, usize),
    fmt: FixFmt,
    n: usize,
) -> Result<NodeId, GraphError> {
    assert!(n >= 1);
    let mut prev = from;
    let mut last = from.0;
    for i in 0..n {
        let d = g.add(format!("{name}{i}"), Delay::new(fmt, 1));
        g.connect(prev.0, prev.1, d, 0)?;
        prev = (d, 0);
        last = d;
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fix::Fix;
    use crate::library::Constant;

    const I16: FixFmt = FixFmt::INT16;
    const I32: FixFmt = FixFmt::INT32;

    #[test]
    fn adder_tree_sums_constants() {
        let mut g = Graph::new();
        let leaves: Vec<(NodeId, usize)> =
            (1..=7).map(|i| (g.add(format!("c{i}"), Constant::int(i, I16)), 0)).collect();
        let (root, port) = adder_tree(&mut g, "sum", &leaves, I32).unwrap();
        g.gateway_out("total", root, port);
        g.compile().unwrap();
        g.step();
        assert_eq!(g.output("total").unwrap().raw(), (1..=7).sum::<i64>());
    }

    #[test]
    fn mult_bank_broadcasts_a() {
        let mut g = Graph::new();
        let a = g.add("a", Constant::int(3, I16));
        let b: Vec<(NodeId, usize)> =
            (0..4).map(|i| (g.add(format!("b{i}"), Constant::int(10 + i, I16)), 0)).collect();
        let mults = mult_bank(&mut g, "m", (a, 0), &b, I32, 1).unwrap();
        for (i, m) in mults.iter().enumerate() {
            g.gateway_out(format!("p{i}"), *m, 0);
        }
        g.compile().unwrap();
        g.run(2); // one stage of multiplier latency
        for i in 0..4 {
            assert_eq!(g.output(&format!("p{i}")).unwrap().raw(), 3 * (10 + i as i64), "lane {i}");
        }
    }

    #[test]
    fn delay_line_matches_single_deep_delay() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let chained = delay_line(&mut g, "dl", (x, 0), I16, 3).unwrap();
        let deep = g.add("deep", Delay::new(I16, 3));
        g.wire(x, deep, 0).unwrap();
        g.gateway_out("a", chained, 0);
        g.gateway_out("b", deep, 0);
        g.compile().unwrap();
        for i in 1..=8 {
            g.set_input("x", Fix::from_int(i, I16)).unwrap();
            g.step();
            assert_eq!(g.output("a").unwrap().raw(), g.output("b").unwrap().raw(), "cycle {i}");
        }
    }

    #[test]
    fn linear_pipeline_of_delays_accumulates_latency() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let stages = linear_pipeline(&mut g, "st", 4, |_| Delay::new(I16, 1)).unwrap();
        g.wire(x, stages[0], 0).unwrap();
        g.gateway_out("y", *stages.last().unwrap(), 0);
        g.compile().unwrap();
        g.set_input("x", Fix::from_int(5, I16)).unwrap();
        g.step();
        g.set_input("x", Fix::zero(I16)).unwrap();
        for _ in 0..3 {
            g.step();
            assert_eq!(g.output("y").unwrap().raw(), 0);
        }
        g.step();
        assert_eq!(g.output("y").unwrap().raw(), 5, "arrives after 4 stages... ");
    }
}
