//! Fixed-point arithmetic — the signal type of the block simulator.
//!
//! System Generator blocks compute on fixed-point values described by a
//! word length, a binary point and a signedness, with configurable
//! overflow (wrap / saturate) and quantization (truncate / round)
//! behavior. [`Fix`] reproduces that value model bit-accurately, which is
//! what makes the high-level simulation *arithmetically* faithful to the
//! low-level hardware ("only the arithmetic aspects of the low-level
//! implementations are captured by the simulation process").

use std::cmp::Ordering;
use std::fmt;

/// Overflow handling when a value is quantized into a narrower format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Overflow {
    /// Keep the low-order bits (two's-complement wrap), like hardware
    /// adders without saturation logic.
    #[default]
    Wrap,
    /// Clamp to the representable range.
    Saturate,
}

/// Quantization of bits below the output binary point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Drop the bits (round toward minus infinity), the hardware default.
    #[default]
    Truncate,
    /// Round to nearest, ties away from zero.
    Nearest,
}

/// A fixed-point number format: `word` total bits, `frac` bits to the
/// right of the binary point (may be negative or exceed `word`, as in
/// System Generator), signed or unsigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixFmt {
    /// Total word length in bits (1..=63).
    pub word: u8,
    /// Position of the binary point (bits of fraction).
    pub frac: i8,
    /// Two's-complement signed vs unsigned.
    pub signed: bool,
}

impl FixFmt {
    /// A signed format with `word` bits and `frac` fractional bits.
    ///
    /// # Panics
    /// Panics unless `1 <= word <= 63`.
    pub const fn signed(word: u8, frac: i8) -> FixFmt {
        assert!(word >= 1 && word <= 63, "word length out of range");
        FixFmt { word, frac, signed: true }
    }

    /// An unsigned format with `word` bits and `frac` fractional bits.
    pub const fn unsigned(word: u8, frac: i8) -> FixFmt {
        assert!(word >= 1 && word <= 63, "word length out of range");
        FixFmt { word, frac, signed: false }
    }

    /// A single bit (boolean signal).
    pub const BOOL: FixFmt = FixFmt::unsigned(1, 0);

    /// Signed 16.0 — the integer data format of the paper's applications.
    pub const INT16: FixFmt = FixFmt::signed(16, 0);

    /// Signed 32.0 — the FSL word format.
    pub const INT32: FixFmt = FixFmt::signed(32, 0);

    /// Largest representable raw integer.
    pub const fn max_raw(&self) -> i64 {
        if self.signed {
            (1i64 << (self.word - 1)) - 1
        } else {
            // u64 arithmetic so word = 63 does not overflow.
            ((1u64 << self.word) - 1) as i64
        }
    }

    /// Smallest representable raw integer.
    pub const fn min_raw(&self) -> i64 {
        if self.signed {
            -(1i64 << (self.word - 1))
        } else {
            0
        }
    }

    /// Number of integer bits (word − frac).
    pub const fn int_bits(&self) -> i16 {
        self.word as i16 - self.frac as i16
    }

    /// True when `raw` is representable in this format.
    pub const fn contains_raw(&self, raw: i64) -> bool {
        raw >= self.min_raw() && raw <= self.max_raw()
    }
}

impl fmt::Display for FixFmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}Fix{}_{}", if self.signed { "" } else { "U" }, self.word, self.frac)
    }
}

/// A fixed-point value: a raw two's-complement integer interpreted as
/// `raw · 2^-frac` in the given format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fix {
    raw: i64,
    fmt: FixFmt,
}

impl Fix {
    /// Creates a value from a raw integer already in range.
    ///
    /// # Panics
    /// Panics if `raw` is not representable in `fmt`.
    pub fn from_raw(raw: i64, fmt: FixFmt) -> Fix {
        assert!(fmt.contains_raw(raw), "raw value {raw} not representable in {fmt}");
        Fix { raw, fmt }
    }

    /// Quantizes an arbitrarily wide raw value (at binary point `frac`)
    /// into `fmt` with the given overflow and rounding behavior.
    pub fn quantize(value: i128, frac: i8, fmt: FixFmt, ovf: Overflow, rnd: Rounding) -> Fix {
        // Align binary points.
        let shift = frac as i32 - fmt.frac as i32;
        let aligned: i128 = if shift > 0 {
            // Dropping `shift` low bits: apply rounding.
            let drop = shift as u32;
            match rnd {
                Rounding::Truncate => value >> drop,
                Rounding::Nearest => {
                    let half = 1i128 << (drop - 1);
                    if value >= 0 {
                        (value + half) >> drop
                    } else {
                        -((-value + half) >> drop)
                    }
                }
            }
        } else {
            value << ((-shift) as u32)
        };
        let (min, max) = (fmt.min_raw() as i128, fmt.max_raw() as i128);
        let raw = match ovf {
            Overflow::Saturate => aligned.clamp(min, max) as i64,
            Overflow::Wrap => {
                let mask = (1i128 << fmt.word) - 1;
                let low = aligned & mask;
                let v = if fmt.signed && (low >> (fmt.word - 1)) & 1 == 1 {
                    low - (1i128 << fmt.word)
                } else {
                    low
                };
                v as i64
            }
        };
        Fix { raw, fmt }
    }

    /// Zero in the given format.
    pub fn zero(fmt: FixFmt) -> Fix {
        Fix { raw: 0, fmt }
    }

    /// Creates an integer-format value (frac = 0) with wrap semantics.
    pub fn from_int(v: i64, fmt: FixFmt) -> Fix {
        Fix::quantize(v as i128, 0, fmt, Overflow::Wrap, Rounding::Truncate)
    }

    /// Quantizes a float into `fmt` (round-to-nearest, saturating).
    pub fn from_f64(v: f64, fmt: FixFmt) -> Fix {
        let scaled = v * (2f64).powi(fmt.frac as i32);
        let raw = scaled.round().clamp(fmt.min_raw() as f64, fmt.max_raw() as f64) as i64;
        Fix { raw, fmt }
    }

    /// The raw two's-complement integer.
    pub fn raw(&self) -> i64 {
        self.raw
    }

    /// The format.
    pub fn fmt(&self) -> FixFmt {
        self.fmt
    }

    /// Numeric value as a float.
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 * (2f64).powi(-(self.fmt.frac as i32))
    }

    /// The raw bits as an unsigned word (for bus transport).
    pub fn to_bits(&self) -> u64 {
        (self.raw as u64) & (u64::MAX >> (64 - self.fmt.word))
    }

    /// Reconstructs a value from bus bits.
    pub fn from_bits(bits: u64, fmt: FixFmt) -> Fix {
        let masked = bits & (u64::MAX >> (64 - fmt.word));
        let raw = if fmt.signed && (masked >> (fmt.word - 1)) & 1 == 1 {
            (masked as i64) - (1i64 << fmt.word)
        } else {
            masked as i64
        };
        Fix { raw, fmt }
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.raw == 0
    }

    /// True when the value is negative.
    pub fn is_negative(&self) -> bool {
        self.raw < 0
    }

    /// Converts into another format.
    pub fn convert(&self, fmt: FixFmt, ovf: Overflow, rnd: Rounding) -> Fix {
        Fix::quantize(self.raw as i128, self.fmt.frac, fmt, ovf, rnd)
    }

    /// Reinterprets the raw bits in a different format of the same width
    /// (System Generator `reinterpret` block).
    pub fn reinterpret(&self, fmt: FixFmt) -> Fix {
        assert_eq!(self.fmt.word, fmt.word, "reinterpret requires equal widths");
        Fix::from_bits(self.to_bits(), fmt)
    }

    /// Full-precision addition: the result format grows one integer bit and
    /// takes the finer binary point, so no precision is lost as long as the
    /// grown format fits the 63-bit word-length cap (results wider than
    /// that wrap; practical designs stay far below the cap).
    pub fn add_full(&self, other: &Fix) -> Fix {
        let (a, b, frac) = align(self, other);
        let sum = a + b;
        let fmt = grow_fmt(self.fmt, other.fmt, frac, 1);
        Fix::quantize(sum, frac, fmt, Overflow::Wrap, Rounding::Truncate)
    }

    /// Full-precision subtraction (always signed result).
    pub fn sub_full(&self, other: &Fix) -> Fix {
        let (a, b, frac) = align(self, other);
        let diff = a - b;
        let mut fmt = grow_fmt(self.fmt, other.fmt, frac, 1);
        fmt.signed = true;
        Fix::quantize(diff, frac, fmt, Overflow::Wrap, Rounding::Truncate)
    }

    /// Full-precision multiplication.
    pub fn mul_full(&self, other: &Fix) -> Fix {
        let prod = self.raw as i128 * other.raw as i128;
        let frac = self.fmt.frac as i16 + other.fmt.frac as i16;
        let word = (self.fmt.word as u16 + other.fmt.word as u16).min(63) as u8;
        let fmt = FixFmt {
            word,
            frac: frac.clamp(i8::MIN as i16, i8::MAX as i16) as i8,
            signed: self.fmt.signed || other.fmt.signed,
        };
        Fix::quantize(prod, fmt.frac, fmt, Overflow::Wrap, Rounding::Truncate)
    }

    /// Arithmetic negation into the same format (wraps on the most
    /// negative value, as hardware does).
    pub fn neg(&self) -> Fix {
        Fix::quantize(
            -(self.raw as i128),
            self.fmt.frac,
            self.fmt,
            Overflow::Wrap,
            Rounding::Truncate,
        )
    }

    /// Absolute value into the same format (wraps on the most negative).
    pub fn abs(&self) -> Fix {
        if self.raw < 0 {
            self.neg()
        } else {
            *self
        }
    }

    /// Shift of the raw value by `n` bits (positive = left), keeping the
    /// format: a hardware shifter.
    pub fn shift_raw(&self, n: i32) -> Fix {
        let v = if n >= 0 {
            (self.raw as i128) << n.min(63)
        } else {
            (self.raw as i128) >> (-n).min(63)
        };
        Fix::quantize(v, self.fmt.frac, self.fmt, Overflow::Wrap, Rounding::Truncate)
    }

    /// Numeric comparison across formats.
    pub fn cmp_value(&self, other: &Fix) -> Ordering {
        let (a, b, _) = align(self, other);
        a.cmp(&b)
    }
}

impl fmt::Display for Fix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.fmt)
    }
}

/// Aligns two values to a common binary point.
fn align(a: &Fix, b: &Fix) -> (i128, i128, i8) {
    let frac = a.fmt.frac.max(b.fmt.frac);
    let av = (a.raw as i128) << (frac - a.fmt.frac) as u32;
    let bv = (b.raw as i128) << (frac - b.fmt.frac) as u32;
    (av, bv, frac)
}

/// Result format for add/sub: enough bits for either operand plus `extra`
/// integer bits, at the aligned binary point. An unsigned operand feeding
/// a signed result needs one more integer bit for its magnitude.
fn grow_fmt(a: FixFmt, b: FixFmt, frac: i8, extra: i16) -> FixFmt {
    let signed = a.signed || b.signed;
    let eff = |f: FixFmt| f.int_bits() + (signed && !f.signed) as i16;
    let int_bits = eff(a).max(eff(b)) + extra;
    let word = (int_bits + frac as i16).clamp(1, 63) as u8;
    FixFmt { word, frac, signed }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q16_8: FixFmt = FixFmt::signed(16, 8);

    #[test]
    fn float_round_trip() {
        let x = Fix::from_f64(1.5, Q16_8);
        assert_eq!(x.raw(), 384);
        assert_eq!(x.to_f64(), 1.5);
        let y = Fix::from_f64(-0.25, Q16_8);
        assert_eq!(y.to_f64(), -0.25);
    }

    #[test]
    fn saturation_clamps() {
        let big = Fix::quantize(
            1_000_000,
            0,
            FixFmt::signed(8, 0),
            Overflow::Saturate,
            Rounding::Truncate,
        );
        assert_eq!(big.raw(), 127);
        let small = Fix::quantize(
            -1_000_000,
            0,
            FixFmt::signed(8, 0),
            Overflow::Saturate,
            Rounding::Truncate,
        );
        assert_eq!(small.raw(), -128);
        let u =
            Fix::quantize(-5, 0, FixFmt::unsigned(8, 0), Overflow::Saturate, Rounding::Truncate);
        assert_eq!(u.raw(), 0);
    }

    #[test]
    fn wrap_is_twos_complement() {
        let w = Fix::quantize(130, 0, FixFmt::signed(8, 0), Overflow::Wrap, Rounding::Truncate);
        assert_eq!(w.raw(), 130 - 256);
        let w = Fix::quantize(256, 0, FixFmt::unsigned(8, 0), Overflow::Wrap, Rounding::Truncate);
        assert_eq!(w.raw(), 0);
    }

    #[test]
    fn rounding_modes() {
        let fmt = FixFmt::signed(8, 0);
        let t = Fix::quantize(0b101, 1, fmt, Overflow::Wrap, Rounding::Truncate); // 2.5
        assert_eq!(t.raw(), 2);
        let n = Fix::quantize(0b101, 1, fmt, Overflow::Wrap, Rounding::Nearest);
        assert_eq!(n.raw(), 3, "2.5 rounds away from zero");
        let n = Fix::quantize(-0b101, 1, fmt, Overflow::Wrap, Rounding::Nearest);
        assert_eq!(n.raw(), -3);
        let t = Fix::quantize(-0b101, 1, fmt, Overflow::Wrap, Rounding::Truncate);
        assert_eq!(t.raw(), -3, "truncate is an arithmetic shift (toward -inf)");
    }

    #[test]
    fn add_full_loses_nothing() {
        let a = Fix::from_f64(1.25, FixFmt::signed(8, 4));
        let b = Fix::from_f64(2.0625, FixFmt::signed(16, 8));
        let s = a.add_full(&b);
        assert_eq!(s.to_f64(), 3.3125);
        assert!(s.fmt().frac == 8);
    }

    #[test]
    fn sub_full_signed_result() {
        let a = Fix::from_f64(1.0, FixFmt::unsigned(8, 0));
        let b = Fix::from_f64(3.0, FixFmt::unsigned(8, 0));
        let d = a.sub_full(&b);
        assert!(d.fmt().signed);
        assert_eq!(d.to_f64(), -2.0);
    }

    #[test]
    fn mul_full_exact() {
        let a = Fix::from_f64(1.5, FixFmt::signed(8, 4));
        let b = Fix::from_f64(-2.25, FixFmt::signed(8, 4));
        let p = a.mul_full(&b);
        assert_eq!(p.to_f64(), -3.375);
        assert_eq!(p.fmt().frac, 8);
        assert_eq!(p.fmt().word, 16);
    }

    #[test]
    fn bit_transport_round_trip() {
        let x = Fix::from_f64(-1.5, Q16_8);
        let bits = x.to_bits();
        assert_eq!(Fix::from_bits(bits, Q16_8), x);
        // 16-bit word embedded into a 32-bit bus word and back.
        let wide = bits as u32;
        assert_eq!(Fix::from_bits(wide as u64 & 0xFFFF, Q16_8), x);
    }

    #[test]
    fn reinterpret_preserves_bits() {
        let x = Fix::from_raw(0x55, FixFmt::unsigned(8, 0));
        let y = x.reinterpret(FixFmt::signed(8, 4));
        assert_eq!(y.raw(), 0x55);
        assert_eq!(y.to_f64(), 85.0 / 16.0);
    }

    #[test]
    fn shifts_match_hardware() {
        let x = Fix::from_int(-8, FixFmt::signed(16, 0));
        assert_eq!(x.shift_raw(-2).raw(), -2, "arithmetic right shift");
        assert_eq!(x.shift_raw(1).raw(), -16);
        let u = Fix::from_int(5, FixFmt::unsigned(8, 0));
        assert_eq!(u.shift_raw(-1).raw(), 2);
    }

    #[test]
    fn neg_and_abs_wrap_on_most_negative() {
        let m = Fix::from_raw(-128, FixFmt::signed(8, 0));
        assert_eq!(m.neg().raw(), -128, "two's-complement negate of MIN wraps");
        assert_eq!(m.abs().raw(), -128);
        let x = Fix::from_raw(-5, FixFmt::signed(8, 0));
        assert_eq!(x.abs().raw(), 5);
    }

    #[test]
    fn comparison_across_formats() {
        let a = Fix::from_f64(1.5, FixFmt::signed(8, 4));
        let b = Fix::from_f64(1.5, FixFmt::signed(16, 8));
        assert_eq!(a.cmp_value(&b), Ordering::Equal);
        let c = Fix::from_f64(-2.0, FixFmt::signed(8, 0));
        assert_eq!(c.cmp_value(&a), Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "not representable")]
    fn from_raw_checks_range() {
        let _ = Fix::from_raw(128, FixFmt::signed(8, 0));
    }
}
