//! Sequential blocks: delays, registers, counters, accumulators, FIFOs
//! and memories.

use crate::block::{bool_of, state_word, Block};
use crate::fix::{Fix, FixFmt, Overflow, Rounding};
use crate::resource::Resources;
use std::collections::VecDeque;

/// A fixed delay line of `n ≥ 1` cycles.
#[derive(Debug, Clone)]
pub struct Delay {
    fmt: FixFmt,
    line: VecDeque<Fix>,
}

impl Delay {
    /// An `n`-cycle delay of `fmt`-formatted samples, initialized to zero.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(fmt: FixFmt, n: usize) -> Delay {
        assert!(n >= 1, "a delay must be at least one cycle");
        Delay { fmt, line: VecDeque::from(vec![Fix::zero(fmt); n]) }
    }
}

impl Block for Delay {
    fn kind(&self) -> &'static str {
        "Delay"
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.fmt
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = *self.line.front().expect("line is non-empty");
    }
    fn clock(&mut self, inputs: &[Fix]) {
        self.line.pop_front();
        self.line.push_back(inputs[0].convert(self.fmt, Overflow::Wrap, Rounding::Truncate));
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        // The line is saturated with the (converted) input value.
        let v = inputs[0].convert(self.fmt, Overflow::Wrap, Rounding::Truncate);
        self.line.iter().all(|s| s.to_bits() == v.to_bits())
    }
    fn resources(&self) -> Resources {
        Resources::slices(Resources::ff_slices(self.fmt.word as u32) * self.line.len() as u32)
    }
    fn reset(&mut self) {
        for v in &mut self.line {
            *v = Fix::zero(self.fmt);
        }
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.extend(self.line.iter().map(Fix::to_bits));
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        for v in &mut self.line {
            *v = Fix::from_bits(state_word("Delay", src), self.fmt);
        }
    }
}

/// A register with clock-enable: input 0 = data, input 1 = enable bit.
#[derive(Debug, Clone)]
pub struct Register {
    fmt: FixFmt,
    state: Fix,
    init: Fix,
}

impl Register {
    /// A register initialized to `init`.
    pub fn new(init: Fix) -> Register {
        Register { fmt: init.fmt(), state: init, init }
    }

    /// A zero-initialized register of the given format.
    pub fn zeroed(fmt: FixFmt) -> Register {
        Register::new(Fix::zero(fmt))
    }
}

impl Block for Register {
    fn kind(&self) -> &'static str {
        "Register"
    }
    fn inputs(&self) -> usize {
        2
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.fmt
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = self.state;
    }
    fn clock(&mut self, inputs: &[Fix]) {
        if bool_of(&inputs[1]) {
            self.state = inputs[0].convert(self.fmt, Overflow::Wrap, Rounding::Truncate);
        }
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        // Disabled, or latching a value it already holds.
        !bool_of(&inputs[1])
            || inputs[0].convert(self.fmt, Overflow::Wrap, Rounding::Truncate).to_bits()
                == self.state.to_bits()
    }
    fn resources(&self) -> Resources {
        Resources::slices(Resources::ff_slices(self.fmt.word as u32))
    }
    fn reset(&mut self) {
        self.state = self.init;
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.state.to_bits());
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        self.state = Fix::from_bits(state_word("Register", src), self.fmt);
    }
}

/// A free-running modulo counter.
#[derive(Debug, Clone)]
pub struct Counter {
    fmt: FixFmt,
    modulo: u64,
    state: u64,
}

impl Counter {
    /// Counts 0, 1, ..., `modulo`−1, 0, ... in `fmt`.
    ///
    /// # Panics
    /// Panics if `modulo` is 0 or not representable in `fmt`.
    pub fn new(fmt: FixFmt, modulo: u64) -> Counter {
        assert!(modulo > 0, "counter modulo must be positive");
        assert!(fmt.contains_raw(modulo as i64 - 1), "modulo exceeds format");
        Counter { fmt, modulo, state: 0 }
    }
}

impl Block for Counter {
    fn kind(&self) -> &'static str {
        "Counter"
    }
    fn inputs(&self) -> usize {
        0
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.fmt
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = Fix::from_int(self.state as i64, self.fmt);
    }
    fn clock(&mut self, _inputs: &[Fix]) {
        self.state = (self.state + 1) % self.modulo;
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, _inputs: &[Fix]) -> bool {
        // A free-running counter only holds still at modulo 1.
        self.modulo == 1
    }
    fn resources(&self) -> Resources {
        Resources::slices(Resources::adder_slices(self.fmt.word as u32))
    }
    fn reset(&mut self) {
        self.state = 0;
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.state);
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        self.state = state_word("Counter", src) % self.modulo;
    }
}

/// An accumulator: input 0 = addend, input 1 = enable, input 2 = reset.
#[derive(Debug, Clone)]
pub struct Accumulator {
    fmt: FixFmt,
    state: Fix,
}

impl Accumulator {
    /// A zero-initialized accumulator in `fmt`.
    pub fn new(fmt: FixFmt) -> Accumulator {
        Accumulator { fmt, state: Fix::zero(fmt) }
    }
}

impl Block for Accumulator {
    fn kind(&self) -> &'static str {
        "Accumulator"
    }
    fn inputs(&self) -> usize {
        3
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.fmt
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = self.state;
    }
    fn clock(&mut self, inputs: &[Fix]) {
        if bool_of(&inputs[2]) {
            self.state = Fix::zero(self.fmt);
        } else if bool_of(&inputs[1]) {
            self.state = self.state.add_full(&inputs[0]).convert(
                self.fmt,
                Overflow::Wrap,
                Rounding::Truncate,
            );
        }
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        if bool_of(&inputs[2]) {
            return self.state.is_zero();
        }
        if bool_of(&inputs[1]) {
            let next = self.state.add_full(&inputs[0]).convert(
                self.fmt,
                Overflow::Wrap,
                Rounding::Truncate,
            );
            return next.to_bits() == self.state.to_bits();
        }
        true
    }
    fn resources(&self) -> Resources {
        Resources::slices(Resources::adder_slices(self.fmt.word as u32))
    }
    fn reset(&mut self) {
        self.state = Fix::zero(self.fmt);
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.state.to_bits());
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        self.state = Fix::from_bits(state_word("Accumulator", src), self.fmt);
    }
}

/// A synchronous FIFO.
///
/// Inputs: 0 = data in, 1 = push, 2 = pop.
/// Outputs: 0 = head data, 1 = `exists` (not empty), 2 = `full`.
///
/// Matches the FSL macro's programmer-visible behavior; used inside
/// peripherals that buffer results before the output FSL.
#[derive(Debug, Clone)]
pub struct SyncFifo {
    fmt: FixFmt,
    depth: usize,
    queue: VecDeque<Fix>,
}

impl SyncFifo {
    /// A FIFO of `depth` entries.
    pub fn new(fmt: FixFmt, depth: usize) -> SyncFifo {
        assert!(depth >= 1);
        SyncFifo { fmt, depth, queue: VecDeque::with_capacity(depth) }
    }
}

impl Block for SyncFifo {
    fn kind(&self) -> &'static str {
        "SyncFifo"
    }
    fn inputs(&self) -> usize {
        3
    }
    fn outputs(&self) -> usize {
        3
    }
    fn output_fmt(&self, port: usize) -> FixFmt {
        if port == 0 {
            self.fmt
        } else {
            FixFmt::BOOL
        }
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = self.queue.front().copied().unwrap_or(Fix::zero(self.fmt));
        outputs[1] = crate::block::bit(!self.queue.is_empty());
        outputs[2] = crate::block::bit(self.queue.len() >= self.depth);
    }
    fn clock(&mut self, inputs: &[Fix]) {
        // Pop before push so a simultaneous push+pop on a full FIFO works.
        if bool_of(&inputs[2]) {
            self.queue.pop_front();
        }
        if bool_of(&inputs[1]) && self.queue.len() < self.depth {
            self.queue.push_back(inputs[0].convert(self.fmt, Overflow::Wrap, Rounding::Truncate));
        }
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        // An effective pop drains; an effective push (into spare
        // capacity, after any pop) fills. Either changes the queue.
        if bool_of(&inputs[2]) && !self.queue.is_empty() {
            return false;
        }
        !(bool_of(&inputs[1]) && self.queue.len() < self.depth)
    }
    fn resources(&self) -> Resources {
        // Small FIFOs use SRL16 shift registers; deep/wide ones a BRAM.
        let bits = self.depth as u32 * self.fmt.word as u32;
        if bits <= 1024 {
            Resources::slices(bits.div_ceil(16) + 4)
        } else {
            Resources { slices: 8, brams: bits.div_ceil(18 * 1024), mult18s: 0 }
        }
    }
    fn reset(&mut self) {
        self.queue.clear();
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.queue.len() as u64);
        out.extend(self.queue.iter().map(Fix::to_bits));
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        // Clamp rather than assert: fault injection may flip the length
        // word of a snapshot frame, and that must read as corrupt data
        // the detectors catch, not a panic mid-trial.
        let len = (state_word("SyncFifo", src) as usize).min(self.depth);
        self.queue.clear();
        for _ in 0..len {
            self.queue.push_back(Fix::from_bits(state_word("SyncFifo", src), self.fmt));
        }
    }
}

/// A single-port synchronous RAM.
///
/// Inputs: 0 = address, 1 = write data, 2 = write enable.
/// Output: 0 = data at the address presented on the *previous* cycle
/// (synchronous read, like a BRAM).
#[derive(Debug, Clone)]
pub struct SinglePortRam {
    fmt: FixFmt,
    data: Vec<Fix>,
    read_reg: Fix,
}

impl SinglePortRam {
    /// A RAM of `words` entries.
    pub fn new(fmt: FixFmt, words: usize) -> SinglePortRam {
        SinglePortRam { fmt, data: vec![Fix::zero(fmt); words], read_reg: Fix::zero(fmt) }
    }
}

impl Block for SinglePortRam {
    fn kind(&self) -> &'static str {
        "SinglePortRam"
    }
    fn inputs(&self) -> usize {
        3
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.fmt
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = self.read_reg;
    }
    fn clock(&mut self, inputs: &[Fix]) {
        let addr = (inputs[0].raw().max(0) as usize) % self.data.len().max(1);
        if bool_of(&inputs[2]) {
            self.data[addr] = inputs[1].convert(self.fmt, Overflow::Wrap, Rounding::Truncate);
        }
        self.read_reg = self.data[addr];
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        if self.data.is_empty() {
            return true;
        }
        let addr = (inputs[0].raw().max(0) as usize) % self.data.len();
        if bool_of(&inputs[2])
            && self.data[addr].to_bits()
                != inputs[1].convert(self.fmt, Overflow::Wrap, Rounding::Truncate).to_bits()
        {
            return false;
        }
        self.read_reg.to_bits() == self.data[addr].to_bits()
    }
    fn resources(&self) -> Resources {
        let bits = self.data.len() as u32 * self.fmt.word as u32;
        Resources { slices: 2, brams: bits.div_ceil(18 * 1024).max(1), mult18s: 0 }
    }
    fn reset(&mut self) {
        for v in &mut self.data {
            *v = Fix::zero(self.fmt);
        }
        self.read_reg = Fix::zero(self.fmt);
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.extend(self.data.iter().map(Fix::to_bits));
        out.push(self.read_reg.to_bits());
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        for v in &mut self.data {
            *v = Fix::from_bits(state_word("SinglePortRam", src), self.fmt);
        }
        self.read_reg = Fix::from_bits(state_word("SinglePortRam", src), self.fmt);
    }
}

/// A combinational-read ROM addressed by input 0.
#[derive(Debug, Clone)]
pub struct Rom {
    fmt: FixFmt,
    data: Vec<Fix>,
}

impl Rom {
    /// A ROM with the given contents (must be non-empty, uniform format).
    pub fn new(data: Vec<Fix>) -> Rom {
        assert!(!data.is_empty(), "ROM must have contents");
        let fmt = data[0].fmt();
        assert!(data.iter().all(|v| v.fmt() == fmt), "ROM contents must share a format");
        Rom { fmt, data }
    }
}

impl Block for Rom {
    fn kind(&self) -> &'static str {
        "Rom"
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.fmt
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        let addr = (inputs[0].raw().max(0) as usize) % self.data.len();
        outputs[0] = self.data[addr];
    }
    fn resources(&self) -> Resources {
        let bits = self.data.len() as u32 * self.fmt.word as u32;
        if bits <= 512 {
            Resources::slices(bits.div_ceil(32).max(1))
        } else {
            Resources { slices: 1, brams: bits.div_ceil(18 * 1024), mult18s: 0 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::bit;
    use crate::graph::Graph;
    use crate::library::arith::{AddSub, AddSubOp, Constant};

    const I16: FixFmt = FixFmt::INT16;

    #[test]
    fn delay_shifts_samples() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let d = g.add("d", Delay::new(I16, 3));
        g.wire(x, d, 0).unwrap();
        g.gateway_out("y", d, 0);
        g.compile().unwrap();
        let mut seen = Vec::new();
        for i in 1..=6 {
            g.set_input("x", Fix::from_int(i, I16)).unwrap();
            g.step();
            seen.push(g.output("y").unwrap().raw());
        }
        assert_eq!(seen, vec![0, 0, 0, 1, 2, 3]);
    }

    #[test]
    fn register_with_enable_holds() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let en = g.gateway_in("en", FixFmt::BOOL);
        let r = g.add("r", Register::zeroed(I16));
        g.wire(x, r, 0).unwrap();
        g.wire(en, r, 1).unwrap();
        g.gateway_out("q", r, 0);
        g.compile().unwrap();
        g.set_input("x", Fix::from_int(5, I16)).unwrap();
        g.set_input("en", bit(true)).unwrap();
        g.step();
        assert_eq!(g.output("q").unwrap().raw(), 0, "register output lags one cycle");
        g.set_input("x", Fix::from_int(9, I16)).unwrap();
        g.set_input("en", bit(false)).unwrap();
        g.step();
        assert_eq!(g.output("q").unwrap().raw(), 5, "disabled register holds");
        g.step();
        assert_eq!(g.output("q").unwrap().raw(), 5);
    }

    #[test]
    fn feedback_through_register_is_legal() {
        // Classic accumulator built from a register + adder feedback loop.
        let mut g = Graph::new();
        let one = g.add("one", Constant::int(1, I16));
        let add = g.add("add", AddSub::new(AddSubOp::Add, I16));
        let en = g.add("en", Constant::int(1, FixFmt::BOOL));
        let r = g.add("r", Register::zeroed(I16));
        g.connect(one, 0, add, 0).unwrap();
        g.connect(r, 0, add, 1).unwrap();
        g.connect(add, 0, r, 0).unwrap();
        g.connect(en, 0, r, 1).unwrap();
        g.gateway_out("q", r, 0);
        g.compile().unwrap();
        // Gateway outputs show each cycle's settled values: the register
        // presents its pre-clock state, so after n cycles it reads n−1.
        g.run(5);
        assert_eq!(g.output("q").unwrap().raw(), 4);
        g.step();
        assert_eq!(g.output("q").unwrap().raw(), 5);
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut g = Graph::new();
        let a = g.add("a", AddSub::new(AddSubOp::Add, I16));
        let b = g.add("b", AddSub::new(AddSubOp::Add, I16));
        let c = g.add("c", Constant::int(0, I16));
        g.connect(a, 0, b, 0).unwrap();
        g.connect(b, 0, a, 0).unwrap();
        g.connect(c, 0, a, 1).unwrap();
        g.connect(c, 0, b, 1).unwrap();
        let err = g.compile().unwrap_err();
        assert!(matches!(err, crate::graph::GraphError::CombinationalCycle { .. }));
    }

    #[test]
    fn counter_wraps_at_modulo() {
        let mut g = Graph::new();
        let c = g.add("c", Counter::new(FixFmt::unsigned(4, 0), 3));
        g.gateway_out("q", c, 0);
        g.compile().unwrap();
        let mut seen = Vec::new();
        for _ in 0..7 {
            g.step();
            seen.push(g.output("q").unwrap().raw());
        }
        // The output shows the state *during* each cycle (pre-increment).
        assert_eq!(seen, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn accumulator_with_reset() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let en = g.gateway_in("en", FixFmt::BOOL);
        let rst = g.gateway_in("rst", FixFmt::BOOL);
        let a = g.add("acc", Accumulator::new(I16));
        g.wire(x, a, 0).unwrap();
        g.wire(en, a, 1).unwrap();
        g.wire(rst, a, 2).unwrap();
        g.gateway_out("q", a, 0);
        g.compile().unwrap();
        g.set_input("x", Fix::from_int(10, I16)).unwrap();
        g.set_input("en", bit(true)).unwrap();
        g.set_input("rst", bit(false)).unwrap();
        // State visible during cycle n is the sum of the first n−1 adds.
        g.run(3);
        assert_eq!(g.output("q").unwrap().raw(), 20);
        g.set_input("rst", bit(true)).unwrap();
        g.step();
        assert_eq!(g.output("q").unwrap().raw(), 30, "reset lands at the clock edge");
        g.step();
        assert_eq!(g.output("q").unwrap().raw(), 0);
    }

    #[test]
    fn fifo_flags_and_simultaneous_push_pop() {
        let mut fifo = SyncFifo::new(I16, 2);
        let z = Fix::zero(I16);
        let mut out = [z, z, z];
        fifo.eval(&[], &mut out);
        assert!(out[1].is_zero(), "empty: exists = 0");
        fifo.clock(&[Fix::from_int(1, I16), bit(true), bit(false)]);
        fifo.clock(&[Fix::from_int(2, I16), bit(true), bit(false)]);
        fifo.eval(&[], &mut out);
        assert!(!out[2].is_zero(), "full flag set");
        assert_eq!(out[0].raw(), 1);
        // Push while popping at full: succeeds.
        fifo.clock(&[Fix::from_int(3, I16), bit(true), bit(true)]);
        fifo.eval(&[], &mut out);
        assert_eq!(out[0].raw(), 2);
        assert!(!out[2].is_zero());
    }

    #[test]
    fn ram_synchronous_read_after_write() {
        let mut ram = SinglePortRam::new(I16, 16);
        let addr = |a: i64| Fix::from_int(a, FixFmt::unsigned(4, 0));
        ram.clock(&[addr(3), Fix::from_int(77, I16), bit(true)]);
        let mut out = [Fix::zero(I16)];
        ram.eval(&[], &mut out);
        assert_eq!(out[0].raw(), 77, "write-first read");
        ram.clock(&[addr(3), Fix::zero(I16), bit(false)]);
        ram.eval(&[], &mut out);
        assert_eq!(out[0].raw(), 77);
    }

    #[test]
    fn rom_lookup() {
        let rom = Rom::new((0..8).map(|i| Fix::from_int(i * i, I16)).collect());
        let mut out = [Fix::zero(I16)];
        rom.eval(&[Fix::from_int(5, FixFmt::unsigned(3, 0))], &mut out);
        assert_eq!(out[0].raw(), 25);
    }

    #[test]
    fn resource_estimates_scale() {
        assert!(Delay::new(I16, 4).resources().slices > Delay::new(I16, 1).resources().slices);
        assert_eq!(SinglePortRam::new(FixFmt::INT32, 512).resources().brams, 1);
        assert!(SyncFifo::new(FixFmt::INT32, 16).resources().slices < 40);
    }
}
