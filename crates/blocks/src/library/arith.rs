//! Arithmetic blocks: constant, add/sub, multiplier, negate, absolute
//! value, shift and format conversion.

use crate::block::{state_word, Block};
use crate::fix::{Fix, FixFmt, Overflow, Rounding};
use crate::resource::Resources;
use std::collections::VecDeque;

/// A constant source.
#[derive(Debug, Clone)]
pub struct Constant {
    value: Fix,
}

impl Constant {
    /// A constant with the given value.
    pub fn new(value: Fix) -> Constant {
        Constant { value }
    }

    /// An integer constant in the given format.
    pub fn int(v: i64, fmt: FixFmt) -> Constant {
        Constant { value: Fix::from_int(v, fmt) }
    }
}

impl Block for Constant {
    fn kind(&self) -> &'static str {
        "Constant"
    }
    fn inputs(&self) -> usize {
        0
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.value.fmt()
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = self.value;
    }
    // Constants are wiring/LUT-init only.
}

/// Add or subtract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddSubOp {
    /// `a + b`.
    Add,
    /// `a - b`.
    Sub,
}

/// A two-input adder/subtractor with an explicit output format.
#[derive(Debug, Clone)]
pub struct AddSub {
    op: AddSubOp,
    out: FixFmt,
    overflow: Overflow,
    rounding: Rounding,
}

impl AddSub {
    /// An adder/subtractor producing `out`-formatted results.
    pub fn new(op: AddSubOp, out: FixFmt) -> AddSub {
        AddSub { op, out, overflow: Overflow::Wrap, rounding: Rounding::Truncate }
    }

    /// Selects saturation instead of wrapping.
    pub fn saturating(mut self) -> AddSub {
        self.overflow = Overflow::Saturate;
        self
    }
}

impl Block for AddSub {
    fn kind(&self) -> &'static str {
        "AddSub"
    }
    fn inputs(&self) -> usize {
        2
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.out
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        let full = match self.op {
            AddSubOp::Add => inputs[0].add_full(&inputs[1]),
            AddSubOp::Sub => inputs[0].sub_full(&inputs[1]),
        };
        outputs[0] = full.convert(self.out, self.overflow, self.rounding);
    }
    fn resources(&self) -> Resources {
        let mut r = Resources::slices(Resources::adder_slices(self.out.word as u32));
        if self.overflow == Overflow::Saturate {
            // Saturation needs a comparator/mux tail.
            r.slices += (self.out.word as u32).div_ceil(4);
        }
        r
    }
}

/// A multiplier with configurable pipeline latency, mapped to embedded
/// 18×18 multipliers (as on Virtex-II Pro) or to slice logic.
#[derive(Debug, Clone)]
pub struct Mult {
    out: FixFmt,
    latency: usize,
    /// Pipeline of results in flight (front = oldest).
    pipe: VecDeque<Fix>,
    use_embedded: bool,
}

impl Mult {
    /// An embedded-multiplier-based multiplier with `latency` pipeline
    /// stages (0 = purely combinational).
    pub fn new(out: FixFmt, latency: usize) -> Mult {
        Mult {
            out,
            latency,
            pipe: VecDeque::from(vec![Fix::zero(out); latency]),
            use_embedded: true,
        }
    }

    /// Maps the multiplier to slice logic instead of MULT18X18 primitives
    /// (the trade-off the paper's §I discusses for Virtex-II multipliers).
    pub fn slice_based(mut self) -> Mult {
        self.use_embedded = false;
        self
    }

    fn compute(&self, inputs: &[Fix]) -> Fix {
        inputs[0].mul_full(&inputs[1]).convert(self.out, Overflow::Wrap, Rounding::Truncate)
    }
}

impl Block for Mult {
    fn kind(&self) -> &'static str {
        "Mult"
    }
    fn inputs(&self) -> usize {
        2
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.out
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = if self.latency == 0 {
            self.compute(inputs)
        } else {
            *self.pipe.front().expect("pipeline holds `latency` entries")
        };
    }
    fn clock(&mut self, inputs: &[Fix]) {
        if self.latency > 0 {
            self.pipe.pop_front();
            self.pipe.push_back(self.compute(inputs));
        }
    }
    fn is_combinational(&self) -> bool {
        self.latency == 0
    }
    fn resources(&self) -> Resources {
        // One MULT18X18 covers an 18×18 product; wider operands tile.
        let w = self.out.word as u32;
        if self.use_embedded {
            let tiles = w.div_ceil(18).pow(2).min(4);
            Resources { slices: 2 * self.latency as u32, brams: 0, mult18s: tiles }
        } else {
            // Slice-based array multiplier: roughly w²/4 LUT pairs.
            Resources::slices((w * w) / 4 + 2 * self.latency as u32)
        }
    }
    fn reset(&mut self) {
        for v in &mut self.pipe {
            *v = Fix::zero(self.out);
        }
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.extend(self.pipe.iter().map(Fix::to_bits));
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        for v in &mut self.pipe {
            *v = Fix::from_bits(state_word("Mult", src), self.out);
        }
    }
}

/// Arithmetic negation.
#[derive(Debug, Clone)]
pub struct Negate {
    out: FixFmt,
}

impl Negate {
    /// A negator producing `out`-formatted results.
    pub fn new(out: FixFmt) -> Negate {
        Negate { out }
    }
}

impl Block for Negate {
    fn kind(&self) -> &'static str {
        "Negate"
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.out
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = inputs[0].neg().convert(self.out, Overflow::Wrap, Rounding::Truncate);
    }
    fn resources(&self) -> Resources {
        Resources::slices(Resources::adder_slices(self.out.word as u32))
    }
}

/// Absolute value.
#[derive(Debug, Clone)]
pub struct AbsVal {
    out: FixFmt,
}

impl AbsVal {
    /// An absolute-value block producing `out`-formatted results.
    pub fn new(out: FixFmt) -> AbsVal {
        AbsVal { out }
    }
}

impl Block for AbsVal {
    fn kind(&self) -> &'static str {
        "AbsVal"
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.out
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = inputs[0].abs().convert(self.out, Overflow::Wrap, Rounding::Truncate);
    }
    fn resources(&self) -> Resources {
        Resources::slices(Resources::adder_slices(self.out.word as u32))
    }
}

/// Shift direction for [`Shift`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftDir {
    /// Shift the raw bits left (multiply by 2^n).
    Left,
    /// Shift the raw bits right (divide by 2^n; arithmetic for signed).
    Right,
}

/// A constant-amount shifter. In hardware a constant shift is free
/// (wiring); the block exists to model the CORDIC `>> i` datapaths.
#[derive(Debug, Clone)]
pub struct Shift {
    dir: ShiftDir,
    amount: u32,
    out: FixFmt,
}

impl Shift {
    /// A shifter by a constant `amount`, producing `out` format.
    pub fn new(dir: ShiftDir, amount: u32, out: FixFmt) -> Shift {
        Shift { dir, amount, out }
    }
}

impl Block for Shift {
    fn kind(&self) -> &'static str {
        "Shift"
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.out
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        let n = match self.dir {
            ShiftDir::Left => self.amount as i32,
            ShiftDir::Right => -(self.amount as i32),
        };
        outputs[0] = inputs[0].convert(self.out, Overflow::Wrap, Rounding::Truncate).shift_raw(n);
    }
    // Constant shifts are wiring: zero resources.
}

/// Format conversion (System Generator `Convert`).
#[derive(Debug, Clone)]
pub struct Convert {
    out: FixFmt,
    overflow: Overflow,
    rounding: Rounding,
}

impl Convert {
    /// A converter into `out` with the given overflow/rounding behavior.
    pub fn new(out: FixFmt, overflow: Overflow, rounding: Rounding) -> Convert {
        Convert { out, overflow, rounding }
    }
}

impl Block for Convert {
    fn kind(&self) -> &'static str {
        "Convert"
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.out
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = inputs[0].convert(self.out, self.overflow, self.rounding);
    }
    fn resources(&self) -> Resources {
        match (self.overflow, self.rounding) {
            (Overflow::Wrap, Rounding::Truncate) => Resources::ZERO, // wiring
            _ => Resources::slices((self.out.word as u32).div_ceil(4)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    const I16: FixFmt = FixFmt::INT16;

    #[test]
    fn addsub_adds_and_subtracts() {
        let mut g = Graph::new();
        let a = g.gateway_in("a", I16);
        let b = g.gateway_in("b", I16);
        let add = g.add("add", AddSub::new(AddSubOp::Add, I16));
        let sub = g.add("sub", AddSub::new(AddSubOp::Sub, I16));
        for (n, p) in [(add, 0), (sub, 0)] {
            g.connect(a, 0, n, p).unwrap();
        }
        for (n, p) in [(add, 1), (sub, 1)] {
            g.connect(b, 0, n, p).unwrap();
        }
        g.gateway_out("sum", add, 0);
        g.gateway_out("diff", sub, 0);
        g.compile().unwrap();
        g.set_input("a", Fix::from_int(100, I16)).unwrap();
        g.set_input("b", Fix::from_int(-30, I16)).unwrap();
        g.step();
        assert_eq!(g.output("sum").unwrap().raw(), 70);
        assert_eq!(g.output("diff").unwrap().raw(), 130);
    }

    #[test]
    fn addsub_wraps_like_hardware() {
        let fmt = FixFmt::signed(8, 0);
        let add = AddSub::new(AddSubOp::Add, fmt);
        let mut out = [Fix::zero(fmt)];
        add.eval(&[Fix::from_int(127, fmt), Fix::from_int(1, fmt)], &mut out);
        assert_eq!(out[0].raw(), -128);
        let sat = AddSub::new(AddSubOp::Add, fmt).saturating();
        sat.eval(&[Fix::from_int(127, fmt), Fix::from_int(1, fmt)], &mut out);
        assert_eq!(out[0].raw(), 127);
    }

    #[test]
    fn mult_latency_pipelines_results() {
        let mut g = Graph::new();
        let a = g.gateway_in("a", I16);
        let b = g.gateway_in("b", I16);
        let m = g.add("m", Mult::new(FixFmt::INT32, 2));
        g.connect(a, 0, m, 0).unwrap();
        g.connect(b, 0, m, 1).unwrap();
        g.gateway_out("p", m, 0);
        g.compile().unwrap();
        let pairs = [(3, 4), (5, 6), (7, 8)];
        let mut seen = Vec::new();
        for (x, y) in pairs {
            g.set_input("a", Fix::from_int(x, I16)).unwrap();
            g.set_input("b", Fix::from_int(y, I16)).unwrap();
            g.step();
            seen.push(g.output("p").unwrap().raw());
        }
        // Latency 2: first two outputs are the pipeline's initial zeros.
        assert_eq!(seen, vec![0, 0, 12]);
        g.set_input("a", Fix::zero(I16)).unwrap();
        g.set_input("b", Fix::zero(I16)).unwrap();
        g.step();
        assert_eq!(g.output("p").unwrap().raw(), 30);
        g.step();
        assert_eq!(g.output("p").unwrap().raw(), 56);
    }

    #[test]
    fn combinational_mult_has_no_delay() {
        let m = Mult::new(FixFmt::INT32, 0);
        let mut out = [Fix::zero(FixFmt::INT32)];
        m.eval(&[Fix::from_int(-9, I16), Fix::from_int(9, I16)], &mut out);
        assert_eq!(out[0].raw(), -81);
        assert!(m.is_combinational());
    }

    #[test]
    fn mult_resources_embedded_vs_slices() {
        let e = Mult::new(I16, 1).resources();
        assert_eq!(e.mult18s, 1);
        assert!(e.slices < 10);
        let s = Mult::new(I16, 1).slice_based().resources();
        assert_eq!(s.mult18s, 0);
        assert!(s.slices > 50, "slice-based 16-bit multiplier is big");
    }

    #[test]
    fn shift_models_cordic_datapath() {
        let sh = Shift::new(ShiftDir::Right, 3, I16);
        let mut out = [Fix::zero(I16)];
        sh.eval(&[Fix::from_int(-40, I16)], &mut out);
        assert_eq!(out[0].raw(), -5);
        let sh = Shift::new(ShiftDir::Left, 2, I16);
        sh.eval(&[Fix::from_int(7, I16)], &mut out);
        assert_eq!(out[0].raw(), 28);
    }

    #[test]
    fn convert_quantizes() {
        let c = Convert::new(FixFmt::signed(8, 0), Overflow::Saturate, Rounding::Nearest);
        let mut out = [Fix::zero(FixFmt::signed(8, 0))];
        c.eval(&[Fix::from_f64(130.7, FixFmt::signed(16, 4))], &mut out);
        assert_eq!(out[0].raw(), 127);
        c.eval(&[Fix::from_f64(3.5, FixFmt::signed(16, 4))], &mut out);
        assert_eq!(out[0].raw(), 4);
    }

    #[test]
    fn negate_abs() {
        let n = Negate::new(I16);
        let a = AbsVal::new(I16);
        let mut out = [Fix::zero(I16)];
        n.eval(&[Fix::from_int(5, I16)], &mut out);
        assert_eq!(out[0].raw(), -5);
        a.eval(&[Fix::from_int(-5, I16)], &mut out);
        assert_eq!(out[0].raw(), 5);
    }
}
