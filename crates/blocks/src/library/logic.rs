//! Control and bit-level blocks: mux, relational, logical, slice, concat.

use crate::block::{bit, Block};
use crate::fix::{Fix, FixFmt, Overflow, Rounding};
use crate::resource::Resources;

/// An n-way multiplexer: input 0 is the select, inputs 1..=n the data.
#[derive(Debug, Clone)]
pub struct Mux {
    ways: usize,
    out: FixFmt,
}

impl Mux {
    /// A mux with `ways` data inputs producing `out` format.
    ///
    /// # Panics
    /// Panics if `ways < 2`.
    pub fn new(ways: usize, out: FixFmt) -> Mux {
        assert!(ways >= 2, "a mux needs at least two ways");
        Mux { ways, out }
    }
}

impl Block for Mux {
    fn kind(&self) -> &'static str {
        "Mux"
    }
    fn inputs(&self) -> usize {
        self.ways + 1
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.out
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        let sel = (inputs[0].raw().max(0) as usize).min(self.ways - 1);
        outputs[0] = inputs[1 + sel].convert(self.out, Overflow::Wrap, Rounding::Truncate);
    }
    fn resources(&self) -> Resources {
        // A 2:1 mux bit fits one LUT; n-way muxes tree up.
        let luts = self.out.word as u32 * (self.ways as u32 - 1);
        Resources::slices(luts.div_ceil(2))
    }
}

/// Comparison operator for [`Relational`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `a == b`.
    Eq,
    /// `a != b`.
    Ne,
    /// `a < b`.
    Lt,
    /// `a <= b`.
    Le,
    /// `a > b`.
    Gt,
    /// `a >= b`.
    Ge,
}

/// A comparator producing a single bit.
#[derive(Debug, Clone)]
pub struct Relational {
    op: RelOp,
    width_hint: u8,
}

impl Relational {
    /// A comparator; `width_hint` sizes the resource estimate.
    pub fn new(op: RelOp, width_hint: u8) -> Relational {
        Relational { op, width_hint }
    }
}

impl Block for Relational {
    fn kind(&self) -> &'static str {
        "Relational"
    }
    fn inputs(&self) -> usize {
        2
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        FixFmt::BOOL
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        use std::cmp::Ordering::*;
        let ord = inputs[0].cmp_value(&inputs[1]);
        let v = match self.op {
            RelOp::Eq => ord == Equal,
            RelOp::Ne => ord != Equal,
            RelOp::Lt => ord == Less,
            RelOp::Le => ord != Greater,
            RelOp::Gt => ord == Greater,
            RelOp::Ge => ord != Less,
        };
        outputs[0] = bit(v);
    }
    fn resources(&self) -> Resources {
        Resources::slices((self.width_hint as u32).div_ceil(4))
    }
}

/// Bitwise operator for [`Logical`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicalOp {
    /// Bitwise AND of all inputs.
    And,
    /// Bitwise OR of all inputs.
    Or,
    /// Bitwise XOR of all inputs.
    Xor,
    /// Bitwise NOT of the single input.
    Not,
}

/// A bitwise logic gate over equal-width words.
#[derive(Debug, Clone)]
pub struct Logical {
    op: LogicalOp,
    arity: usize,
    out: FixFmt,
}

impl Logical {
    /// A gate over `arity` inputs producing `out` format.
    pub fn new(op: LogicalOp, arity: usize, out: FixFmt) -> Logical {
        assert!(if op == LogicalOp::Not { arity == 1 } else { arity >= 2 });
        Logical { op, arity, out }
    }
}

impl Block for Logical {
    fn kind(&self) -> &'static str {
        "Logical"
    }
    fn inputs(&self) -> usize {
        self.arity
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.out
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        let mask = u64::MAX >> (64 - self.out.word);
        let v = match self.op {
            LogicalOp::Not => !inputs[0].to_bits() & mask,
            op => {
                let mut acc = inputs[0].to_bits();
                for x in &inputs[1..] {
                    let b = x.to_bits();
                    acc = match op {
                        LogicalOp::And => acc & b,
                        LogicalOp::Or => acc | b,
                        LogicalOp::Xor => acc ^ b,
                        LogicalOp::Not => unreachable!(),
                    };
                }
                acc & mask
            }
        };
        outputs[0] = Fix::from_bits(v, self.out);
    }
    fn resources(&self) -> Resources {
        let luts = self.out.word as u32 * (self.arity as u32).saturating_sub(1).max(1);
        Resources::slices(luts.div_ceil(2))
    }
}

/// Extracts a contiguous bit field (System Generator `Slice`).
#[derive(Debug, Clone)]
pub struct Slice {
    /// Lowest extracted bit.
    low: u8,
    out: FixFmt,
}

impl Slice {
    /// Extracts `out.word` bits starting at bit `low` of the input.
    pub fn new(low: u8, out: FixFmt) -> Slice {
        Slice { low, out }
    }
}

impl Block for Slice {
    fn kind(&self) -> &'static str {
        "Slice"
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.out
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = Fix::from_bits(inputs[0].to_bits() >> self.low, self.out);
    }
    // Slices are wiring.
}

/// Concatenates two words: input 0 becomes the high bits.
#[derive(Debug, Clone)]
pub struct Concat {
    low_width: u8,
    out: FixFmt,
}

impl Concat {
    /// Concatenates `hi` (input 0) over `low_width` bits of input 1.
    pub fn new(low_width: u8, out: FixFmt) -> Concat {
        Concat { low_width, out }
    }
}

impl Block for Concat {
    fn kind(&self) -> &'static str {
        "Concat"
    }
    fn inputs(&self) -> usize {
        2
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.out
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        let v = (inputs[0].to_bits() << self.low_width) | inputs[1].to_bits();
        outputs[0] = Fix::from_bits(v, self.out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::bool_of;

    const I16: FixFmt = FixFmt::INT16;

    fn eval1(b: &dyn Block, inputs: &[Fix]) -> Fix {
        let mut out = [Fix::zero(b.output_fmt(0))];
        b.eval(inputs, &mut out);
        out[0]
    }

    #[test]
    fn mux_selects() {
        let m = Mux::new(3, I16);
        let data = [
            Fix::from_int(1, FixFmt::unsigned(2, 0)),
            Fix::from_int(10, I16),
            Fix::from_int(20, I16),
            Fix::from_int(30, I16),
        ];
        assert_eq!(eval1(&m, &data).raw(), 20);
        let mut d2 = data;
        d2[0] = Fix::from_int(2, FixFmt::unsigned(2, 0));
        assert_eq!(eval1(&m, &d2).raw(), 30);
        // Out-of-range select clamps to the last way.
        d2[0] = Fix::from_int(3, FixFmt::unsigned(2, 0));
        assert_eq!(eval1(&m, &d2).raw(), 30);
    }

    #[test]
    fn relational_all_ops() {
        let a = Fix::from_int(-3, I16);
        let b = Fix::from_int(5, I16);
        let cases = [
            (RelOp::Eq, false),
            (RelOp::Ne, true),
            (RelOp::Lt, true),
            (RelOp::Le, true),
            (RelOp::Gt, false),
            (RelOp::Ge, false),
        ];
        for (op, expect) in cases {
            let r = Relational::new(op, 16);
            assert_eq!(!eval1(&r, &[a, b]).is_zero(), expect, "{op:?}");
        }
        let r = Relational::new(RelOp::Le, 16);
        assert!(!eval1(&r, &[b, b]).is_zero());
    }

    #[test]
    fn relational_detects_negative_y_for_cordic() {
        // The CORDIC direction bit d_i = (Y_i < 0).
        let r = Relational::new(RelOp::Lt, 16);
        let zero = Fix::zero(I16);
        assert!(!eval1(&r, &[Fix::from_int(-1, I16), zero]).is_zero());
        assert!(eval1(&r, &[Fix::from_int(1, I16), zero]).is_zero());
    }

    #[test]
    fn logical_gates() {
        let fmt = FixFmt::unsigned(8, 0);
        let a = Fix::from_bits(0b1100, fmt);
        let b = Fix::from_bits(0b1010, fmt);
        assert_eq!(eval1(&Logical::new(LogicalOp::And, 2, fmt), &[a, b]).to_bits(), 0b1000);
        assert_eq!(eval1(&Logical::new(LogicalOp::Or, 2, fmt), &[a, b]).to_bits(), 0b1110);
        assert_eq!(eval1(&Logical::new(LogicalOp::Xor, 2, fmt), &[a, b]).to_bits(), 0b0110);
        assert_eq!(eval1(&Logical::new(LogicalOp::Not, 1, fmt), &[a]).to_bits(), 0xF3);
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let fmt32 = FixFmt::unsigned(32, 0);
        let fmt16 = FixFmt::unsigned(16, 0);
        let x = Fix::from_bits(0xDEAD_BEEF, fmt32);
        let hi = eval1(&Slice::new(16, fmt16), &[x]);
        let lo = eval1(&Slice::new(0, fmt16), &[x]);
        assert_eq!(hi.to_bits(), 0xDEAD);
        assert_eq!(lo.to_bits(), 0xBEEF);
        let back = eval1(&Concat::new(16, fmt32), &[hi, lo]);
        assert_eq!(back.to_bits(), 0xDEAD_BEEF);
    }

    #[test]
    fn bool_helpers() {
        assert!(!bool_of(&Fix::zero(FixFmt::BOOL)));
        assert!(bool_of(&bit(true)));
    }
}
