//! Triple modular redundancy: a voter wrapper over three replicas of an
//! inner block.
//!
//! The classic SEU-hardening trade: triplicate the logic, vote the
//! outputs bit-wise, and a single upset replica is outvoted while the
//! design keeps producing correct values. The voter also *detects* the
//! divergence (a replica miscompare each clocked cycle the replicas
//! disagree), which is what lets a recovery supervisor scrub the upset
//! by rolling back to a clean checkpoint instead of accumulating it.

use crate::block::Block;
use crate::fix::{Fix, FixFmt};
use crate::resource::Resources;

/// Most output ports a wrapped block may have (keeps voting allocation
/// free on the per-cycle path).
const MAX_PORTS: usize = 16;

/// Three replicas of `B` behind a bit-wise majority voter.
#[derive(Clone)]
pub struct Tmr<B: Block + Clone> {
    replicas: [B; 3],
    /// Clocked cycles on which the replicas disagreed, cumulative.
    miscompares: u64,
}

impl<B: Block + Clone> Tmr<B> {
    /// Wraps `inner` in a voter over three replicas of it.
    ///
    /// # Panics
    /// Panics if `inner` has more than 16 output ports.
    pub fn new(inner: B) -> Tmr<B> {
        assert!(inner.outputs() <= MAX_PORTS, "TMR voter supports at most {MAX_PORTS} outputs");
        Tmr { replicas: [inner.clone(), inner.clone(), inner], miscompares: 0 }
    }

    /// Cumulative count of clocked cycles with disagreeing replicas.
    pub fn miscompares(&self) -> u64 {
        self.miscompares
    }

    /// True when every replica currently evaluates to identical outputs
    /// under `inputs`.
    fn replicas_agree(&self, inputs: &[Fix]) -> bool {
        let n = self.replicas[0].outputs();
        let mut a = [Fix::zero(FixFmt::BOOL); MAX_PORTS];
        let mut b = [Fix::zero(FixFmt::BOOL); MAX_PORTS];
        self.replicas[0].eval(inputs, &mut a[..n]);
        for r in &self.replicas[1..] {
            r.eval(inputs, &mut b[..n]);
            if a[..n].iter().zip(&b[..n]).any(|(x, y)| x.to_bits() != y.to_bits()) {
                return false;
            }
        }
        true
    }
}

impl<B: Block + Clone> Block for Tmr<B> {
    fn kind(&self) -> &'static str {
        "Tmr"
    }
    fn inputs(&self) -> usize {
        self.replicas[0].inputs()
    }
    fn outputs(&self) -> usize {
        self.replicas[0].outputs()
    }
    fn output_fmt(&self, port: usize) -> FixFmt {
        self.replicas[0].output_fmt(port)
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        let n = outputs.len();
        let mut bufs = [[Fix::zero(FixFmt::BOOL); MAX_PORTS]; 3];
        for (r, buf) in self.replicas.iter().zip(bufs.iter_mut()) {
            r.eval(inputs, &mut buf[..n]);
        }
        for (i, out) in outputs.iter_mut().enumerate() {
            let (a, b, c) = (bufs[0][i].to_bits(), bufs[1][i].to_bits(), bufs[2][i].to_bits());
            *out = Fix::from_bits((a & b) | (a & c) | (b & c), self.output_fmt(i));
        }
    }
    fn clock(&mut self, inputs: &[Fix]) {
        for r in &mut self.replicas {
            r.clock(inputs);
        }
        // Miscompares count in the clock phase only: the quiescence
        // probe re-evaluates blocks at will, so an eval-side counter
        // would diverge between stepped and fast-forwarded runs.
        if !self.replicas_agree(inputs) {
            self.miscompares += 1;
        }
    }
    fn is_combinational(&self) -> bool {
        self.replicas[0].is_combinational()
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        // Divergent replicas never report quiescent: the per-cycle
        // miscompare counter must keep advancing under stepping, so a
        // fast-forward jump over the divergence would break step/jump
        // bit-identity (and hide the fault from detection).
        self.replicas_agree(inputs) && self.replicas.iter().all(|r| r.is_quiescent(inputs))
    }
    fn resources(&self) -> Resources {
        // Three full replicas plus the voter: one 3-input majority LUT
        // and one miscompare-compare LUT per output bit, two LUTs per
        // slice → about one slice per voted output bit.
        let bits: u32 = (0..self.outputs()).map(|p| self.output_fmt(p).word as u32).sum();
        self.replicas[0].resources() * 3 + Resources::slices(bits)
    }
    fn reset(&mut self) {
        for r in &mut self.replicas {
            r.reset();
        }
        self.miscompares = 0;
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.miscompares);
        for r in &self.replicas {
            r.save_state(out);
        }
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        self.miscompares = crate::block::state_word("Tmr", src);
        for r in &mut self.replicas {
            r.load_state(src);
        }
    }
    fn detected_faults(&self) -> u64 {
        self.miscompares
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::seq::Register;

    fn fix(v: i64) -> Fix {
        Fix::from_int(v, FixFmt::unsigned(16, 0))
    }

    #[test]
    fn voter_forwards_a_healthy_inner_block() {
        let mut t = Tmr::new(Register::zeroed(FixFmt::unsigned(16, 0)));
        let ins = [fix(42), Fix::from_int(1, FixFmt::BOOL)];
        t.clock(&ins);
        let mut out = [Fix::zero(FixFmt::BOOL); 1];
        t.eval(&ins, &mut out);
        assert_eq!(out[0].to_bits(), 42);
        assert_eq!(t.miscompares(), 0);
        assert_eq!(t.detected_faults(), 0);
    }

    #[test]
    fn single_replica_upset_is_outvoted_and_detected() {
        let mut t = Tmr::new(Register::zeroed(FixFmt::unsigned(16, 0)));
        let ins = [fix(0x55), Fix::from_int(1, FixFmt::BOOL)];
        t.clock(&ins);
        // Upset one replica's state through the snapshot words: frame is
        // [miscompares, r0, r1, r2] for a one-word Register.
        let mut words = Vec::new();
        t.save_state(&mut words);
        assert_eq!(words.len(), 4);
        words[2] ^= 1 << 3; // flip a bit of replica 1's state
        t.load_state(&mut words.into_iter());
        // The vote still produces the clean value...
        let hold = [fix(0x55), Fix::from_int(0, FixFmt::BOOL)];
        let mut out = [Fix::zero(FixFmt::BOOL); 1];
        t.eval(&hold, &mut out);
        assert_eq!(out[0].to_bits(), 0x55, "majority masks the upset replica");
        // ...and the divergence is counted on the next clock, not during
        // eval (which must stay side-effect free).
        assert_eq!(t.miscompares(), 0);
        t.clock(&hold);
        assert_eq!(t.miscompares(), 1);
        assert!(!t.is_quiescent(&hold), "divergent replicas must refuse quiescence");
    }

    #[test]
    fn quiescence_matches_inner_once_replicas_agree() {
        let fmt = FixFmt::unsigned(16, 0);
        let t = Tmr::new(Register::zeroed(fmt));
        for enable in [0, 1] {
            let ins = [Fix::zero(fmt), Fix::from_int(enable, FixFmt::BOOL)];
            assert_eq!(
                t.is_quiescent(&ins),
                Register::zeroed(fmt).is_quiescent(&ins),
                "agreeing TMR defers to the inner block's quiescence (enable {enable})"
            );
        }
    }

    #[test]
    fn resources_cost_three_replicas_plus_voter() {
        let inner = Register::zeroed(FixFmt::unsigned(16, 0));
        let r = Tmr::new(inner.clone()).resources();
        assert_eq!(r.slices, inner.resources().slices * 3 + 16);
    }
}
