//! Rate-changing and miscellaneous blocks: up/down sampling, constant
//! multiplication, thresholding, dual-port RAM — the rest of the standard
//! System Generator blockset used by signal-processing designs.

use crate::block::{bit, bool_of, state_word, Block};
use crate::fix::{Fix, FixFmt, Overflow, Rounding};
use crate::resource::Resources;

/// Keeps every `factor`-th sample, holding it between updates (System
/// Generator `Down Sample` in sample-and-hold mode).
#[derive(Debug, Clone)]
pub struct DownSample {
    fmt: FixFmt,
    factor: u64,
    phase: u64,
    held: Fix,
}

impl DownSample {
    /// Keeps one sample out of every `factor ≥ 1`.
    pub fn new(fmt: FixFmt, factor: u64) -> DownSample {
        assert!(factor >= 1);
        DownSample { fmt, factor, phase: 0, held: Fix::zero(fmt) }
    }
}

impl Block for DownSample {
    fn kind(&self) -> &'static str {
        "DownSample"
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        2 // held sample, sample strobe
    }
    fn output_fmt(&self, port: usize) -> FixFmt {
        if port == 0 {
            self.fmt
        } else {
            FixFmt::BOOL
        }
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = self.held;
        outputs[1] = bit(self.phase == 0);
    }
    fn clock(&mut self, inputs: &[Fix]) {
        if self.phase == 0 {
            self.held = inputs[0].convert(self.fmt, Overflow::Wrap, Rounding::Truncate);
        }
        self.phase = (self.phase + 1) % self.factor;
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        // The phase counter only holds still at factor 1, where every
        // cycle re-latches the input.
        self.factor == 1
            && self.held.to_bits()
                == inputs[0].convert(self.fmt, Overflow::Wrap, Rounding::Truncate).to_bits()
    }
    fn resources(&self) -> Resources {
        Resources::slices(Resources::ff_slices(self.fmt.word as u32) + 2)
    }
    fn reset(&mut self) {
        self.phase = 0;
        self.held = Fix::zero(self.fmt);
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.phase);
        out.push(self.held.to_bits());
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        self.phase = state_word("DownSample", src) % self.factor;
        self.held = Fix::from_bits(state_word("DownSample", src), self.fmt);
    }
}

/// Repeats each input sample `factor` times and strobes the first copy
/// (System Generator `Up Sample` with hold).
#[derive(Debug, Clone)]
pub struct UpSample {
    fmt: FixFmt,
    factor: u64,
    phase: u64,
    held: Fix,
}

impl UpSample {
    /// Each input sample is presented for `factor ≥ 1` cycles.
    pub fn new(fmt: FixFmt, factor: u64) -> UpSample {
        assert!(factor >= 1);
        UpSample { fmt, factor, phase: 0, held: Fix::zero(fmt) }
    }
}

impl Block for UpSample {
    fn kind(&self) -> &'static str {
        "UpSample"
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        2 // sample, new-sample strobe
    }
    fn output_fmt(&self, port: usize) -> FixFmt {
        if port == 0 {
            self.fmt
        } else {
            FixFmt::BOOL
        }
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = self.held;
        outputs[1] = bit(self.phase == 1 % self.factor.max(1));
    }
    fn clock(&mut self, inputs: &[Fix]) {
        if self.phase == 0 {
            self.held = inputs[0].convert(self.fmt, Overflow::Wrap, Rounding::Truncate);
        }
        self.phase = (self.phase + 1) % self.factor;
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        self.factor == 1
            && self.held.to_bits()
                == inputs[0].convert(self.fmt, Overflow::Wrap, Rounding::Truncate).to_bits()
    }
    fn resources(&self) -> Resources {
        Resources::slices(Resources::ff_slices(self.fmt.word as u32) + 2)
    }
    fn reset(&mut self) {
        self.phase = 0;
        self.held = Fix::zero(self.fmt);
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.phase);
        out.push(self.held.to_bits());
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        self.phase = state_word("UpSample", src) % self.factor;
        self.held = Fix::from_bits(state_word("UpSample", src), self.fmt);
    }
}

/// Multiplication by a compile-time constant (System Generator `CMult`):
/// cheaper than a full multiplier — constants that are powers of two
/// reduce to wiring.
#[derive(Debug, Clone)]
pub struct CMult {
    constant: Fix,
    out: FixFmt,
}

impl CMult {
    /// Multiplies by `constant`, producing `out`-formatted results.
    pub fn new(constant: Fix, out: FixFmt) -> CMult {
        CMult { constant, out }
    }
}

impl Block for CMult {
    fn kind(&self) -> &'static str {
        "CMult"
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.out
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = inputs[0].mul_full(&self.constant).convert(
            self.out,
            Overflow::Wrap,
            Rounding::Truncate,
        );
    }
    fn resources(&self) -> Resources {
        let raw = self.constant.raw().unsigned_abs();
        if raw.is_power_of_two() || raw == 0 {
            Resources::ZERO // wiring (a shift)
        } else {
            // Shift-add network: one adder per set bit beyond the first.
            let adders = (raw.count_ones() - 1).max(1);
            Resources::slices(adders * Resources::adder_slices(self.out.word as u32))
        }
    }
}

/// Sign detector (System Generator `Threshold`): outputs 1 for negative
/// inputs, 0 otherwise.
#[derive(Debug, Clone)]
pub struct Threshold;

impl Block for Threshold {
    fn kind(&self) -> &'static str {
        "Threshold"
    }
    fn inputs(&self) -> usize {
        1
    }
    fn outputs(&self) -> usize {
        1
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        FixFmt::BOOL
    }
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = bit(inputs[0].is_negative());
    }
}

/// A dual-port synchronous RAM: port A read/write, port B read-only.
///
/// Inputs: 0 = addr A, 1 = write data A, 2 = write enable A, 3 = addr B.
/// Outputs: 0 = data A (registered), 1 = data B (registered).
#[derive(Debug, Clone)]
pub struct DualPortRam {
    fmt: FixFmt,
    data: Vec<Fix>,
    reg_a: Fix,
    reg_b: Fix,
}

impl DualPortRam {
    /// A RAM of `words` entries.
    pub fn new(fmt: FixFmt, words: usize) -> DualPortRam {
        DualPortRam {
            fmt,
            data: vec![Fix::zero(fmt); words],
            reg_a: Fix::zero(fmt),
            reg_b: Fix::zero(fmt),
        }
    }
}

impl Block for DualPortRam {
    fn kind(&self) -> &'static str {
        "DualPortRam"
    }
    fn inputs(&self) -> usize {
        4
    }
    fn outputs(&self) -> usize {
        2
    }
    fn output_fmt(&self, _: usize) -> FixFmt {
        self.fmt
    }
    fn eval(&self, _inputs: &[Fix], outputs: &mut [Fix]) {
        outputs[0] = self.reg_a;
        outputs[1] = self.reg_b;
    }
    fn clock(&mut self, inputs: &[Fix]) {
        let n = self.data.len().max(1);
        let addr_a = (inputs[0].raw().max(0) as usize) % n;
        let addr_b = (inputs[3].raw().max(0) as usize) % n;
        if bool_of(&inputs[2]) {
            self.data[addr_a] = inputs[1].convert(self.fmt, Overflow::Wrap, Rounding::Truncate);
        }
        self.reg_a = self.data[addr_a];
        self.reg_b = self.data[addr_b];
    }
    fn is_combinational(&self) -> bool {
        false
    }
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        if self.data.is_empty() {
            return true;
        }
        let n = self.data.len();
        let addr_a = (inputs[0].raw().max(0) as usize) % n;
        let addr_b = (inputs[3].raw().max(0) as usize) % n;
        if bool_of(&inputs[2])
            && self.data[addr_a].to_bits()
                != inputs[1].convert(self.fmt, Overflow::Wrap, Rounding::Truncate).to_bits()
        {
            return false;
        }
        self.reg_a.to_bits() == self.data[addr_a].to_bits()
            && self.reg_b.to_bits() == self.data[addr_b].to_bits()
    }
    fn resources(&self) -> Resources {
        let bits = self.data.len() as u32 * self.fmt.word as u32;
        Resources { slices: 4, brams: bits.div_ceil(18 * 1024).max(1), mult18s: 0 }
    }
    fn reset(&mut self) {
        for v in &mut self.data {
            *v = Fix::zero(self.fmt);
        }
        self.reg_a = Fix::zero(self.fmt);
        self.reg_b = Fix::zero(self.fmt);
    }
    fn save_state(&self, out: &mut Vec<u64>) {
        out.extend(self.data.iter().map(Fix::to_bits));
        out.push(self.reg_a.to_bits());
        out.push(self.reg_b.to_bits());
    }
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        for v in &mut self.data {
            *v = Fix::from_bits(state_word("DualPortRam", src), self.fmt);
        }
        self.reg_a = Fix::from_bits(state_word("DualPortRam", src), self.fmt);
        self.reg_b = Fix::from_bits(state_word("DualPortRam", src), self.fmt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    const I16: FixFmt = FixFmt::INT16;

    #[test]
    fn downsample_keeps_every_nth() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let d = g.add("ds", DownSample::new(I16, 3));
        g.wire(x, d, 0).unwrap();
        g.gateway_out("y", d, 0);
        g.compile().unwrap();
        let mut seen = Vec::new();
        for i in 1..=7 {
            g.set_input("x", Fix::from_int(i, I16)).unwrap();
            g.step();
            seen.push(g.value(d, 0).raw());
        }
        // Held values: sample 1 latched at end of cycle 1, 4 at cycle 4...
        assert_eq!(seen, vec![0, 1, 1, 1, 4, 4, 4]);
    }

    #[test]
    fn upsample_holds_each_sample() {
        let mut u = UpSample::new(I16, 2);
        let mut out = [Fix::zero(I16), Fix::zero(FixFmt::BOOL)];
        u.clock(&[Fix::from_int(9, I16)]);
        u.eval(&[], &mut out);
        assert_eq!(out[0].raw(), 9);
        u.clock(&[Fix::from_int(100, I16)]); // phase 1: ignored
        u.eval(&[], &mut out);
        assert_eq!(out[0].raw(), 9, "held through the up-sample period");
        u.clock(&[Fix::from_int(11, I16)]); // phase 0 again: latched
        u.eval(&[], &mut out);
        assert_eq!(out[0].raw(), 11);
    }

    #[test]
    fn cmult_multiplies_by_constant() {
        let c = CMult::new(Fix::from_int(-3, I16), FixFmt::INT32);
        let mut out = [Fix::zero(FixFmt::INT32)];
        c.eval(&[Fix::from_int(7, I16)], &mut out);
        assert_eq!(out[0].raw(), -21);
    }

    #[test]
    fn cmult_power_of_two_is_free() {
        let free = CMult::new(Fix::from_int(8, I16), I16);
        assert_eq!(free.resources(), Resources::ZERO);
        let costly = CMult::new(Fix::from_int(7, I16), I16);
        assert!(costly.resources().slices > 0);
    }

    #[test]
    fn threshold_is_cordic_direction_bit() {
        let t = Threshold;
        let mut out = [Fix::zero(FixFmt::BOOL)];
        t.eval(&[Fix::from_int(-1, I16)], &mut out);
        assert!(!out[0].is_zero());
        t.eval(&[Fix::from_int(0, I16)], &mut out);
        assert!(out[0].is_zero());
    }

    #[test]
    fn dual_port_ram_independent_reads() {
        let mut ram = DualPortRam::new(I16, 8);
        let addr = |a: i64| Fix::from_int(a, FixFmt::unsigned(3, 0));
        let on = crate::block::bit(true);
        let off = crate::block::bit(false);
        ram.clock(&[addr(2), Fix::from_int(42, I16), on, addr(2)]);
        let mut out = [Fix::zero(I16), Fix::zero(I16)];
        ram.eval(&[], &mut out);
        assert_eq!(out[0].raw(), 42, "port A write-first");
        assert_eq!(out[1].raw(), 42, "port B sees the new value");
        ram.clock(&[addr(5), Fix::zero(I16), off, addr(2)]);
        ram.eval(&[], &mut out);
        assert_eq!(out[0].raw(), 0);
        assert_eq!(out[1].raw(), 42);
    }
}
