//! The standard block library — the analog of the System Generator
//! blockset the paper's designs are assembled from.

pub mod arith;
pub mod logic;
pub mod rate;
pub mod seq;
pub mod tmr;

pub use arith::{AbsVal, AddSub, AddSubOp, Constant, Convert, Mult, Negate, Shift, ShiftDir};
pub use logic::{Concat, Logical, LogicalOp, Mux, RelOp, Relational, Slice};
pub use rate::{CMult, DownSample, DualPortRam, Threshold, UpSample};
pub use seq::{Accumulator, Counter, Delay, Register, Rom, SinglePortRam, SyncFifo};
pub use tmr::Tmr;
