//! The block graph and its cycle-accurate scheduler.
//!
//! A [`Graph`] is the analog of a System Generator design sheet: blocks
//! wired port-to-port, with `Gateway In` / `Gateway Out` markers forming
//! the boundary to the rest of the system (in the paper, the MicroBlaze
//! Simulink block drives these gateways from the FSL models).
//!
//! Scheduling is the standard synchronous-circuit two-phase step: a
//! topological pass settles all combinational logic, then every
//! sequential block latches. Feedback is legal exactly when it passes
//! through a sequential block, and a purely combinational cycle is
//! rejected at compile time.
//!
//! [`Graph::compile`] lowers the design into a flat execution plan (one
//! contiguous value array plus resolved source indices) so the per-cycle
//! cost is a linear scan — this is what makes the high-level simulation
//! an order of magnitude faster per cycle than event-driven RTL.

use crate::block::Block;
use crate::fix::{Fix, FixFmt, Overflow, Rounding};
use crate::resource::Resources;
use std::collections::BTreeMap;
use std::fmt;

/// Handle to a node in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

/// Resolved handle to a `Gateway In` (see [`Graph::input_handle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputHandle(usize);

/// Resolved handle to a `Gateway Out` (see [`Graph::output_handle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputHandle(usize);

/// Structural errors detected when compiling a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An input port has no driver.
    UnconnectedInput {
        /// The node with the open port.
        node: String,
        /// The open port index.
        port: usize,
    },
    /// A cycle exists through combinational blocks only.
    CombinationalCycle {
        /// Names of the nodes on the cycle.
        nodes: Vec<String>,
    },
    /// A port index out of range was used in `connect`.
    BadPort {
        /// Description of the offending connection.
        what: String,
    },
    /// Two drivers for one input port.
    DoubleDrive {
        /// The node with the conflicting port.
        node: String,
        /// The port index.
        port: usize,
    },
    /// A named gateway was not found.
    NoSuchGateway {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnconnectedInput { node, port } => {
                write!(f, "input port {port} of `{node}` is not connected")
            }
            GraphError::CombinationalCycle { nodes } => {
                write!(f, "combinational cycle through: {}", nodes.join(" -> "))
            }
            GraphError::BadPort { what } => write!(f, "bad port: {what}"),
            GraphError::DoubleDrive { node, port } => {
                write!(f, "input port {port} of `{node}` has two drivers")
            }
            GraphError::NoSuchGateway { name } => write!(f, "no gateway named `{name}`"),
        }
    }
}

impl std::error::Error for GraphError {}

enum Kind {
    Block(Box<dyn Block>),
    /// Gateway In: a value set from outside before each step.
    Input {
        fmt: FixFmt,
        value: Fix,
    },
}

struct Node {
    kind: Kind,
    name: String,
    /// Driver of each input port.
    sources: Vec<Option<(NodeId, usize)>>,
    /// Offset of this node's outputs in the flat value array.
    val_off: u32,
    /// Number of outputs.
    val_len: u32,
}

impl Node {
    fn outputs(&self) -> usize {
        self.val_len as usize
    }

    fn is_combinational(&self) -> bool {
        match &self.kind {
            Kind::Block(b) => b.is_combinational(),
            Kind::Input { .. } => false,
        }
    }
}

/// A complete snapshot of a compiled design's simulation state, as raw
/// `u64` words (see [`Graph::save_state`]). The shape is only meaningful
/// against the same compiled design; restoring into a different design
/// panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphState {
    /// The design's cycle counter.
    pub cycle: u64,
    /// Every output-port value, flat, as [`Fix::to_bits`] words.
    pub values: Vec<u64>,
    /// Concatenated per-node state: gateway-input values and each
    /// block's [`Block::save_state`] stream, in node order.
    pub block_words: Vec<u64>,
    /// Words of `block_words` belonging to each node, node order. The
    /// explicit framing keeps one node's restore from desynchronizing
    /// every node after it when a fault campaign flips a length or
    /// counter word inside `block_words` (see [`Graph::load_state`]).
    pub spans: Vec<u32>,
}

/// A synchronous block design, stepped one clock cycle at a time.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// All output-port values, flat (indexed via `Node::val_off`).
    values: Vec<Fix>,
    /// Gateway-out registry: name → flat value index.
    outputs: BTreeMap<String, usize>,
    /// Gateway-in registry: name → node.
    inputs: BTreeMap<String, NodeId>,
    /// Topological order of evaluation (all nodes).
    schedule: Vec<u32>,
    /// Sequential nodes to clock each cycle.
    seq_nodes: Vec<u32>,
    /// Resolved flat source indices, per node, contiguous.
    plan_src: Vec<u32>,
    /// Range of `plan_src` per node.
    plan_range: Vec<(u32, u32)>,
    compiled: bool,
    cycle: u64,
    /// Scratch buffer reused each step to avoid per-cycle allocation.
    scratch: Vec<Fix>,
    /// Scope probes: (name, flat value index, recorded samples).
    probes: Vec<(String, usize, Vec<Fix>)>,
    /// Switching-activity measurement, when enabled.
    activity: Option<Activity>,
}

/// Measured switching activity of a design (see
/// [`Graph::enable_activity`]): how many output-port values changed,
/// per node and in total, over the observed cycles. Drives the
/// activity factor of the domain-specific hardware energy model in
/// place of its default assumption.
#[derive(Debug, Default, Clone)]
struct Activity {
    /// Every port value as of the previous observed cycle.
    prev: Vec<Fix>,
    /// Value changes per node.
    node_toggles: Vec<u64>,
    /// Value changes across the whole design.
    toggles: u64,
    /// Observed cycles.
    cycles: u64,
}

impl Graph {
    /// An empty design.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Adds a block; returns its handle.
    pub fn add(&mut self, name: impl Into<String>, block: impl Block + 'static) -> NodeId {
        self.add_boxed(name.into(), Box::new(block))
    }

    /// Adds an already-boxed block.
    pub fn add_boxed(&mut self, name: String, block: Box<dyn Block>) -> NodeId {
        let id = NodeId(self.nodes.len());
        let (n_in, n_out) = (block.inputs(), block.outputs());
        let val_off = self.values.len() as u32;
        for p in 0..n_out {
            self.values.push(Fix::zero(block.output_fmt(p)));
        }
        self.nodes.push(Node {
            kind: Kind::Block(block),
            name,
            sources: vec![None; n_in],
            val_off,
            val_len: n_out as u32,
        });
        self.compiled = false;
        id
    }

    /// Adds a `Gateway In`: an externally driven input of the design.
    pub fn gateway_in(&mut self, name: impl Into<String>, fmt: FixFmt) -> NodeId {
        let name = name.into();
        let id = NodeId(self.nodes.len());
        let val_off = self.values.len() as u32;
        self.values.push(Fix::zero(fmt));
        self.nodes.push(Node {
            kind: Kind::Input { fmt, value: Fix::zero(fmt) },
            name: name.clone(),
            sources: Vec::new(),
            val_off,
            val_len: 1,
        });
        self.inputs.insert(name, id);
        self.compiled = false;
        id
    }

    /// Declares a `Gateway Out`: names an existing port as a design output.
    ///
    /// # Panics
    /// Panics if the port does not exist.
    pub fn gateway_out(&mut self, name: impl Into<String>, from: NodeId, port: usize) {
        let node = &self.nodes[from.0];
        assert!(port < node.outputs(), "`{}` has no output {port}", node.name);
        self.outputs.insert(name.into(), node.val_off as usize + port);
    }

    /// Connects output `from_port` of `from` to input `to_port` of `to`.
    pub fn connect(
        &mut self,
        from: NodeId,
        from_port: usize,
        to: NodeId,
        to_port: usize,
    ) -> Result<(), GraphError> {
        if from_port >= self.nodes[from.0].outputs() {
            return Err(GraphError::BadPort {
                what: format!("`{}` has no output {from_port}", self.nodes[from.0].name),
            });
        }
        let node = &mut self.nodes[to.0];
        let Some(slot) = node.sources.get_mut(to_port) else {
            return Err(GraphError::BadPort {
                what: format!("`{}` has no input {to_port}", node.name),
            });
        };
        if slot.is_some() {
            return Err(GraphError::DoubleDrive { node: node.name.clone(), port: to_port });
        }
        *slot = Some((from, from_port));
        self.compiled = false;
        Ok(())
    }

    /// Convenience: connect port 0 → port `to_port`.
    pub fn wire(&mut self, from: NodeId, to: NodeId, to_port: usize) -> Result<(), GraphError> {
        self.connect(from, 0, to, to_port)
    }

    /// Checks structure and lowers the design into the flat execution
    /// plan.
    pub fn compile(&mut self) -> Result<(), GraphError> {
        // Every input port must be driven.
        for node in &self.nodes {
            for (port, src) in node.sources.iter().enumerate() {
                if src.is_none() {
                    return Err(GraphError::UnconnectedInput { node: node.name.clone(), port });
                }
            }
        }
        // Kahn topological sort where only edges into combinational nodes
        // constrain the order.
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.is_combinational() {
                continue;
            }
            for src in node.sources.iter().flatten() {
                out_edges[src.0 .0].push(i);
                indegree[i] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(i as u32);
            for &j in &out_edges[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(j);
                }
            }
        }
        if order.len() != n {
            let cyclic =
                (0..n).filter(|&i| indegree[i] > 0).map(|i| self.nodes[i].name.clone()).collect();
            return Err(GraphError::CombinationalCycle { nodes: cyclic });
        }
        // Flatten the source plan.
        self.plan_src.clear();
        self.plan_range.clear();
        for node in &self.nodes {
            let start = self.plan_src.len() as u32;
            for src in node.sources.iter().flatten() {
                let flat = self.nodes[src.0 .0].val_off + src.1 as u32;
                self.plan_src.push(flat);
            }
            self.plan_range.push((start, self.plan_src.len() as u32));
        }
        self.seq_nodes =
            (0..n as u32).filter(|&i| !self.nodes[i as usize].is_combinational()).collect();
        self.schedule = order;
        self.compiled = true;
        Ok(())
    }

    /// Resolves a `Gateway In` name to a handle for per-cycle use in hot
    /// loops (the co-simulation engine resolves once at attach time).
    pub fn input_handle(&self, name: &str) -> Result<InputHandle, GraphError> {
        let id = *self
            .inputs
            .get(name)
            .ok_or_else(|| GraphError::NoSuchGateway { name: name.into() })?;
        Ok(InputHandle(id.0))
    }

    /// Resolves a `Gateway Out` name to a handle.
    pub fn output_handle(&self, name: &str) -> Result<OutputHandle, GraphError> {
        let flat = *self
            .outputs
            .get(name)
            .ok_or_else(|| GraphError::NoSuchGateway { name: name.into() })?;
        Ok(OutputHandle(flat))
    }

    /// Sets a `Gateway In` through a resolved handle (no name lookup).
    #[inline]
    pub fn set_input_fast(&mut self, handle: InputHandle, value: Fix) {
        match &mut self.nodes[handle.0].kind {
            Kind::Input { fmt, value: slot } => {
                *slot = value.convert(*fmt, Overflow::Wrap, Rounding::Truncate);
            }
            Kind::Block(_) => unreachable!("gateway registry points at a block"),
        }
    }

    /// Reads a `Gateway Out` through a resolved handle (no name lookup).
    #[inline]
    pub fn output_fast(&self, handle: OutputHandle) -> Fix {
        self.values[handle.0]
    }

    /// Sets the value of a `Gateway In` for the upcoming cycle.
    pub fn set_input(&mut self, name: &str, value: Fix) -> Result<(), GraphError> {
        let handle = self.input_handle(name)?;
        self.set_input_fast(handle, value);
        Ok(())
    }

    /// Reads a `Gateway Out` value as settled by the last `step`.
    pub fn output(&self, name: &str) -> Result<Fix, GraphError> {
        Ok(self.output_fast(self.output_handle(name)?))
    }

    /// Reads any port's settled value (probing, for tests and tools).
    pub fn value(&self, node: NodeId, port: usize) -> Fix {
        self.values[self.nodes[node.0].val_off as usize + port]
    }

    /// Advances the design by one clock cycle.
    ///
    /// # Panics
    /// Panics if the graph was modified since the last successful
    /// [`Graph::compile`].
    pub fn step(&mut self) {
        assert!(self.compiled, "Graph::compile must succeed before step");
        let Graph { nodes, values, schedule, seq_nodes, plan_src, plan_range, scratch, .. } = self;
        // Phase 1: settle combinational logic in topological order.
        for &i in schedule.iter() {
            let i = i as usize;
            let node = &nodes[i];
            let (s, e) = plan_range[i];
            scratch.clear();
            for &src in &plan_src[s as usize..e as usize] {
                scratch.push(values[src as usize]);
            }
            let off = node.val_off as usize;
            match &node.kind {
                Kind::Block(b) => b.eval(scratch, &mut values[off..off + node.val_len as usize]),
                Kind::Input { value, .. } => values[off] = *value,
            }
        }
        // Phase 2: clock edge — every sequential block latches from the
        // settled values.
        for &i in seq_nodes.iter() {
            let i = i as usize;
            let (s, e) = plan_range[i];
            scratch.clear();
            for &src in &plan_src[s as usize..e as usize] {
                scratch.push(values[src as usize]);
            }
            if let Kind::Block(b) = &mut nodes[i].kind {
                b.clock(scratch);
            }
        }
        if let Some(act) = &mut self.activity {
            for (i, node) in self.nodes.iter().enumerate() {
                let off = node.val_off as usize;
                for s in off..off + node.val_len as usize {
                    if self.values[s].to_bits() != act.prev[s].to_bits() {
                        act.node_toggles[i] += 1;
                        act.toggles += 1;
                    }
                    act.prev[s] = self.values[s];
                }
            }
            act.cycles += 1;
        }
        for (_, idx, samples) in &mut self.probes {
            samples.push(self.values[*idx]);
        }
        self.cycle += 1;
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// True when the compiled design is at a fixed point: every node's
    /// evaluate reproduces its settled output values from the settled
    /// source values, and every sequential block reports (via
    /// [`Block::is_quiescent`]) that a clock edge would leave its state
    /// bit-identical. By induction along the topological schedule, a
    /// [`Graph::step`] of a quiescent design changes nothing, and with
    /// the gateway inputs held constant the design stays quiescent for
    /// any number of further steps — the soundness condition for
    /// [`Graph::fast_forward`].
    ///
    /// Conservative: `false` only means quiescence could not be proven.
    ///
    /// # Panics
    /// Panics if the graph is not compiled.
    pub fn is_quiescent(&self) -> bool {
        assert!(self.compiled, "Graph::compile must succeed before is_quiescent");
        let mut ins: Vec<Fix> = Vec::new();
        let mut outs: Vec<Fix> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let (s, e) = self.plan_range[i];
            ins.clear();
            for &src in &self.plan_src[s as usize..e as usize] {
                ins.push(self.values[src as usize]);
            }
            let off = node.val_off as usize;
            let len = node.val_len as usize;
            match &node.kind {
                Kind::Block(b) => {
                    outs.clear();
                    outs.resize(len, Fix::zero(FixFmt::BOOL));
                    b.eval(&ins, &mut outs);
                    let same = outs
                        .iter()
                        .zip(&self.values[off..off + len])
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    if !same {
                        return false;
                    }
                    if !b.is_combinational() && !b.is_quiescent(&ins) {
                        return false;
                    }
                }
                Kind::Input { value, .. } => {
                    if value.to_bits() != self.values[off].to_bits() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Advances the cycle counter by `n` cycles in one jump, exactly as
    /// if [`Graph::step`] had run `n` times on a quiescent design: port
    /// values and block state are untouched and the activity
    /// measurement accrues `n` toggle-free cycles. The caller must have
    /// established [`Graph::is_quiescent`] and must keep the gateway
    /// inputs unchanged; scope probes must not be attached (they record
    /// one sample per stepped cycle — see [`Graph::has_probes`]).
    ///
    /// # Panics
    /// Panics if the graph is not compiled.
    pub fn fast_forward(&mut self, n: u64) {
        assert!(self.compiled, "Graph::compile must succeed before fast_forward");
        debug_assert!(self.probes.is_empty(), "fast_forward would skip probe samples");
        if let Some(act) = &mut self.activity {
            act.cycles += n;
        }
        self.cycle += n;
    }

    /// True when scope probes are attached. Probes record one sample
    /// per stepped cycle, so a probed design must not be fast-forwarded.
    pub fn has_probes(&self) -> bool {
        !self.probes.is_empty()
    }

    /// Total cycles simulated.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the design has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total faults detected by self-checking blocks in the design (TMR
    /// voter miscompares — see [`Block::detected_faults`]). Monotone;
    /// recovery supervisors poll it for deltas.
    pub fn detected_faults(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                Kind::Block(b) => b.detected_faults(),
                Kind::Input { .. } => 0,
            })
            .sum()
    }

    /// Total estimated resources of every block in the design.
    pub fn resources(&self) -> Resources {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                Kind::Block(b) => b.resources(),
                Kind::Input { .. } => Resources::ZERO,
            })
            .sum()
    }

    /// Resets all sequential state, port values and the cycle counter.
    pub fn reset(&mut self) {
        for node in &mut self.nodes {
            match &mut node.kind {
                Kind::Block(b) => b.reset(),
                Kind::Input { fmt, value } => *value = Fix::zero(*fmt),
            }
        }
        for v in &mut self.values {
            *v = Fix::zero(v.fmt());
        }
        self.cycle = 0;
        if self.activity.is_some() {
            self.enable_activity();
        }
    }

    /// Captures the design's complete simulation state: the cycle
    /// counter, every settled port value and the sequential state of
    /// every block (via [`Block::save_state`]). Probes and activity
    /// measurement are observers, not design state, and are excluded.
    pub fn save_state(&self) -> GraphState {
        let mut block_words = Vec::new();
        let mut spans = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let before = block_words.len();
            match &node.kind {
                Kind::Block(b) => b.save_state(&mut block_words),
                Kind::Input { value, .. } => block_words.push(value.to_bits()),
            }
            spans.push((block_words.len() - before) as u32);
        }
        GraphState {
            cycle: self.cycle,
            values: self.values.iter().map(Fix::to_bits).collect(),
            block_words,
            spans,
        }
    }

    /// Restores a snapshot taken by [`Graph::save_state`] on a graph of
    /// the *same compiled design*.
    ///
    /// Each node restores only from its own recorded span. A block whose
    /// state words were perturbed (fault injection flips `block_words`
    /// bits directly) may consume fewer or more words than the span
    /// holds; the frame boundary still holds, so the damage cannot cascade
    /// into neighboring nodes — reads past the span yield zero words and
    /// leftover words are dropped, both modeling the fixed-size physical
    /// state the span frames.
    ///
    /// # Panics
    /// Panics if the snapshot's shape does not match this design (wrong
    /// value count, node count, or inconsistent span framing).
    pub fn load_state(&mut self, state: &GraphState) {
        assert_eq!(state.values.len(), self.values.len(), "snapshot/design value-count mismatch");
        assert_eq!(state.spans.len(), self.nodes.len(), "snapshot/design node-count mismatch");
        assert_eq!(
            state.spans.iter().map(|&n| n as usize).sum::<usize>(),
            state.block_words.len(),
            "snapshot span framing inconsistent"
        );
        self.cycle = state.cycle;
        for (v, &bits) in self.values.iter_mut().zip(&state.values) {
            *v = Fix::from_bits(bits, v.fmt());
        }
        let mut off = 0usize;
        for (node, &span) in self.nodes.iter_mut().zip(&state.spans) {
            let words = &state.block_words[off..off + span as usize];
            off += span as usize;
            let mut src = words.iter().copied().chain(std::iter::repeat(0));
            match &mut node.kind {
                Kind::Block(b) => b.load_state(&mut src),
                Kind::Input { fmt, value } => {
                    let bits = src.next().expect("snapshot underflow at gateway input");
                    *value = Fix::from_bits(bits, *fmt);
                }
            }
        }
    }

    /// Starts measuring switching activity: from the next [`Graph::step`]
    /// on, every settled port value is compared against the previous
    /// cycle and changes are counted per node. The measured factor
    /// replaces the hardware energy model's default activity assumption.
    /// Calling again restarts the measurement.
    pub fn enable_activity(&mut self) {
        self.activity = Some(Activity {
            prev: self.values.clone(),
            node_toggles: vec![0; self.nodes.len()],
            toggles: 0,
            cycles: 0,
        });
    }

    /// The measured activity factor — the fraction of port values that
    /// toggled in an average observed cycle. `None` until
    /// [`Graph::enable_activity`] has been called and at least one cycle
    /// observed.
    pub fn activity_factor(&self) -> Option<f64> {
        let act = self.activity.as_ref()?;
        if act.cycles == 0 || self.values.is_empty() {
            return None;
        }
        Some(act.toggles as f64 / (self.values.len() as u64 * act.cycles) as f64)
    }

    /// True while switching activity is being measured.
    pub fn activity_enabled(&self) -> bool {
        self.activity.is_some()
    }

    /// Cumulative output-port toggles since [`Graph::enable_activity`];
    /// 0 when measurement is off. Samplers take deltas of this to get
    /// per-cycle switching activity.
    pub fn total_toggles(&self) -> u64 {
        self.activity.as_ref().map_or(0, |a| a.toggles)
    }

    /// Per-node toggle counts from the activity measurement, in node
    /// insertion order: `(name, toggles)`. Empty until enabled.
    pub fn node_activity(&self) -> Vec<(&str, u64)> {
        match &self.activity {
            Some(act) => self
                .nodes
                .iter()
                .zip(&act.node_toggles)
                .map(|(n, &t)| (n.name.as_str(), t))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Attaches a scope probe (the Simulink scope analog): the settled
    /// value of the port is recorded every cycle from now on.
    pub fn add_probe(&mut self, name: impl Into<String>, node: NodeId, port: usize) {
        let idx = self.nodes[node.0].val_off as usize + port;
        self.probes.push((name.into(), idx, Vec::new()));
    }

    /// Samples recorded by a named probe, one per simulated cycle.
    pub fn probe_samples(&self, name: &str) -> Option<&[Fix]> {
        self.probes.iter().find(|(n, _, _)| n == name).map(|(_, _, s)| s.as_slice())
    }

    /// Renders every probe's samples as CSV (`cycle,probe1,probe2,...`),
    /// for plotting with external tools.
    pub fn probes_to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("cycle");
        for (name, _, _) in &self.probes {
            let _ = write!(out, ",{name}");
        }
        out.push('\n');
        let rows = self.probes.iter().map(|(_, _, s)| s.len()).max().unwrap_or(0);
        for row in 0..rows {
            let _ = write!(out, "{row}");
            for (_, _, samples) in &self.probes {
                match samples.get(row) {
                    Some(v) => {
                        let _ = write!(out, ",{}", v.to_f64());
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Names of all gateway inputs.
    pub fn input_names(&self) -> impl Iterator<Item = &str> {
        self.inputs.keys().map(String::as_str)
    }

    /// Names of all gateway outputs.
    pub fn output_names(&self) -> impl Iterator<Item = &str> {
        self.outputs.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{AddSub, AddSubOp, Constant, Delay};

    const I16: FixFmt = FixFmt::INT16;

    #[test]
    fn unconnected_input_rejected() {
        let mut g = Graph::new();
        let _ = g.add("add", AddSub::new(AddSubOp::Add, I16));
        let err = g.compile().unwrap_err();
        assert!(matches!(err, GraphError::UnconnectedInput { .. }));
    }

    #[test]
    fn double_drive_rejected() {
        let mut g = Graph::new();
        let c = g.add("c", Constant::int(1, I16));
        let d = g.add("d", Delay::new(I16, 1));
        g.wire(c, d, 0).unwrap();
        let err = g.wire(c, d, 0).unwrap_err();
        assert!(matches!(err, GraphError::DoubleDrive { .. }));
    }

    #[test]
    fn bad_ports_rejected() {
        let mut g = Graph::new();
        let c = g.add("c", Constant::int(1, I16));
        let d = g.add("d", Delay::new(I16, 1));
        assert!(matches!(g.connect(c, 5, d, 0), Err(GraphError::BadPort { .. })));
        assert!(matches!(g.connect(c, 0, d, 9), Err(GraphError::BadPort { .. })));
    }

    #[test]
    fn unknown_gateway_errors() {
        let g = Graph::new();
        assert!(matches!(g.output("nope"), Err(GraphError::NoSuchGateway { .. })));
        assert!(g.input_handle("nope").is_err());
    }

    #[test]
    fn reset_clears_state_and_cycle_count() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let d = g.add("d", Delay::new(I16, 1));
        g.wire(x, d, 0).unwrap();
        g.gateway_out("y", d, 0);
        g.compile().unwrap();
        g.set_input("x", Fix::from_int(9, I16)).unwrap();
        g.run(3);
        assert_eq!(g.cycles(), 3);
        assert_eq!(g.output("y").unwrap().raw(), 9);
        g.reset();
        assert_eq!(g.cycles(), 0);
        assert_eq!(g.output("y").unwrap().raw(), 0);
        g.step();
        assert_eq!(g.output("y").unwrap().raw(), 0, "input was reset too");
    }

    #[test]
    fn probes_record_per_cycle_values() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let d = g.add("d", Delay::new(I16, 1));
        g.wire(x, d, 0).unwrap();
        g.add_probe("delayed", d, 0);
        g.compile().unwrap();
        for i in 1..=4 {
            g.set_input("x", Fix::from_int(i, I16)).unwrap();
            g.step();
        }
        let samples: Vec<i64> =
            g.probe_samples("delayed").unwrap().iter().map(|v| v.raw()).collect();
        assert_eq!(samples, vec![0, 1, 2, 3]);
        let csv = g.probes_to_csv();
        assert!(csv.starts_with("cycle,delayed\n"));
        assert!(csv.contains("3,3"));
        assert!(g.probe_samples("missing").is_none());
    }

    /// Round-trip: render the probes to CSV, parse the CSV back, and
    /// recover exactly the recorded samples — the contract external
    /// plotting tools rely on.
    #[test]
    fn probe_csv_round_trips() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let d1 = g.add("d1", Delay::new(I16, 1));
        let d2 = g.add("d2", Delay::new(I16, 2));
        g.wire(x, d1, 0).unwrap();
        g.wire(x, d2, 0).unwrap();
        g.add_probe("one", d1, 0);
        g.add_probe("two", d2, 0);
        g.compile().unwrap();
        for i in 1..=6 {
            g.set_input("x", Fix::from_int(i * 7 - 20, I16)).unwrap();
            g.step();
        }
        let csv = g.probes_to_csv();
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(header, ["cycle", "one", "two"]);
        let mut parsed: Vec<Vec<f64>> = Vec::new();
        for line in lines {
            parsed.push(line.split(',').map(|f| f.parse().unwrap()).collect());
        }
        assert_eq!(parsed.len(), 6, "one row per simulated cycle");
        for (name, col) in [("one", 1usize), ("two", 2)] {
            let samples = g.probe_samples(name).unwrap();
            for (row, s) in samples.iter().enumerate() {
                assert_eq!(parsed[row][0] as usize, row, "cycle column");
                assert_eq!(parsed[row][col], s.to_f64(), "{name} row {row}");
            }
        }
    }

    /// Switching-activity measurement: a design where exactly half the
    /// port values toggle every cycle measures an activity factor of
    /// one half, and a quiescent design measures zero.
    #[test]
    fn activity_factor_measures_toggle_rate() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let d = g.add("d", Delay::new(I16, 1));
        g.wire(x, d, 0).unwrap();
        g.gateway_out("y", d, 0);
        g.compile().unwrap();
        g.enable_activity();
        assert_eq!(g.activity_factor(), None, "no cycles observed yet");
        // Toggle the input each cycle: both ports (gateway and delay
        // output) change every cycle after the pipeline fills.
        for i in 0..100 {
            g.set_input("x", Fix::from_int(i % 2, I16)).unwrap();
            g.step();
        }
        let f = g.activity_factor().unwrap();
        assert!(f > 0.9, "everything toggles nearly every cycle: {f}");
        let toggles: u64 = g.node_activity().iter().map(|(_, t)| t).sum();
        assert!(toggles > 150, "per-node counts back the factor: {toggles}");

        // A quiescent run measures zero.
        g.enable_activity();
        g.set_input("x", Fix::from_int(0, I16)).unwrap();
        g.run(50);
        let f = g.activity_factor().unwrap();
        assert!(f < 0.05, "held-constant design barely toggles: {f}");
    }

    /// Quiescence: a delay line driven by a held-constant input becomes
    /// quiescent once the line is saturated, and a fast-forward jump is
    /// then indistinguishable from stepping (state, outputs, cycle
    /// count, activity).
    #[test]
    fn quiescence_and_fast_forward_match_stepping() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let d = g.add("d", Delay::new(I16, 3));
        g.wire(x, d, 0).unwrap();
        g.gateway_out("y", d, 0);
        g.compile().unwrap();
        g.enable_activity();
        g.set_input("x", Fix::from_int(7, I16)).unwrap();
        g.step();
        assert!(!g.is_quiescent(), "delay line still filling");
        g.run(3);
        assert!(g.is_quiescent(), "saturated delay line is a fixed point");
        assert!(!g.has_probes());

        // Fast-forward 100 cycles, then verify a real step changes
        // nothing and the books match a stepped run.
        let before = g.save_state();
        g.fast_forward(100);
        assert_eq!(g.cycles(), 104);
        g.step();
        let after = g.save_state();
        assert_eq!(before.values, after.values, "quiescent values frozen");
        assert_eq!(before.block_words, after.block_words, "quiescent state frozen");
        assert_eq!(g.total_toggles(), {
            let mut h = Graph::new();
            let hx = h.gateway_in("x", I16);
            let hd = h.add("d", Delay::new(I16, 3));
            h.wire(hx, hd, 0).unwrap();
            h.gateway_out("y", hd, 0);
            h.compile().unwrap();
            h.enable_activity();
            h.set_input("x", Fix::from_int(7, I16)).unwrap();
            h.run(105);
            h.total_toggles()
        });

        // Changing the held input breaks quiescence.
        g.set_input("x", Fix::from_int(8, I16)).unwrap();
        assert!(!g.is_quiescent(), "changed gateway input is visible");
    }

    #[test]
    fn probe_blocks_fast_forward_eligibility() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let d = g.add("d", Delay::new(I16, 1));
        g.wire(x, d, 0).unwrap();
        g.add_probe("p", d, 0);
        g.compile().unwrap();
        assert!(g.has_probes());
    }

    #[test]
    fn handles_match_named_access() {
        let mut g = Graph::new();
        let x = g.gateway_in("x", I16);
        let d = g.add("d", Delay::new(I16, 1));
        g.wire(x, d, 0).unwrap();
        g.gateway_out("y", d, 0);
        g.compile().unwrap();
        let hx = g.input_handle("x").unwrap();
        let hy = g.output_handle("y").unwrap();
        g.set_input_fast(hx, Fix::from_int(5, I16));
        g.step();
        g.step();
        assert_eq!(g.output_fast(hy), g.output("y").unwrap());
        assert_eq!(g.output_fast(hy).raw(), 5);
    }
}
