//! FPGA resource estimates for hardware blocks.
//!
//! Each block reports the Virtex-II-Pro-era resources its low-level
//! implementation would occupy — the System Generator "resource estimator"
//! of §III-C. Counts are in slices (two 4-input LUTs + two flip-flops
//! each), 18 Kbit block RAMs, and embedded 18×18 multipliers.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// A resource bill: slices, block RAMs and embedded multipliers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Resources {
    /// Logic slices.
    pub slices: u32,
    /// 18 Kbit block RAMs.
    pub brams: u32,
    /// Embedded 18×18 multipliers.
    pub mult18s: u32,
}

impl Resources {
    /// No resources.
    pub const ZERO: Resources = Resources { slices: 0, brams: 0, mult18s: 0 };

    /// Only slices.
    pub const fn slices(n: u32) -> Resources {
        Resources { slices: n, brams: 0, mult18s: 0 }
    }

    /// Slices consumed by `bits` flip-flops (two per slice).
    ///
    /// Registers that follow arithmetic usually pack into the same slices,
    /// so callers may choose to report zero instead; this helper is for
    /// standalone registers.
    pub const fn ff_slices(bits: u32) -> u32 {
        bits.div_ceil(2)
    }

    /// Slices consumed by a `bits`-wide adder/subtractor (one bit of
    /// carry-chain per LUT, two LUTs per slice).
    pub const fn adder_slices(bits: u32) -> u32 {
        bits.div_ceil(2)
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            slices: self.slices + rhs.slices,
            brams: self.brams + rhs.brams,
            mult18s: self.mult18s + rhs.mult18s,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Mul<u32> for Resources {
    type Output = Resources;
    fn mul(self, n: u32) -> Resources {
        Resources { slices: self.slices * n, brams: self.brams * n, mult18s: self.mult18s * n }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources { slices: 10, brams: 1, mult18s: 2 };
        let b = Resources::slices(5);
        assert_eq!((a + b).slices, 15);
        assert_eq!((a * 3).mult18s, 6);
        let total: Resources = [a, b, Resources::ZERO].into_iter().sum();
        assert_eq!(total.slices, 15);
        assert_eq!(total.brams, 1);
    }

    #[test]
    fn sizing_helpers() {
        assert_eq!(Resources::ff_slices(16), 8);
        assert_eq!(Resources::ff_slices(17), 9);
        assert_eq!(Resources::adder_slices(32), 16);
        assert_eq!(Resources::adder_slices(1), 1);
    }
}
