//! The block abstraction of the high-level hardware simulator.
//!
//! A [`Block`] is the analog of one System Generator block: a synchronous
//! component with fixed-point input and output ports. Simulation is
//! two-phase per clock cycle, exactly like a discrete fixed-step Simulink
//! model of synchronous hardware:
//!
//! 1. **evaluate** — combinational propagation in topological order;
//!    sequential blocks present their *current* state on their outputs;
//! 2. **clock** — every sequential block latches its next state from the
//!    input values that the evaluate phase settled.

use crate::fix::{Fix, FixFmt};
use crate::resource::Resources;

/// One synchronous hardware block.
pub trait Block {
    /// Short type name for diagnostics ("AddSub", "Delay", ...).
    fn kind(&self) -> &'static str;

    /// Number of input ports.
    fn inputs(&self) -> usize;

    /// Number of output ports.
    fn outputs(&self) -> usize;

    /// The fixed-point format produced on each output port.
    fn output_fmt(&self, port: usize) -> FixFmt;

    /// Combinational evaluation: compute `outputs` from `inputs` and the
    /// block's current state. Must be side-effect free with respect to
    /// sequential state.
    fn eval(&self, inputs: &[Fix], outputs: &mut [Fix]);

    /// Rising clock edge: latch next state from the settled `inputs`.
    /// Combinational blocks keep the default no-op.
    fn clock(&mut self, inputs: &[Fix]) {
        let _ = inputs;
    }

    /// True when some output depends combinationally on some input.
    /// Registers/delays return `false`, which is what legalizes feedback
    /// loops through them.
    fn is_combinational(&self) -> bool {
        true
    }

    /// Estimated FPGA resources of the block's low-level implementation.
    fn resources(&self) -> Resources {
        Resources::ZERO
    }

    /// Quiescence hint for stall fast-forwarding: returns `true` only
    /// when, given the settled `inputs` of the current cycle, a clock
    /// edge would leave the block's sequential state (and therefore its
    /// outputs on every later evaluate) bit-identical. With every block
    /// of a design quiescent and every gateway input held constant, the
    /// design is a fixed point and whole stalled stretches can be
    /// skipped in one jump.
    ///
    /// The contract is *conservative*: `false` is always safe (the
    /// default, and correct for combinational blocks whose outputs the
    /// graph checks separately), while `true` must be exact — a block
    /// that claims quiescence and then changes state breaks
    /// cycle-accuracy.
    fn is_quiescent(&self, inputs: &[Fix]) -> bool {
        let _ = inputs;
        false
    }

    /// Resets sequential state to power-on values.
    fn reset(&mut self) {}

    /// Appends the block's sequential state to `out` as raw `u64` words
    /// (fixed-point values via [`Fix::to_bits`], counters verbatim,
    /// variable-length containers preceded by their length). The default
    /// is a no-op, correct for combinational blocks; every sequential
    /// block must override it together with [`Block::load_state`] so
    /// graph checkpoints capture it.
    fn save_state(&self, out: &mut Vec<u64>) {
        let _ = out;
    }

    /// Restores the state written by [`Block::save_state`], consuming the
    /// same number of words from the front of `src`.
    ///
    /// # Panics
    /// Implementations panic if `src` runs dry — a snapshot/graph
    /// mismatch is a caller bug, not a recoverable condition.
    fn load_state(&mut self, src: &mut dyn Iterator<Item = u64>) {
        let _ = src;
    }

    /// Cumulative count of faults the block has *detected* in itself —
    /// nonzero only for self-checking blocks (a TMR voter counts replica
    /// miscompares here). Recovery supervisors poll the graph total for
    /// deltas.
    fn detected_faults(&self) -> u64 {
        0
    }
}

/// Pulls one state word in a [`Block::load_state`] implementation,
/// panicking with the block kind on underflow.
pub fn state_word(kind: &str, src: &mut dyn Iterator<Item = u64>) -> u64 {
    src.next().unwrap_or_else(|| panic!("{kind}: snapshot underflow"))
}

/// Interprets a signal as a boolean (nonzero = true).
pub fn bool_of(x: &Fix) -> bool {
    !x.is_zero()
}

/// A one-bit signal value.
pub fn bit(v: bool) -> Fix {
    Fix::from_int(v as i64, FixFmt::BOOL)
}
