//! # softsim-resource — rapid resource estimation (§III-C of the paper)
//!
//! "Being able to rapidly obtain the hardware resource occupied by the
//! soft processor under different configurations is important for
//! identifying the most efficient partitioning of the applications." The
//! paper sums four contributions, which this crate reproduces:
//!
//! 1. the **processor and the two LMB interface controllers** — constants
//!    from the vendor data sheet ([`DataSheet`]);
//! 2. the **customized hardware peripherals** — per-block estimates from
//!    the block simulator (`softsim_blocks::Graph::resources`);
//! 3. the **communication interface** — per-FSL-channel constants;
//! 4. the **storage of the software program** — image size via the
//!    `mb-objdump` analog, rounded up to BRAMs.
//!
//! The "actual" numbers of Table I come instead from elaborating the RTL
//! model and counting primitives (`softsim_rtl::Primitives`); the tests
//! check estimate and actual stay within a few percent, mirroring the
//! estimated/actual columns of the paper.

#![warn(missing_docs)]

use softsim_blocks::Resources;
use softsim_isa::Image;

/// Data-sheet constants for the MB32 soft processor on Virtex-II Pro,
/// chosen to sit in the MicroBlaze v4 range the paper's Table I implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataSheet {
    /// Slices of the processor core.
    pub cpu_slices: u32,
    /// Embedded multipliers used by the core (`mul` support).
    pub cpu_mult18s: u32,
    /// Slices of one LMB interface controller.
    pub lmb_ctrl_slices: u32,
    /// Slices of one FSL channel (FIFO + handshake).
    pub fsl_channel_slices: u32,
    /// Additional slices to harden one FSL channel with a SEC-DED
    /// (39,33) codec: a 6-bit syndrome generator and corrector on each
    /// side of the FIFO plus the check-bit storage column.
    pub fsl_ecc_slices: u32,
}

impl Default for DataSheet {
    fn default() -> DataSheet {
        DataSheet::for_config(&softsim_isa::CpuConfig::default())
    }
}

/// Per-option slice costs (datasheet style): the base core plus each
/// optional unit.
const CPU_BASE_SLICES: u32 = 380;
const BARREL_SLICES: u32 = 80;
const MULTIPLIER_SLICES: u32 = 66;
const DIVIDER_SLICES: u32 = 120;

impl DataSheet {
    /// Datasheet numbers for a processor configuration: each optional
    /// unit (barrel shifter, multiplier, divider) adds its published
    /// cost, mirroring the MicroBlaze feature table.
    pub fn for_config(config: &softsim_isa::CpuConfig) -> DataSheet {
        let mut cpu_slices = CPU_BASE_SLICES;
        if config.barrel_shifter {
            cpu_slices += BARREL_SLICES;
        }
        if config.multiplier {
            cpu_slices += MULTIPLIER_SLICES;
        }
        if config.divider {
            cpu_slices += DIVIDER_SLICES;
        }
        DataSheet {
            cpu_slices,
            cpu_mult18s: if config.multiplier { 3 } else { 0 },
            lmb_ctrl_slices: 11,
            fsl_channel_slices: 37,
            fsl_ecc_slices: 41,
        }
    }
}

/// A complete system configuration to estimate.
#[derive(Debug, Clone)]
pub struct SystemConfig<'a> {
    /// The compiled software program (sized for BRAM storage).
    pub program: &'a Image,
    /// Resources of the customized hardware peripheral, from the block
    /// simulator's estimator (zero for pure-software configurations).
    pub peripheral: Resources,
    /// Number of FSL channel *pairs* connecting processor and peripheral.
    pub fsl_channels: u32,
}

/// Estimates the resources of a full system configuration.
pub fn estimate_system(cfg: &SystemConfig, sheet: &DataSheet) -> Resources {
    let mut total = Resources {
        slices: sheet.cpu_slices + 2 * sheet.lmb_ctrl_slices,
        brams: cfg.program.bram_count(),
        mult18s: sheet.cpu_mult18s,
    };
    total.slices += cfg.fsl_channels * sheet.fsl_channel_slices;
    total += cfg.peripheral;
    total
}

/// Estimates a system whose FSL channels carry the SEC-DED codec:
/// [`estimate_system`] plus `fsl_ecc_slices` per channel pair. The CPU,
/// LMB and peripheral contributions are unchanged — ECC hardening is a
/// bus-level option, paid per channel.
pub fn estimate_system_ecc(cfg: &SystemConfig, sheet: &DataSheet) -> Resources {
    let mut total = estimate_system(cfg, sheet);
    total.slices += cfg.fsl_channels * sheet.fsl_ecc_slices;
    total
}

/// Converts elaborated RTL primitives into the same [`Resources`] shape,
/// for estimated-vs-actual comparisons (Table I).
pub fn actual_from_primitives(p: softsim_rtl::Primitives) -> Resources {
    Resources { slices: p.slices(), brams: p.brams, mult18s: p.mult18s }
}

/// Relative slice-count error of an estimate against an actual.
pub fn slice_error(estimated: Resources, actual: Resources) -> f64 {
    if actual.slices == 0 {
        return 0.0;
    }
    (estimated.slices as f64 - actual.slices as f64) / actual.slices as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_isa::asm::assemble;

    #[test]
    fn pure_software_system() {
        let img = assemble("halt\n").unwrap();
        let cfg = SystemConfig { program: &img, peripheral: Resources::ZERO, fsl_channels: 0 };
        let r = estimate_system(&cfg, &DataSheet::default());
        assert_eq!(r.slices, 526 + 22);
        assert_eq!(r.brams, 1);
        assert_eq!(r.mult18s, 3);
    }

    #[test]
    fn peripheral_and_channels_add_up() {
        let img = assemble("halt\n").unwrap();
        let per = Resources { slices: 200, brams: 0, mult18s: 4 };
        let cfg = SystemConfig { program: &img, peripheral: per, fsl_channels: 2 };
        let r = estimate_system(&cfg, &DataSheet::default());
        assert_eq!(r.slices, 526 + 22 + 2 * 37 + 200);
        assert_eq!(r.mult18s, 7);
    }

    #[test]
    fn ecc_hardening_costs_per_channel_only() {
        let img = assemble("halt\n").unwrap();
        let per = Resources { slices: 200, brams: 0, mult18s: 4 };
        let cfg = SystemConfig { program: &img, peripheral: per, fsl_channels: 2 };
        let sheet = DataSheet::default();
        let plain = estimate_system(&cfg, &sheet);
        let ecc = estimate_system_ecc(&cfg, &sheet);
        assert_eq!(ecc.slices, plain.slices + 2 * 41, "41 slices per hardened channel");
        assert_eq!(ecc.brams, plain.brams);
        assert_eq!(ecc.mult18s, plain.mult18s);
        // No channels → hardening is free.
        let sw = SystemConfig { program: &img, peripheral: Resources::ZERO, fsl_channels: 0 };
        assert_eq!(estimate_system_ecc(&sw, &sheet), estimate_system(&sw, &sheet));
    }

    #[test]
    fn big_program_needs_more_brams() {
        let src = format!(".space {}\nend: halt\n", 3 * 2048);
        let img = assemble(&src).unwrap();
        let cfg = SystemConfig { program: &img, peripheral: Resources::ZERO, fsl_channels: 0 };
        let r = estimate_system(&cfg, &DataSheet::default());
        assert_eq!(r.brams, 4);
    }

    #[test]
    fn per_option_costs_accumulate() {
        use softsim_isa::CpuConfig;
        let minimal = DataSheet::for_config(&CpuConfig::minimal());
        let default = DataSheet::for_config(&CpuConfig::default());
        let full = DataSheet::for_config(&CpuConfig::full());
        assert!(minimal.cpu_slices < default.cpu_slices);
        assert!(default.cpu_slices < full.cpu_slices);
        assert_eq!(default.cpu_slices, 526, "era-default MicroBlaze footprint");
        assert_eq!(minimal.cpu_mult18s, 0);
        assert_eq!(full.cpu_mult18s, 3);
    }

    #[test]
    fn estimate_tracks_rtl_actual_for_every_configuration() {
        // Estimated vs RTL-elaborated actuals stay within 10% for each
        // processor option set — the configuration dimension of the
        // design space.
        use softsim_isa::CpuConfig;
        let img = assemble("halt\n").unwrap();
        for config in [CpuConfig::minimal(), CpuConfig::default(), CpuConfig::full()] {
            let soc = softsim_rtl::SocRtl::with_config(&img, config);
            let actual = actual_from_primitives(soc.kernel.primitives());
            let cfg = SystemConfig { program: &img, peripheral: Resources::ZERO, fsl_channels: 0 };
            let estimated = estimate_system(&cfg, &DataSheet::for_config(&config));
            let err = slice_error(estimated, actual).abs();
            assert!(
                err < 0.10,
                "{config:?}: estimate {} vs actual {} ({:.1}% off)",
                estimated.slices,
                actual.slices,
                err * 100.0
            );
            assert_eq!(estimated.mult18s, actual.mult18s, "{config:?}");
        }
    }

    #[test]
    fn estimate_tracks_rtl_actual_for_bare_cpu() {
        // The estimator and the RTL elaboration must agree within ~10%
        // on the bare processor, as the estimated/actual columns of
        // Table I do.
        let img = assemble("halt\n").unwrap();
        let soc = softsim_rtl::SocRtl::new(&img);
        let actual = actual_from_primitives(soc.kernel.primitives());
        let cfg = SystemConfig { program: &img, peripheral: Resources::ZERO, fsl_channels: 0 };
        let estimated = estimate_system(&cfg, &DataSheet::default());
        let err = slice_error(estimated, actual).abs();
        assert!(
            err < 0.10,
            "estimate {} vs actual {} ({:.1}% off)",
            estimated.slices,
            actual.slices,
            err * 100.0
        );
        assert_eq!(estimated.mult18s, actual.mult18s);
        assert_eq!(estimated.brams, actual.brams);
    }
}
