//! Automatic basic-block discovery over a loaded program image.
//!
//! Leaders are found statically, before any simulation: the entry point,
//! every code label, every decodable branch target, and every
//! fall-through address after a control transfer (past the delay slot
//! when the branch executes one). Words that fail to decode are data;
//! blocks never span them.

use softsim_isa::{decode, Image, Inst};
use std::collections::BTreeSet;

/// One basic block of guest code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u32,
    /// One past the last instruction byte (exclusive).
    pub end: u32,
    /// Name of the enclosing region: the nearest code label at or before
    /// `start`, or the hex start address when the program has no labels.
    pub region: String,
}

impl BasicBlock {
    /// A deterministic display name: the region label when the block
    /// starts exactly at it, otherwise `region+0xOFF`.
    pub fn name(&self, region_start: u32) -> String {
        if self.start == region_start {
            self.region.clone()
        } else {
            format!("{}+{:#x}", self.region, self.start - region_start)
        }
    }
}

/// The statically-known target of a branch instruction at `pc`, when it
/// can be computed without executing (immediate-form branches only;
/// register branches and `imm`-prefixed displacements are dynamic).
fn static_target(pc: u32, inst: &Inst) -> Option<u32> {
    match *inst {
        Inst::BrI { imm, absolute: true, .. } => Some(imm as i32 as u32),
        Inst::BrI { imm, absolute: false, .. } => Some(pc.wrapping_add(imm as i32 as u32)),
        Inst::BccI { imm, .. } => Some(pc.wrapping_add(imm as i32 as u32)),
        _ => None,
    }
}

/// Discovers the basic blocks of an image, in address order.
pub fn discover_blocks(image: &Image) -> Vec<BasicBlock> {
    let base = image.base();
    let end = base + image.len_bytes();
    // Decode the whole image once; remember which words are code.
    let mut code = BTreeSet::new();
    let mut leaders = BTreeSet::new();
    leaders.insert(image.entry());
    let mut addr = base;
    let mut prev_was_data = true;
    while addr < end {
        match decode(image.read_u32(addr)) {
            Ok(inst) => {
                code.insert(addr);
                if prev_was_data {
                    // First instruction after a data gap starts a block.
                    leaders.insert(addr);
                }
                prev_was_data = false;
                if inst.is_branch() || matches!(inst, Inst::Halt) {
                    if let Some(t) = static_target(addr, &inst) {
                        leaders.insert(t);
                    }
                    // The instruction after the transfer (past the delay
                    // slot, which belongs to the branch's block).
                    let next = if inst.has_delay_slot() { addr + 8 } else { addr + 4 };
                    leaders.insert(next);
                }
            }
            Err(_) => prev_was_data = true,
        }
        addr += 4;
    }
    for (_, label_addr) in image.labels() {
        if code.contains(&label_addr) {
            leaders.insert(label_addr);
        }
    }

    // Region labels in address order (code labels only).
    let labels: Vec<(String, u32)> = image
        .labels()
        .into_iter()
        .filter(|&(_, a)| code.contains(&a))
        .map(|(n, a)| (n.to_string(), a))
        .collect();
    let region_of = |start: u32| -> String {
        labels
            .iter()
            .take_while(|&&(_, a)| a <= start)
            .last()
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| format!("{start:#x}"))
    };

    // Cut blocks at leaders and code/data boundaries.
    let mut blocks = Vec::new();
    let mut current: Option<BasicBlock> = None;
    for &addr in &code {
        let continues = current.as_ref().is_some_and(|b| b.end == addr && !leaders.contains(&addr));
        if continues {
            current.as_mut().expect("continues implies current").end = addr + 4;
        } else {
            if let Some(b) = current.take() {
                blocks.push(b);
            }
            current = Some(BasicBlock { start: addr, end: addr + 4, region: region_of(addr) });
        }
    }
    if let Some(b) = current {
        blocks.push(b);
    }
    blocks
}

/// The address of the region label a block's region name refers to, for
/// [`BasicBlock::name`]. Returns `start` itself when the region is the
/// synthetic hex name.
pub fn region_start(image: &Image, block: &BasicBlock) -> u32 {
    image.symbol(&block.region).unwrap_or(block.start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_isa::asm::assemble;

    #[test]
    fn straight_line_program_is_one_block() {
        let img = assemble("addik r3, r0, 1\naddik r4, r0, 2\nhalt\n").unwrap();
        let blocks = discover_blocks(&img);
        assert_eq!(blocks.len(), 1, "no branch targets: one straight-line block");
        assert_eq!((blocks[0].start, blocks[0].end), (0, 12));
    }

    #[test]
    fn loop_is_cut_at_target_and_fallthrough() {
        let img = assemble(
            "start: addik r3, r0, 5\n\
             loop:  addik r3, r3, -1\n\
                    bneid r3, loop\n\
                    nop\n\
                    halt\n",
        )
        .unwrap();
        let blocks = discover_blocks(&img);
        // start(0..4), loop(4..16 incl. delay slot), halt(16..20).
        let spans: Vec<(u32, u32)> = blocks.iter().map(|b| (b.start, b.end)).collect();
        assert_eq!(spans, vec![(0, 4), (4, 16), (16, 20)]);
        assert_eq!(blocks[0].region, "start");
        assert_eq!(blocks[1].region, "loop");
        assert_eq!(blocks[2].region, "loop", "fall-through stays in the last label's region");
    }

    #[test]
    fn data_words_are_not_code_blocks() {
        let img = assemble(
            "entry: bri entry\n\
             table: .word 0xffffffff, 0xfefefefe\n",
        )
        .unwrap();
        let blocks = discover_blocks(&img);
        assert_eq!(blocks.len(), 1);
        assert_eq!((blocks[0].start, blocks[0].end), (0, 4));
    }

    #[test]
    fn equ_constants_do_not_become_regions() {
        let img = assemble(
            ".equ FOUR, 4\n\
             a: nop\n\
             b: nop\n\
                halt\n",
        )
        .unwrap();
        let blocks = discover_blocks(&img);
        assert!(blocks.iter().all(|b| b.region != "FOUR"));
        // FOUR = 4 coincides with label `b`'s address; the region at 4
        // must be `b`, not the constant.
        let at4 = blocks.iter().find(|b| b.start == 4).unwrap();
        assert_eq!(at4.region, "b");
    }
}
