//! Rollup of raw per-PC attribution onto blocks and regions, plus the
//! flamegraph and annotated-disassembly exports.

use crate::blocks::{discover_blocks, BasicBlock};
use softsim_isa::disasm::disassemble;
use softsim_isa::{decode, Image};
use softsim_iss::classify;
use softsim_trace::{GuestProfile, InstClass};
use std::fmt::Write as _;

/// Cycle/visit counters for one basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockStat {
    /// The block itself.
    pub block: BasicBlock,
    /// Deterministic display name (`region` or `region+0xOFF`).
    pub name: String,
    /// Cycles spent in the block (stalls included).
    pub cycles: u64,
    /// Times the block was entered (retires of its first instruction).
    pub visits: u64,
    /// Instructions retired inside the block.
    pub retires: u64,
    /// FSL read-stall cycles inside the block.
    pub read_stalls: u64,
    /// FSL write-stall cycles inside the block.
    pub write_stalls: u64,
}

/// Label-level rollup of everything inside one region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStat {
    /// Region name (code label).
    pub region: String,
    /// Address of the region's first block.
    pub start: u32,
    /// Total cycles in the region.
    pub cycles: u64,
    /// Times the region's first block was entered.
    pub visits: u64,
    /// Instructions retired in the region.
    pub retires: u64,
    /// FSL read-stall cycles.
    pub read_stalls: u64,
    /// FSL write-stall cycles.
    pub write_stalls: u64,
    /// Retires per instruction class (indexed by [`InstClass::index`]),
    /// the advisor's raw material.
    pub class_retires: [u64; InstClass::ALL.len()],
}

/// A guest-level profile report: per-PC attribution rolled up onto the
/// image's basic blocks and label regions.
#[derive(Debug, Clone)]
pub struct GuestReport {
    blocks: Vec<BlockStat>,
    regions: Vec<RegionStat>,
    total_cycles: u64,
    unmapped_cycles: u64,
}

impl GuestReport {
    /// Rolls a collected [`GuestProfile`] up onto the blocks of `image`.
    pub fn build(image: &Image, profile: &GuestProfile) -> GuestReport {
        let blocks = discover_blocks(image);
        let mut stats: Vec<BlockStat> = blocks
            .into_iter()
            .map(|block| {
                let region_start = image.symbol(&block.region).unwrap_or(block.start);
                let name = block.name(region_start);
                BlockStat {
                    block,
                    name,
                    cycles: 0,
                    visits: 0,
                    retires: 0,
                    read_stalls: 0,
                    write_stalls: 0,
                }
            })
            .collect();

        // Region rollup keyed by (start, name); built alongside blocks.
        let mut regions: Vec<RegionStat> = Vec::new();
        for b in &stats {
            let start = image.symbol(&b.block.region).unwrap_or(b.block.start);
            if regions.last().is_none_or(|r| r.region != b.block.region) {
                regions.push(RegionStat {
                    region: b.block.region.clone(),
                    start,
                    cycles: 0,
                    visits: 0,
                    retires: 0,
                    read_stalls: 0,
                    write_stalls: 0,
                    class_retires: [0; InstClass::ALL.len()],
                });
            }
        }

        let mut total_cycles = 0;
        let mut unmapped_cycles = 0;
        for (pc, s) in profile.pc_stats() {
            total_cycles += s.cycles;
            // Last block starting at or before pc.
            let idx = match stats.binary_search_by_key(&pc, |b| b.block.start) {
                Ok(i) => Some(i),
                Err(0) => None,
                Err(i) => Some(i - 1),
            };
            let Some(idx) = idx.filter(|&i| pc < stats[i].block.end) else {
                unmapped_cycles += s.cycles;
                continue;
            };
            let b = &mut stats[idx];
            b.cycles += s.cycles;
            b.retires += s.retires;
            b.read_stalls += s.read_stalls;
            b.write_stalls += s.write_stalls;
            if pc == b.block.start {
                b.visits += s.retires;
            }
            let region = b.block.region.clone();
            let first_pc = b.block.start;
            let r = regions
                .iter_mut()
                .find(|r| r.region == region)
                .expect("every block has a region entry");
            r.cycles += s.cycles;
            r.retires += s.retires;
            r.read_stalls += s.read_stalls;
            r.write_stalls += s.write_stalls;
            if pc == first_pc && first_pc == r.start {
                r.visits += s.retires;
            }
            if let Ok(inst) = decode(image.read_u32(pc)) {
                r.class_retires[classify(&inst).index()] += s.retires;
            }
        }

        GuestReport { blocks: stats, regions, total_cycles, unmapped_cycles }
    }

    /// Every block in address order.
    pub fn blocks(&self) -> &[BlockStat] {
        &self.blocks
    }

    /// Label-level rollup in address order.
    pub fn regions(&self) -> &[RegionStat] {
        &self.regions
    }

    /// Total cycles attributed by the underlying profile.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Cycles at PCs outside every discovered block (0 for programs
    /// assembled from the image being profiled).
    pub fn unmapped_cycles(&self) -> u64 {
        self.unmapped_cycles
    }

    /// The `n` hottest blocks: most cycles first, address as tiebreak.
    pub fn hot_blocks(&self, n: usize) -> Vec<&BlockStat> {
        let mut v: Vec<&BlockStat> = self.blocks.iter().filter(|b| b.cycles > 0).collect();
        v.sort_by_key(|b| (std::cmp::Reverse(b.cycles), b.block.start));
        v.truncate(n);
        v
    }

    /// Collapsed-stack flamegraph export (`region;block cycles` per
    /// line), the format `flamegraph.pl` and speedscope consume.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for b in &self.blocks {
            if b.cycles > 0 {
                let _ = writeln!(out, "{};{} {}", b.block.region, b.name, b.cycles);
            }
        }
        out
    }

    /// An annotated disassembly listing: per-line cycles, retires and
    /// percent-of-total, objdump-style.
    pub fn annotated_disassembly(&self, image: &Image, profile: &GuestProfile) -> String {
        let mut out = String::new();
        let total = self.total_cycles.max(1);
        let _ =
            writeln!(out, "{:>10} {:>9} {:>6}  address   instruction", "cycles", "retires", "%");
        for line in disassemble(image) {
            for label in &line.labels {
                let _ = writeln!(out, "{label}:");
            }
            match profile.pc_stat(line.addr) {
                Some(s) => {
                    let pct = s.cycles as f64 / total as f64 * 100.0;
                    let _ = writeln!(
                        out,
                        "{:>10} {:>9} {:>5.1}%  {:08x}:  {}",
                        s.cycles, s.retires, pct, line.addr, line.text
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{:>10} {:>9} {:>6}  {:08x}:  {}",
                        "", "", "", line.addr, line.text
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsim_isa::asm::assemble;
    use softsim_trace::{TraceEvent, TraceSink};

    fn profile_of(events: &[(u32, u32)]) -> GuestProfile {
        let mut g = GuestProfile::new();
        for &(pc, cycles) in events {
            g.event(&TraceEvent::Retire {
                cycle: 0,
                pc,
                word: 0,
                class: InstClass::Alu,
                cycles,
                read_stalls: 0,
                write_stalls: 0,
            });
        }
        g
    }

    #[test]
    fn rollup_reconciles_and_ranks() {
        let img = assemble(
            "start: addik r3, r0, 2\n\
             loop:  addik r3, r3, -1\n\
                    bneid r3, loop\n\
                    nop\n\
                    halt\n",
        )
        .unwrap();
        // Two loop trips: retires at 0 once, 4/8/12 twice each, 16 once.
        let g = profile_of(&[(0, 1), (4, 1), (8, 2), (12, 1), (4, 1), (8, 2), (12, 1), (16, 1)]);
        let report = GuestReport::build(&img, &g);
        assert_eq!(report.total_cycles(), g.total_cycles());
        assert_eq!(report.unmapped_cycles(), 0);
        let block_sum: u64 = report.blocks().iter().map(|b| b.cycles).sum();
        assert_eq!(block_sum, g.total_cycles(), "every cycle lands in a block");
        let hot = report.hot_blocks(10);
        assert_eq!(hot[0].block.region, "loop");
        assert_eq!(hot[0].visits, 2);
        let region_sum: u64 = report.regions().iter().map(|r| r.cycles).sum();
        assert_eq!(region_sum, g.total_cycles());
        let collapsed = report.to_collapsed();
        assert!(collapsed.contains("loop;loop "), "{collapsed}");
        let listing = report.annotated_disassembly(&img, &g);
        assert!(listing.contains("bneid"), "{listing}");
    }
}
