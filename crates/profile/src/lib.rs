//! # softsim-profile — guest-program profiling and partition advice
//!
//! The simulators tell us how long a program took; this crate tells us
//! *where the cycles went inside the guest program* — the observability
//! layer the paper's HW/SW partitioning decision actually consumes.
//!
//! The pipeline (DESIGN.md §12):
//!
//! 1. **Event stream** — the ISS emits `Retire` records with exact
//!    per-instruction cycle and stall attribution;
//!    [`softsim_trace::GuestProfile`] folds them into per-PC counters.
//! 2. **Block discovery** — [`discover_blocks`] statically cuts the
//!    loaded image into basic blocks (entry, labels, branch targets,
//!    fall-throughs; data words excluded).
//! 3. **Rollup** — [`GuestReport::build`] maps per-PC counters onto
//!    blocks and label regions, producing hot-block rankings, a
//!    collapsed-stack flamegraph ([`GuestReport::to_collapsed`]) and an
//!    annotated disassembly.
//! 4. **Advice** — [`advise`] ranks regions as hardware-offload
//!    candidates by `cycles_spent − estimated_comm_cost`, reusing the
//!    `resource`/`energy` estimators for the cost side.
//!
//! Everything is deterministic: identical runs produce byte-identical
//! profiles, flamegraphs and advisor rankings.
//!
//! ```
//! use softsim_isa::asm::assemble;
//! use softsim_profile::{advise, GuestReport};
//! use softsim_trace::{GuestProfile, TraceSink, TraceEvent, InstClass};
//!
//! let image = assemble("start: addik r3, r0, 1\nloop: bri loop\n").unwrap();
//! let mut profile = GuestProfile::new();
//! profile.event(&TraceEvent::Retire {
//!     cycle: 0, pc: 4, word: 0, class: InstClass::Branch,
//!     cycles: 3, read_stalls: 0, write_stalls: 0,
//! });
//! let report = GuestReport::build(&image, &profile);
//! assert_eq!(report.hot_blocks(1)[0].block.region, "loop");
//! assert!(!advise(&report).is_empty());
//! ```

#![warn(missing_docs)]

mod advisor;
mod blocks;
mod report;

pub use advisor::{advise, advise_text, OffloadCandidate, FSL_CYCLES_PER_WORD};
pub use blocks::{discover_blocks, region_start, BasicBlock};
pub use report::{BlockStat, GuestReport, RegionStat};
