//! The HW/SW partition advisor.
//!
//! The paper's end goal is choosing which software regions to move into
//! FPGA peripherals; its method is to co-simulate candidate partitions.
//! The advisor closes the loop from the *profiling* side: given a
//! guest-level profile, it ranks label regions as offload candidates by
//! `cycles_spent − estimated_comm_cost`, where the communication cost is
//! what the region's memory traffic would cost to stream over an FSL
//! instead. Regions that score high burn many cycles relative to the
//! words they would have to move — exactly the FSL-friendly kernels
//! (CORDIC iterations, MAC loops) the paper offloads.
//!
//! The estimate is deliberately first-order: every load becomes one
//! input word, every store one output word, and each word costs the
//! 2-cycle FSL `put`/`get` the ISS charges. It errs toward
//! over-counting communication (values the hardware could keep internal
//! still get charged), so a positive score is a conservative signal.

use crate::report::{GuestReport, RegionStat};
use softsim_energy::{software_energy_nj, InstructionEnergyModel};
use softsim_iss::CpuStats;
use softsim_resource::DataSheet;
use softsim_trace::InstClass;

/// CPU-side cycles to move one word over an FSL (`put`/`get` base cost
/// in the ISS timing model, stalls excluded).
pub const FSL_CYCLES_PER_WORD: u64 = 2;

/// One ranked hardware-offload candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadCandidate {
    /// Region (code label) name.
    pub region: String,
    /// Address of the region's first instruction.
    pub start: u32,
    /// Cycles the software spent in the region.
    pub cycles: u64,
    /// Times the region was entered.
    pub visits: u64,
    /// Words the offloaded region would move over the FSL (loads +
    /// stores + a per-visit argument/result handshake).
    pub comm_words: u64,
    /// Estimated CPU-side cycles to move `comm_words`.
    pub est_comm_cycles: u64,
    /// `cycles − est_comm_cycles`: the advisor's ranking signal.
    pub score: i64,
    /// Instruction-level software energy of the region (nJ), what an
    /// offload would remove from the processor's budget.
    pub software_nj: f64,
    /// Estimated extra slices to plumb the offload: one FSL channel
    /// pair (datasheet cost).
    pub est_extra_slices: u32,
}

/// Builds the per-region synthetic statistics the energy model needs.
fn region_stats(r: &RegionStat) -> CpuStats {
    let class = |c: InstClass| r.class_retires[c.index()];
    CpuStats {
        cycles: r.cycles,
        instructions: r.retires,
        fsl_read_stalls: r.read_stalls,
        fsl_write_stalls: r.write_stalls,
        fsl_words_sent: class(InstClass::FslPut),
        fsl_words_received: class(InstClass::FslGet),
        fsl_nonblocking_misses: 0,
        fsl_control_mismatches: 0,
        // Upper bound: every retired branch counted as taken.
        taken_branches: class(InstClass::Branch),
        mem_reads: class(InstClass::Load),
        mem_writes: class(InstClass::Store),
        multiplies: class(InstClass::Mul),
    }
}

/// Ranks the report's regions as hardware-offload candidates, best
/// first (ties broken by address, so the ranking is deterministic).
pub fn advise(report: &GuestReport) -> Vec<OffloadCandidate> {
    let sheet = DataSheet::default();
    let energy_model = InstructionEnergyModel::default();
    let mut out: Vec<OffloadCandidate> = report
        .regions()
        .iter()
        .filter(|r| r.retires > 0)
        .map(|r| {
            let stats = region_stats(r);
            let comm_words = stats.mem_reads + stats.mem_writes + 2 * r.visits;
            let est_comm_cycles = FSL_CYCLES_PER_WORD * comm_words;
            OffloadCandidate {
                region: r.region.clone(),
                start: r.start,
                cycles: r.cycles,
                visits: r.visits,
                comm_words,
                est_comm_cycles,
                score: r.cycles as i64 - est_comm_cycles as i64,
                software_nj: software_energy_nj(&stats, &energy_model),
                est_extra_slices: sheet.fsl_channel_slices,
            }
        })
        .collect();
    out.sort_by_key(|c| (std::cmp::Reverse(c.score), c.start));
    out
}

/// Renders a ranked candidate table (deterministic text).
pub fn advise_text(candidates: &[OffloadCandidate]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>8} {:>10} {:>11} {:>11} {:>12} {:>7}",
        "region",
        "cycles",
        "visits",
        "comm_words",
        "comm_cycles",
        "score",
        "sw_energy_nJ",
        "slices"
    );
    for c in candidates {
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>8} {:>10} {:>11} {:>11} {:>12.1} {:>7}",
            c.region,
            c.cycles,
            c.visits,
            c.comm_words,
            c.est_comm_cycles,
            c.score,
            c.software_nj,
            c.est_extra_slices
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::GuestReport;
    use softsim_isa::asm::assemble;
    use softsim_trace::{GuestProfile, TraceEvent, TraceSink};

    #[test]
    fn hot_compute_region_outranks_memory_bound_one() {
        let img = assemble(
            "start: addik r3, r0, 1\n\
             hot:   mul r4, r3, r3\n\
                    bri hot\n\
             cold:  lwi r5, r0, 0x100\n\
                    swi r5, r0, 0x104\n\
                    halt\n",
        )
        .unwrap();
        let mut g = GuestProfile::new();
        let mut emit = |pc: u32, cycles: u32, n: u64| {
            for _ in 0..n {
                g.event(&TraceEvent::Retire {
                    cycle: 0,
                    pc,
                    word: 0,
                    class: InstClass::Alu,
                    cycles,
                    read_stalls: 0,
                    write_stalls: 0,
                });
            }
        };
        emit(0, 1, 1); // start
        emit(4, 3, 100); // hot: mul ×100
        emit(8, 3, 100); // hot: taken bri ×100
        emit(12, 2, 1); // cold: lwi
        emit(16, 2, 1); // cold: swi
        let report = GuestReport::build(&img, &g);
        let ranked = advise(&report);
        assert_eq!(ranked[0].region, "hot");
        assert!(ranked[0].score > 0, "hot loop is worth offloading: {:?}", ranked[0]);
        let cold = ranked.iter().find(|c| c.region == "cold").unwrap();
        assert!(
            ranked[0].score > cold.score,
            "compute-bound region must outrank the memory-bound one"
        );
        assert!(cold.comm_words >= 2, "loads and stores count as FSL words");
        let text = advise_text(&ranked);
        assert!(text.contains("hot"), "{text}");
    }
}
