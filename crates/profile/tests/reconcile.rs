//! The profiler's accounting discipline, end to end through `CoSim`:
//! per-PC attribution must sum *exactly* to the processor's own cycle
//! counter (the same reconciliation discipline the stall-attribution
//! trace established), profiles must be byte-identical across runs, and
//! the CORDIC hot block must be the known inner loop.

use softsim_apps::cordic::hardware::cordic_peripheral;
use softsim_apps::cordic::reference::to_fix;
use softsim_apps::cordic::software::{hw_program, sw_program, CordicBatch, SwStyle};
use softsim_cosim::{CoSim, CoSimStop};
use softsim_isa::asm::assemble;
use softsim_isa::Image;
use softsim_profile::{advise, advise_text, GuestReport};
use softsim_trace::{shared, Profile};
use std::cell::RefCell;
use std::rc::Rc;

fn cordic_batch() -> CordicBatch {
    let pairs: Vec<(i32, i32)> = [(1.0, 0.5), (1.5, 1.2), (2.0, -1.0), (1.25, 0.8)]
        .iter()
        .map(|&(a, b)| (to_fix(a), to_fix(b)))
        .collect();
    CordicBatch::new(&pairs)
}

fn cordic_sw_image() -> Image {
    assemble(&sw_program(&cordic_batch(), 24, SwStyle::Compiled)).expect("assembles")
}

fn cordic_hw_image(p: usize) -> Image {
    assemble(&hw_program(&cordic_batch(), 24, p)).expect("assembles")
}

#[test]
fn software_profile_reconciles_and_finds_the_inner_loop() {
    let image = cordic_sw_image();
    let mut sim = CoSim::software_only(&image);
    sim.set_profiling(true);
    assert!(sim.profiling());
    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);

    let profile = sim.guest_profile().expect("profiling on");
    let stats = sim.cpu_stats();
    assert_eq!(profile.total_cycles(), stats.cycles, "per-PC cycles must sum to CpuStats");
    assert_eq!(profile.total_retires(), stats.instructions);

    let report = GuestReport::build(&image, &profile);
    assert_eq!(report.total_cycles(), stats.cycles);
    assert_eq!(report.unmapped_cycles(), 0);
    // The compiled CORDIC kernel's inner loop is iter → (ypos) → join →
    // iter; its tail block `join` (spill/reload memory ops + back
    // branch, executed every iteration) dominates, with `iter` next.
    let hot = report.hot_blocks(3);
    assert_eq!(hot[0].block.region, "join", "CORDIC's hot block is the known inner loop");
    const INNER_LOOP: [&str; 3] = ["iter", "ypos", "join"];
    for b in &hot {
        assert!(
            INNER_LOOP.contains(&b.block.region.as_str()),
            "top blocks all sit in the inner loop, got {}",
            b.block.region
        );
    }

    // The inner loop also tops the partition-advisor ranking.
    let ranked = advise(&report);
    assert!(INNER_LOOP.contains(&ranked[0].region.as_str()));
    assert!(ranked[0].score > 0);
}

#[test]
fn hardware_profile_reconciles_with_fsl_stalls() {
    let image = cordic_hw_image(4);
    let mut sim = CoSim::with_peripheral(&image, cordic_peripheral(4));
    sim.set_profiling(true);
    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);

    let profile = sim.guest_profile().unwrap();
    let stats = sim.cpu_stats();
    assert_eq!(profile.total_cycles(), stats.cycles);
    let (reads, writes) =
        profile.pc_stats().fold((0, 0), |(r, w), (_, s)| (r + s.read_stalls, w + s.write_stalls));
    assert_eq!(reads, stats.fsl_read_stalls, "stall attribution splits exactly");
    assert_eq!(writes, stats.fsl_write_stalls);
    assert!(!profile.fsl_channels().is_empty(), "FSL heatmap saw traffic");
    assert!(profile.heatmap_text().contains("ch0"));
}

#[test]
fn cycle_limited_run_still_reconciles_via_in_flight_attribution() {
    // Deliberately cut the run mid-flight (likely inside an FSL stall on
    // this program, which blocks on `get` with no peripheral attached).
    let image = cordic_hw_image(4);
    let mut sim = CoSim::software_only(&image);
    sim.set_profiling(true);
    let stop = sim.run(500);
    assert!(matches!(stop, CoSimStop::CycleLimit { .. }));
    let profile = sim.guest_profile().unwrap();
    assert_eq!(
        profile.total_cycles(),
        sim.cpu_stats().cycles,
        "in-flight attribution closes the books on cycle-limited runs"
    );
}

#[test]
fn profiling_composes_with_a_user_trace_sink() {
    let image = cordic_sw_image();
    let mut sim = CoSim::software_only(&image);
    let user = Rc::new(RefCell::new(Profile::new()));
    sim.attach_trace(shared(user.clone()));
    sim.set_profiling(true);
    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
    let stats = sim.cpu_stats();
    assert_eq!(user.borrow().breakdown().total, stats.cycles, "user sink saw every event");
    assert_eq!(sim.guest_profile().unwrap().total_cycles(), stats.cycles);

    // Turning profiling off keeps the user sink wired.
    sim.set_profiling(false);
    assert!(sim.guest_profile().is_none());

    // And detaching everything restores the untraced fast path.
    sim.detach_trace();
}

#[test]
fn profiles_are_byte_identical_across_runs() {
    let render = |p: usize| {
        let image = cordic_hw_image(p);
        let mut sim = CoSim::with_peripheral(&image, cordic_peripheral(p));
        sim.set_profiling(true);
        assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
        let profile = sim.guest_profile().unwrap();
        let report = GuestReport::build(&image, &profile);
        format!(
            "{}\n{}\n{}\n{}",
            report.to_collapsed(),
            advise_text(&advise(&report)),
            report.annotated_disassembly(&image, &profile),
            profile.heatmap_text()
        )
    };
    assert_eq!(render(4), render(4), "identical runs render identical profiles");
}
