//! End-to-end robustness tests for the simulation service: overload
//! shedding, watermark degradation, quarantine after retries, memo
//! cache hits and corrupt-entry eviction, and crash-resume
//! byte-identity across worker counts.

use softsim_serve::{
    CacheStatus, JobKind, JobSpec, JobState, Priority, QueueConfig, ServeConfig, Server,
    ShedReason, Workload,
};
use std::path::{Path, PathBuf};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(300);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("softsim-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_server(tag: &str, config: ServeConfig) -> Server {
    Server::start(ServeConfig { spool: scratch(tag), ..config }).expect("server starts")
}

fn simulate_spec(seed: u64) -> JobSpec {
    JobSpec {
        kind: JobKind::Simulate,
        workload: Workload::Cordic { iterations: 8, p: 2 },
        seed,
        use_cache: false,
        durable: false,
        ..JobSpec::default()
    }
}

fn campaign_spec(seed: u64, trials: u32) -> JobSpec {
    JobSpec {
        kind: JobKind::Campaign,
        workload: Workload::Cordic { iterations: 8, p: 2 },
        seed,
        trials,
        ..JobSpec::default()
    }
}

#[test]
fn overload_floods_shed_typed_and_high_priority_evicts() {
    let server = quick_server(
        "overload",
        ServeConfig {
            workers: 1,
            hold: true,
            queue: QueueConfig { capacity: 4, degrade_watermark: 3 },
            ..ServeConfig::default()
        },
    );
    // Fill the queue while the pool is held.
    let ids: Vec<u64> =
        (0..4).map(|i| server.submit(simulate_spec(100 + i)).expect("admitted")).collect();
    // Fifth same-priority job: typed rejection, queue stays bounded.
    let shed = server.submit(simulate_spec(200)).expect_err("queue full");
    assert_eq!(shed.reason, ShedReason::QueueFull { depth: 4, capacity: 4 });
    assert_eq!(server.health().queue_depth, 4);
    // A high-priority arrival evicts the newest normal job instead.
    let vip = server
        .submit(JobSpec { priority: Priority::High, ..simulate_spec(300) })
        .expect("high priority admitted");
    let victim = server.wait(ids[3], WAIT).expect("victim result");
    assert_eq!(victim.state, JobState::Shed);
    assert_eq!(victim.shed, Some(ShedReason::Evicted { by: vip }));
    assert_eq!(server.health().queue_depth, 4, "eviction keeps the bound");

    server.release();
    for &id in &ids[..3] {
        let r = server.wait(id, WAIT).expect("job finishes");
        assert_eq!(r.state, JobState::Done, "{r:?}");
    }
    // The VIP was admitted at depth 4 >= watermark 3: it runs in
    // reduced-fidelity mode, bit-exact but flagged.
    let r = server.wait(vip, WAIT).expect("vip finishes");
    assert_eq!(r.state, JobState::Done);
    assert!(r.degraded, "watermark admission must flag degradation: {r:?}");

    let counters = server.telemetry().serve_counters();
    assert_eq!(counters.shed, 2, "one rejection + one eviction");
    // Both the fourth fill job (admitted at depth 3) and the VIP
    // (admitted at depth 4) crossed the watermark.
    assert_eq!(counters.degraded, 2);
    let prom = server.metrics();
    for needle in [
        "softsim_serve_jobs_total{state=\"shed\"} 2",
        "softsim_serve_jobs_total{state=\"degraded\"} 2",
        "softsim_serve_ready 1",
    ] {
        assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
    }
}

#[test]
fn deadline_expires_while_queued() {
    let server =
        quick_server("deadline", ServeConfig { workers: 1, hold: true, ..ServeConfig::default() });
    let id = server.submit(JobSpec { deadline_ms: Some(1), ..simulate_spec(7) }).expect("admitted");
    std::thread::sleep(Duration::from_millis(25));
    server.release();
    let r = server.wait(id, WAIT).expect("result");
    assert_eq!(r.state, JobState::Shed);
    match r.shed {
        Some(ShedReason::DeadlineExpired { waited_ms }) => assert!(waited_ms >= 1, "{waited_ms}"),
        other => panic!("expected a deadline shed, got {other:?}"),
    }
}

#[test]
fn crash_test_workload_is_quarantined_after_retries() {
    let server = quick_server(
        "quarantine",
        ServeConfig {
            workers: 1,
            retry_backoff: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    let spec = JobSpec {
        kind: JobKind::Simulate,
        workload: Workload::CrashTest,
        use_cache: false,
        ..JobSpec::default()
    };
    let r = server.run(spec).expect("admitted");
    assert_eq!(r.state, JobState::Quarantined);
    assert_eq!(r.retries, 2, "default max_job_retries consumed: {r:?}");
    let err = r.error.expect("quarantine reason");
    assert!(err.contains("crash-test workload build"), "{err}");
    let counters = server.telemetry().serve_counters();
    assert_eq!(counters.retried, 2);
    assert_eq!(counters.quarantined, 1);
    // The worker survived the panics: the pool still serves jobs.
    let ok = server.run(simulate_spec(1)).expect("pool alive");
    assert_eq!(ok.state, JobState::Done);
}

#[test]
fn invalid_workload_quarantines_with_a_structured_result() {
    let server = quick_server("invalid", ServeConfig { workers: 1, ..ServeConfig::default() });
    let spec = JobSpec { workload: Workload::Cordic { iterations: 0, p: 2 }, ..JobSpec::default() };
    let r = server.run(spec).expect("admission still succeeds");
    assert_eq!(r.state, JobState::Quarantined);
    assert!(r.error.as_deref().unwrap_or("").contains("invalid workload"), "{r:?}");
}

#[test]
fn repeated_request_is_served_from_cache_and_corruption_evicts() {
    let server = quick_server("cache", ServeConfig { workers: 1, ..ServeConfig::default() });
    let spec = JobSpec { durable: false, ..campaign_spec(0xCAC4E, 6) };

    let first = server.run(spec).expect("first run");
    assert_eq!(first.state, JobState::Done);
    assert_eq!(first.cache, CacheStatus::Miss);
    assert_eq!(first.executed_trials, 6);
    assert!(!first.report.is_empty());

    let second = server.run(spec).expect("second run");
    assert_eq!(second.cache, CacheStatus::Hit);
    assert_eq!(second.executed_trials, 0, "cache hit must not re-simulate");
    assert_eq!(second.report, first.report, "cached report is byte-identical");

    // Flip a payload byte under the CRC: the next identical request
    // must detect the corruption, evict, and re-run.
    assert!(server.corrupt_cache_entry(&spec), "entry exists to corrupt");
    let third = server.run(spec).expect("third run");
    assert_eq!(third.cache, CacheStatus::Miss, "corrupt entry evicted, job re-ran");
    assert_eq!(third.report, first.report);
    let counters = server.telemetry().serve_counters();
    assert_eq!(counters.cache_evictions, 1);
    assert_eq!(counters.cache_hits, 1);

    let fourth = server.run(spec).expect("fourth run");
    assert_eq!(fourth.cache, CacheStatus::Hit, "re-ran result repopulated the cache");
}

/// Walks the SSJL framing (25-byte header, then `len u32 | payload |
/// crc32` frames) and truncates `path` to its first `keep` records —
/// the on-disk state a kill -9 after `keep` completed trials leaves.
fn truncate_journal(path: &Path, keep: usize) {
    let bytes = std::fs::read(path).expect("journal readable");
    let mut pos = 25usize;
    for _ in 0..keep {
        let len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("frame length")) as usize;
        pos += 8 + len;
    }
    assert!(pos < bytes.len(), "truncation must drop at least one frame");
    let file = std::fs::OpenOptions::new().write(true).open(path).expect("open journal");
    file.set_len(pos as u64).expect("truncate journal");
}

#[test]
fn crash_resume_reports_are_byte_identical_across_worker_counts() {
    let spec = JobSpec { use_cache: false, ..campaign_spec(0xD00D, 8) };

    // Reference: a clean full run, leaving a complete journal behind.
    let reference_server =
        quick_server("resume-ref", ServeConfig { workers: 1, ..ServeConfig::default() });
    let reference = reference_server.run(spec).expect("reference run");
    assert_eq!(reference.state, JobState::Done);
    assert!(reference.durable);
    assert_eq!(reference.executed_trials, 8);
    assert_eq!(reference.resumed_trials, 0);
    let full_journal = reference_server.journal_path(&spec);
    assert!(full_journal.exists());

    for campaign_workers in [1usize, 2, 5] {
        let spool = scratch(&format!("resume-w{campaign_workers}"));
        std::fs::create_dir_all(&spool).expect("spool dir");
        let partial = softsim_serve::server::journal_path(&spool, &spec);
        std::fs::copy(&full_journal, &partial).expect("seed partial journal");
        truncate_journal(&partial, 3);

        let server = Server::start(ServeConfig {
            workers: 1,
            campaign_workers,
            spool,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let resumed = server.run(spec).expect("resumed run");
        assert_eq!(resumed.state, JobState::Done, "workers={campaign_workers}");
        assert!(resumed.durable, "workers={campaign_workers}");
        assert_eq!(resumed.resumed_trials, 3, "workers={campaign_workers}");
        assert_eq!(resumed.executed_trials, 5, "workers={campaign_workers}");
        assert_eq!(
            resumed.report, reference.report,
            "resume must be byte-identical at workers={campaign_workers}"
        );
    }
}

#[test]
fn recovery_jobs_resume_from_their_own_journal() {
    let spec = JobSpec {
        kind: JobKind::Recovery,
        workload: Workload::Cordic { iterations: 8, p: 2 },
        seed: 0xFA17,
        trials: 6,
        use_cache: false,
        ..JobSpec::default()
    };
    let reference_server =
        quick_server("recovery-ref", ServeConfig { workers: 1, ..ServeConfig::default() });
    let reference = reference_server.run(spec).expect("reference run");
    assert_eq!(reference.state, JobState::Done);
    assert!(reference.durable);
    let full_journal = reference_server.journal_path(&spec);
    assert!(full_journal.to_string_lossy().ends_with(".recovery.ssjl"));

    let spool = scratch("recovery-resume");
    std::fs::create_dir_all(&spool).expect("spool dir");
    let partial = softsim_serve::server::journal_path(&spool, &spec);
    std::fs::copy(&full_journal, &partial).expect("seed partial journal");
    truncate_journal(&partial, 2);

    let server = Server::start(ServeConfig {
        workers: 1,
        campaign_workers: 2,
        spool,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let resumed = server.run(spec).expect("resumed run");
    assert_eq!(resumed.resumed_trials, 2);
    assert_eq!(resumed.executed_trials, 4);
    assert_eq!(resumed.report, reference.report, "recovery resume is byte-identical");
}

#[test]
fn stale_journal_for_a_different_plan_self_heals() {
    // Same spool, two specs forced onto the same journal path by
    // copying: the durable runner sees a plan-hash mismatch and must
    // discard + re-run fresh instead of quarantining.
    let server_a = quick_server("stale-a", ServeConfig { workers: 1, ..ServeConfig::default() });
    let spec_a = JobSpec { use_cache: false, ..campaign_spec(0xAAAA, 6) };
    let a = server_a.run(spec_a).expect("first campaign");
    assert_eq!(a.state, JobState::Done);

    let spec_b = JobSpec { use_cache: false, ..campaign_spec(0xBBBB, 6) };
    let spool = scratch("stale-b");
    std::fs::create_dir_all(&spool).expect("spool dir");
    // Plant spec_a's journal where spec_b's belongs.
    std::fs::copy(
        server_a.journal_path(&spec_a),
        softsim_serve::server::journal_path(&spool, &spec_b),
    )
    .expect("plant stale journal");
    let server_b =
        Server::start(ServeConfig { workers: 1, spool, ..ServeConfig::default() }).expect("start");
    let b = server_b.run(spec_b).expect("self-healed run");
    assert_eq!(b.state, JobState::Done, "{b:?}");
    assert!(b.durable);
    assert_eq!(b.resumed_trials, 0, "stale journal discarded, fresh run");
    assert_ne!(b.report, a.report, "different seed, different campaign");
}
