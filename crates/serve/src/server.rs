//! The in-process server: a supervised worker pool behind the bounded
//! admission queue, with deadlines, retry/backoff, quarantine,
//! crash-resumable durable campaigns, degraded-mode admission and the
//! memoization cache.
//!
//! Job lifecycle (the robustness state machine of DESIGN.md §16):
//!
//! ```text
//! submitted ─▸ admitted ─▸ running ─▸ done
//!      │          │           ├────▸ retried ─▸ (running again)
//!      │          │           └────▸ quarantined
//!      │          └─ (watermark) ──▸ degraded (still runs, flagged)
//!      └────────────▸ shed (queue full / evicted / deadline / shutdown)
//! ```
//!
//! Every terminal state is a typed value — overload and crashes never
//! surface as panics or unbounded queues.

use crate::cache::{CacheLookup, MemoCache};
use crate::catalog::{self, JobKind, JobSpec, Workload};
use crate::queue::{Admission, BoundedQueue, QueueConfig};
use softsim_metrics::telemetry::{ServeEvent, SpanKind, SpanRecord, Telemetry};
use softsim_resilience::{
    resume_from_journal, resume_recovery_from_journal, run_campaign_durable_with_status,
    run_campaign_parallel_with_telemetry, run_recovery_campaign_durable_with_status,
    run_recovery_campaign_parallel_with_telemetry, CampaignConfig, CampaignReport, JournalError,
    RecoveryReport,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Pool worker threads (each runs one job at a time).
    pub workers: usize,
    /// Worker threads *inside* one campaign/recovery job.
    pub campaign_workers: usize,
    /// Admission queue sizing.
    pub queue: QueueConfig,
    /// Directory for per-job durable journals.
    pub spool: PathBuf,
    /// Attempts after the first before a job is quarantined.
    pub max_job_retries: u32,
    /// Base backoff between attempts (doubles each retry).
    pub retry_backoff: Duration,
    /// Memoization cache capacity in entries (0 disables).
    pub cache_entries: usize,
    /// Start with the pool paused: jobs queue but do not run until
    /// [`Server::release`]. Lets tests and benches build a
    /// deterministic backlog.
    pub hold: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            campaign_workers: 1,
            queue: QueueConfig::default(),
            spool: std::env::temp_dir().join("softsim-serve-spool"),
            max_job_retries: 2,
            retry_backoff: Duration::from_millis(10),
            cache_entries: 256,
            hold: false,
        }
    }
}

/// Why a job was shed instead of run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The queue was full of equal-or-higher-priority work.
    QueueFull {
        /// Queue population at rejection.
        depth: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// A higher-priority arrival evicted this queued job.
    Evicted {
        /// Id of the evicting job.
        by: u64,
    },
    /// The job's deadline expired while it was still queued.
    DeadlineExpired {
        /// How long it had waited, in milliseconds.
        waited_ms: u64,
    },
    /// The server was shutting down.
    ShuttingDown,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull { depth, capacity } => {
                write!(f, "queue full ({depth}/{capacity})")
            }
            ShedReason::Evicted { by } => write!(f, "evicted by higher-priority job {by}"),
            ShedReason::DeadlineExpired { waited_ms } => {
                write!(f, "deadline expired after {waited_ms}ms queued")
            }
            ShedReason::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

/// Typed overload rejection returned by [`Server::submit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shed {
    /// Why admission failed.
    pub reason: ShedReason,
}

impl std::fmt::Display for Shed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job shed: {}", self.reason)
    }
}

impl std::error::Error for Shed {}

/// Terminal classification of a finished job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Ran to completion (possibly after retries, possibly degraded).
    Done,
    /// Never ran; see [`JobResult::shed`].
    Shed,
    /// Exhausted its retries (or failed validation); see
    /// [`JobResult::error`].
    Quarantined,
}

impl JobState {
    /// Wire name of this state.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Done => "done",
            JobState::Shed => "shed",
            JobState::Quarantined => "quarantined",
        }
    }
}

/// How the memoization cache participated in a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the cache; nothing was simulated.
    Hit,
    /// Ran and populated the cache.
    Miss,
    /// The spec opted out of caching.
    Bypass,
}

impl CacheStatus {
    /// Wire name of this status.
    pub fn label(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Bypass => "bypass",
        }
    }
}

/// The terminal record of a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobResult {
    /// Job id assigned at submission.
    pub id: u64,
    /// Terminal state.
    pub state: JobState,
    /// Shed detail when `state == Shed`.
    pub shed: Option<ShedReason>,
    /// Cache participation.
    pub cache: CacheStatus,
    /// The job ran in reduced-fidelity mode (bit-exact, flagged).
    pub degraded: bool,
    /// Every completed trial reached the journal (durable jobs only;
    /// `false` after a write-side degrade or for non-durable jobs).
    pub durable: bool,
    /// Attempts consumed after the first.
    pub retries: u32,
    /// Trials actually simulated by this job (0 on a cache hit; on a
    /// crash-resume, only the missing remainder).
    pub executed_trials: u32,
    /// Trials recovered from the spool journal instead of re-run.
    pub resumed_trials: u32,
    /// Non-fatal warning (e.g. journal write degraded mid-run).
    pub warning: Option<String>,
    /// Failure detail when `state == Quarantined`.
    pub error: Option<String>,
    /// Deterministic report text (empty unless `Done`).
    pub report: String,
}

impl JobResult {
    fn shed(id: u64, reason: ShedReason) -> JobResult {
        JobResult {
            id,
            state: JobState::Shed,
            shed: Some(reason),
            cache: CacheStatus::Bypass,
            degraded: false,
            durable: false,
            retries: 0,
            executed_trials: 0,
            resumed_trials: 0,
            warning: None,
            error: None,
            report: String::new(),
        }
    }
}

/// Where a submitted job currently is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the admission queue.
    Queued,
    /// Executing on a pool worker.
    Running,
    /// Terminal; the result is final.
    Finished(JobResult),
}

/// Point-in-time health/readiness snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Health {
    /// Accepting submissions.
    pub ready: bool,
    /// Jobs waiting in the queue.
    pub queue_depth: usize,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Pool worker threads.
    pub workers: usize,
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    submitted: Instant,
    degraded: bool,
}

struct State {
    queue: BoundedQueue<QueuedJob>,
    jobs: HashMap<u64, JobStatus>,
    running: usize,
    next_id: u64,
    cache: MemoCache,
    hold: bool,
}

struct Inner {
    config: ServeConfig,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    telemetry: Arc<Telemetry>,
    shutdown: AtomicBool,
}

/// The in-process simulation server. See the module docs for the
/// lifecycle; [`crate::net`] exposes the same API over TCP.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Starts the pool and returns the running server.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        Server::start_with_telemetry(config, Arc::new(Telemetry::default()))
    }

    /// [`Server::start`] sharing an existing telemetry hub.
    pub fn start_with_telemetry(
        config: ServeConfig,
        telemetry: Arc<Telemetry>,
    ) -> std::io::Result<Server> {
        std::fs::create_dir_all(&config.spool)?;
        let state = State {
            queue: BoundedQueue::new(config.queue.capacity),
            jobs: HashMap::new(),
            running: 0,
            next_id: 1,
            cache: MemoCache::new(config.cache_entries),
            hold: config.hold,
        };
        let inner = Arc::new(Inner {
            config,
            state: Mutex::new(state),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            telemetry,
            shutdown: AtomicBool::new(false),
        });
        inner.publish_gauges();
        let mut handles = Vec::new();
        for w in 0..inner.config.workers.max(1) {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&inner, w as u32))
                    .expect("spawn worker"),
            );
        }
        Ok(Server { inner, workers: Mutex::new(handles) })
    }

    /// The telemetry hub (Prometheus exposition via
    /// [`Telemetry::to_prometheus`]).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.inner.telemetry
    }

    /// Submits a job, returning its id or a typed [`Shed`] rejection.
    /// An invalid workload is admitted and immediately quarantined so
    /// the caller gets a structured result rather than an admission
    /// error.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, Shed> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::SeqCst) {
            inner.telemetry.serve_event(ServeEvent::Shed);
            return Err(Shed { reason: ShedReason::ShuttingDown });
        }
        let mut state = lock(&inner.state);
        let id = state.next_id;
        state.next_id += 1;
        if let Err(msg) = spec.workload.validate() {
            let mut result = JobResult::shed(id, ShedReason::ShuttingDown);
            result.state = JobState::Quarantined;
            result.shed = None;
            result.error = Some(format!("invalid workload: {msg}"));
            state.jobs.insert(id, JobStatus::Finished(result));
            inner.telemetry.serve_event(ServeEvent::Quarantined);
            drop(state);
            inner.done_cv.notify_all();
            return Ok(id);
        }
        let degraded = state.queue.len() >= inner.config.queue.degrade_watermark;
        let job = QueuedJob { id, spec, submitted: Instant::now(), degraded };
        match state.queue.push(job, spec.priority) {
            Admission::Admitted => {}
            Admission::AdmittedEvicting(victim) => {
                let result = JobResult::shed(victim.id, ShedReason::Evicted { by: id });
                state.jobs.insert(victim.id, JobStatus::Finished(result));
                inner.telemetry.serve_event(ServeEvent::Shed);
            }
            Admission::Rejected { depth, capacity } => {
                inner.telemetry.serve_event(ServeEvent::Shed);
                inner.publish_gauges_locked(&state);
                return Err(Shed { reason: ShedReason::QueueFull { depth, capacity } });
            }
        }
        state.jobs.insert(id, JobStatus::Queued);
        inner.telemetry.serve_event(ServeEvent::Admitted);
        if degraded {
            inner.telemetry.serve_event(ServeEvent::Degraded);
        }
        inner.publish_gauges_locked(&state);
        drop(state);
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
        Ok(id)
    }

    /// Releases a pool started with [`ServeConfig::hold`]; no-op
    /// otherwise.
    pub fn release(&self) {
        lock(&self.inner.state).hold = false;
        self.inner.work_cv.notify_all();
    }

    /// Current status of `id` (None for unknown ids).
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        lock(&self.inner.state).jobs.get(&id).cloned()
    }

    /// Blocks until `id` finishes, up to `timeout`. Returns `None` on
    /// timeout or unknown id.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobResult> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.inner.state);
        loop {
            match state.jobs.get(&id) {
                Some(JobStatus::Finished(result)) => return Some(result.clone()),
                None => return None,
                _ => {}
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (s, _) = self
                .inner
                .done_cv
                .wait_timeout(state, left.min(Duration::from_millis(100)))
                .unwrap_or_else(|e| e.into_inner());
            state = s;
        }
    }

    /// Submit + wait: the one-call blocking API.
    pub fn run(&self, spec: JobSpec) -> Result<JobResult, Shed> {
        let id = self.submit(spec)?;
        Ok(self.wait(id, Duration::from_secs(600)).expect("job finishes within 600s"))
    }

    /// Health/readiness snapshot.
    pub fn health(&self) -> Health {
        let state = lock(&self.inner.state);
        Health {
            ready: !self.inner.shutdown.load(Ordering::SeqCst),
            queue_depth: state.queue.len(),
            queue_capacity: state.queue.capacity(),
            running: state.running,
            workers: self.inner.config.workers.max(1),
        }
    }

    /// Prometheus text exposition of the hub (harness + serve families).
    pub fn metrics(&self) -> String {
        self.inner.telemetry.to_prometheus()
    }

    /// The spool journal a durable job of `spec` writes.
    pub fn journal_path(&self, spec: &JobSpec) -> PathBuf {
        journal_path(&self.inner.config.spool, spec)
    }

    /// Test hook: corrupts the cached payload of `spec`'s entry (CRC
    /// left stale), so the next identical request must detect it, evict
    /// and re-run.
    #[doc(hidden)]
    pub fn corrupt_cache_entry(&self, spec: &JobSpec) -> bool {
        lock(&self.inner.state).cache.corrupt(spec.content_hash())
    }

    /// Stops accepting work, sheds everything still queued, and joins
    /// the pool. Idempotent; also called on drop.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut state = lock(&self.inner.state);
            state.hold = false;
            for job in state.queue.drain() {
                let result = JobResult::shed(job.id, ShedReason::ShuttingDown);
                state.jobs.insert(job.id, JobStatus::Finished(result));
                self.inner.telemetry.serve_event(ServeEvent::Shed);
            }
            self.inner.publish_gauges_locked(&state);
        }
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
        for handle in lock(&self.workers).drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn publish_gauges(&self) {
        let state = lock(&self.state);
        self.publish_gauges_locked(&state);
    }

    fn publish_gauges_locked(&self, state: &State) {
        self.telemetry.set_serve_queue(
            state.queue.len() as u64,
            state.queue.capacity() as u64,
            state.running as u64,
            !self.shutdown.load(Ordering::SeqCst),
        );
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The spool journal for `spec` (content-addressed; recovery jobs get
/// their own suffix so a campaign and a recovery of the same seed never
/// collide).
pub fn journal_path(spool: &std::path::Path, spec: &JobSpec) -> PathBuf {
    let suffix = match spec.kind {
        JobKind::Recovery => "recovery.ssjl",
        _ => "ssjl",
    };
    spool.join(format!("{:016x}.{suffix}", spec.content_hash()))
}

fn worker_loop(inner: &Inner, worker: u32) {
    loop {
        let job = {
            let mut state = lock(&inner.state);
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !state.hold {
                    if let Some(job) = state.queue.pop() {
                        break job;
                    }
                }
                let (s, _) = inner
                    .work_cv
                    .wait_timeout(state, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                state = s;
            }
        };
        let id = job.id;
        {
            let mut state = lock(&inner.state);
            state.jobs.insert(id, JobStatus::Running);
            state.running += 1;
            inner.publish_gauges_locked(&state);
        }
        let job_start = Instant::now();
        let result = run_entry(inner, job, worker);
        inner.telemetry.record(SpanRecord::new(SpanKind::Job, worker, job_start.elapsed()));
        let mut state = lock(&inner.state);
        state.running -= 1;
        state.jobs.insert(id, JobStatus::Finished(result));
        inner.publish_gauges_locked(&state);
        drop(state);
        inner.done_cv.notify_all();
    }
}

/// One admitted job, end to end: deadline check, cache probe, guarded
/// execution with retry/backoff, quarantine, cache fill.
fn run_entry(inner: &Inner, job: QueuedJob, _worker: u32) -> JobResult {
    let QueuedJob { id, spec, submitted, degraded } = job;
    if let Some(deadline_ms) = spec.deadline_ms {
        let waited = submitted.elapsed();
        if waited > Duration::from_millis(deadline_ms) {
            inner.telemetry.serve_event(ServeEvent::Shed);
            return JobResult::shed(
                id,
                ShedReason::DeadlineExpired { waited_ms: waited.as_millis() as u64 },
            );
        }
    }

    let key = spec.content_hash();
    let mut cache = CacheStatus::Bypass;
    if spec.use_cache {
        match lock(&inner.state).cache.get(key) {
            CacheLookup::Hit(payload) => {
                inner.telemetry.serve_event(ServeEvent::CacheHit);
                inner.telemetry.serve_event(ServeEvent::Completed);
                let durable = payload.first() == Some(&1);
                let report = String::from_utf8_lossy(&payload[1..]).into_owned();
                return JobResult {
                    id,
                    state: JobState::Done,
                    shed: None,
                    cache: CacheStatus::Hit,
                    degraded,
                    durable,
                    retries: 0,
                    executed_trials: 0,
                    resumed_trials: 0,
                    warning: None,
                    error: None,
                    report,
                };
            }
            CacheLookup::Corrupt => {
                inner.telemetry.serve_event(ServeEvent::CacheEvict);
                inner.telemetry.serve_event(ServeEvent::CacheMiss);
                cache = CacheStatus::Miss;
            }
            CacheLookup::Miss => {
                inner.telemetry.serve_event(ServeEvent::CacheMiss);
                cache = CacheStatus::Miss;
            }
        }
    }

    let mut retries = 0;
    let mut last_panic = String::new();
    while retries <= inner.config.max_job_retries {
        let attempt = catch_unwind(AssertUnwindSafe(|| execute(inner, &spec, degraded)));
        match attempt {
            Ok(exec) => {
                inner.telemetry.serve_event(ServeEvent::Completed);
                if spec.use_cache {
                    let mut payload = Vec::with_capacity(1 + exec.report.len());
                    payload.push(exec.durable as u8);
                    payload.extend_from_slice(exec.report.as_bytes());
                    lock(&inner.state).cache.insert(key, payload);
                }
                return JobResult {
                    id,
                    state: JobState::Done,
                    shed: None,
                    cache,
                    degraded,
                    durable: exec.durable,
                    retries,
                    executed_trials: exec.executed_trials,
                    resumed_trials: exec.resumed_trials,
                    warning: exec.warning,
                    error: None,
                    report: exec.report,
                };
            }
            Err(panic) => {
                last_panic = panic_message(panic);
                retries += 1;
                if retries <= inner.config.max_job_retries {
                    inner.telemetry.serve_event(ServeEvent::Retried);
                    let backoff =
                        inner.config.retry_backoff.saturating_mul(1u32 << (retries - 1).min(16));
                    std::thread::sleep(backoff);
                }
            }
        }
    }
    inner.telemetry.serve_event(ServeEvent::Quarantined);
    JobResult {
        id,
        state: JobState::Quarantined,
        shed: None,
        cache,
        degraded,
        durable: false,
        retries: retries - 1,
        executed_trials: 0,
        resumed_trials: 0,
        warning: None,
        error: Some(format!("quarantined after {} attempts: {last_panic}", retries)),
        report: String::new(),
    }
}

struct ExecOutput {
    report: String,
    durable: bool,
    executed_trials: u32,
    resumed_trials: u32,
    warning: Option<String>,
}

/// Runs the spec's work. Panics (including deliberate crash-test
/// builds and journal errors) unwind to the retry loop above.
fn execute(inner: &Inner, spec: &JobSpec, degraded: bool) -> ExecOutput {
    let workload = spec.workload;
    let telemetry = Some(&*inner.telemetry);
    let config = CampaignConfig {
        trial_cycle_budget: spec.trial_cycle_budget,
        trial_wall_budget: spec.trial_wall_budget_ms.map(Duration::from_millis),
        fast_forward: true,
        ..CampaignConfig::default()
    };
    match spec.kind {
        JobKind::Simulate => {
            let (base, n) = catalog::observe_window(workload);
            let mut sim = catalog::build_sim(workload, degraded);
            let stop = sim.run(10_000_000);
            assert_eq!(stop, softsim_cosim::CoSimStop::Halted, "simulate must halt: {stop}");
            let cycles = sim.cpu().stats().cycles;
            let observed = catalog::observe_words(&sim, base, n);
            ExecOutput {
                report: render_simulate(workload, cycles, &observed),
                durable: false,
                executed_trials: 1,
                resumed_trials: 0,
                warning: None,
            }
        }
        JobKind::Sweep => {
            let mut out = format!("sweep {}\n", workload.label());
            let mut executed = 0;
            for i in 0..spec.trials.max(1) {
                let point = match workload {
                    Workload::Cordic { iterations, .. } => {
                        Workload::Cordic { iterations, p: [2, 4, 6, 8][i as usize % 4] }
                    }
                    other => other,
                };
                let mut sim = catalog::build_sim(point, degraded);
                let stop = sim.run(10_000_000);
                assert_eq!(stop, softsim_cosim::CoSimStop::Halted, "sweep point halts: {stop}");
                out.push_str(&format!(
                    "  point {i}: {} cycles={}\n",
                    render_workload(point),
                    sim.cpu().stats().cycles
                ));
                executed += 1;
            }
            ExecOutput {
                report: out,
                durable: false,
                executed_trials: executed,
                resumed_trials: 0,
                warning: None,
            }
        }
        JobKind::Campaign => {
            let plan = catalog::campaign_plan(workload, spec.seed, spec.trials);
            let (base, n) = catalog::observe_window(workload);
            let observe = move |s: &softsim_cosim::CoSim| catalog::observe_words(s, base, n);
            let make_sim = || catalog::build_sim(workload, degraded);
            if !spec.durable {
                let report = run_campaign_parallel_with_telemetry(
                    make_sim,
                    &plan,
                    observe,
                    config,
                    inner.config.campaign_workers.max(1),
                    telemetry,
                );
                return ExecOutput {
                    report: render_campaign(spec, &report),
                    durable: false,
                    executed_trials: spec.trials,
                    resumed_trials: 0,
                    warning: None,
                };
            }
            let journal = journal_path(&inner.config.spool, spec);
            let mut resumed = match resume_from_journal(&journal) {
                Ok(scan) => scan.done() as u32,
                Err(_) => {
                    // Missing file is a fresh start; an unreadable
                    // journal is discarded the same way.
                    let _ = std::fs::remove_file(&journal);
                    0
                }
            };
            let workers = inner.config.campaign_workers.max(1);
            let mut outcome = run_campaign_durable_with_status(
                make_sim,
                &plan,
                observe,
                config,
                &journal,
                resumed > 0,
                workers,
                telemetry,
                None,
            );
            if matches!(
                outcome,
                Err(JournalError::PlanMismatch { .. } | JournalError::TrialCountMismatch { .. })
            ) {
                // A stale journal for a different plan (e.g. a hash
                // collision in the spool) self-heals: discard and run
                // fresh rather than quarantining the job.
                let _ = std::fs::remove_file(&journal);
                resumed = 0;
                outcome = run_campaign_durable_with_status(
                    make_sim, &plan, observe, config, &journal, false, workers, telemetry, None,
                );
            }
            let (report, status) =
                outcome.unwrap_or_else(|e| panic!("durable campaign failed: {e}"));
            ExecOutput {
                report: render_campaign(spec, &report),
                durable: status.durable,
                executed_trials: spec.trials.saturating_sub(resumed),
                resumed_trials: resumed,
                warning: status.warning,
            }
        }
        JobKind::Recovery => {
            let plan = catalog::recovery_plan(workload, spec.seed, spec.trials);
            let (base, n) = catalog::observe_window(workload);
            let observe = move |s: &softsim_cosim::CoSim| catalog::observe_words(s, base, n);
            let make_sim = || catalog::build_sim(workload, degraded);
            let policy = catalog::recovery_policy();
            if !spec.durable {
                let report = run_recovery_campaign_parallel_with_telemetry(
                    make_sim,
                    &plan,
                    observe,
                    policy,
                    inner.config.campaign_workers.max(1),
                    telemetry,
                );
                return ExecOutput {
                    report: render_recovery(spec, &report),
                    durable: false,
                    executed_trials: spec.trials,
                    resumed_trials: 0,
                    warning: None,
                };
            }
            let journal = journal_path(&inner.config.spool, spec);
            let mut resumed = match resume_recovery_from_journal(&journal) {
                Ok(scan) => scan.done() as u32,
                Err(_) => {
                    let _ = std::fs::remove_file(&journal);
                    0
                }
            };
            let workers = inner.config.campaign_workers.max(1);
            let mut outcome = run_recovery_campaign_durable_with_status(
                make_sim,
                &plan,
                observe,
                policy,
                &journal,
                resumed > 0,
                workers,
                telemetry,
                None,
            );
            if matches!(
                outcome,
                Err(JournalError::PlanMismatch { .. } | JournalError::TrialCountMismatch { .. })
            ) {
                let _ = std::fs::remove_file(&journal);
                resumed = 0;
                outcome = run_recovery_campaign_durable_with_status(
                    make_sim, &plan, observe, policy, &journal, false, workers, telemetry, None,
                );
            }
            let (report, status) =
                outcome.unwrap_or_else(|e| panic!("durable recovery campaign failed: {e}"));
            ExecOutput {
                report: render_recovery(spec, &report),
                durable: status.durable,
                executed_trials: spec.trials.saturating_sub(resumed),
                resumed_trials: resumed,
                warning: status.warning,
            }
        }
    }
}

fn render_workload(w: Workload) -> String {
    match w {
        Workload::Cordic { iterations, p } => format!("cordic iters={iterations} p={p}"),
        Workload::Matmul { n, nb } => format!("matmul n={n} nb={nb}"),
        Workload::CrashTest => "crash_test".to_string(),
    }
}

fn render_simulate(w: Workload, cycles: u64, observed: &[u32]) -> String {
    let words: Vec<String> = observed.iter().map(|w| format!("{w:08x}")).collect();
    format!("simulate {} cycles={cycles} observed=[{}]\n", render_workload(w), words.join(" "))
}

/// Deterministic campaign report text: everything here derives from the
/// byte-reproducible `CampaignReport`, so two runs of the same spec
/// byte-diff clean — the property the cache, the resume check and CI
/// all key on.
fn render_campaign(spec: &JobSpec, report: &CampaignReport) -> String {
    let mut out = format!(
        "campaign {} seed={:#x} trials={} golden_cycles={}\n",
        render_workload(spec.workload),
        spec.seed,
        spec.trials,
        report.golden_cycles
    );
    let cov = report.coverage();
    out.push_str(&format!(
        "coverage completed={} budget={} abandoned={} retried={}\n",
        cov.completed, cov.budget, cov.abandoned, cov.retried
    ));
    for (i, t) in report.trials.iter().enumerate() {
        out.push_str(&format!(
            "trial {i}: cycle={} outcome={}\n",
            t.injection.cycle,
            t.outcome.label()
        ));
    }
    out
}

fn render_recovery(spec: &JobSpec, report: &RecoveryReport) -> String {
    let mut out = format!(
        "recovery {} seed={:#x} trials={} golden_cycles={}\n",
        render_workload(spec.workload),
        spec.seed,
        spec.trials,
        report.golden_cycles
    );
    let (clean, recovered, unrecoverable) = report.counts();
    out.push_str(&format!(
        "counts clean={clean} recovered={recovered} unrecoverable={unrecoverable}\n"
    ));
    for (i, t) in report.trials.iter().enumerate() {
        out.push_str(&format!(
            "trial {i}: cycle={} outcome={}\n",
            t.injection.cycle,
            t.outcome.label()
        ));
    }
    out
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}
