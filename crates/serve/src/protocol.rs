//! The line-oriented JSON wire protocol.
//!
//! One request per line, one JSON response per line. Ops:
//!
//! * `{"op":"run", ...spec}` — submit and block for the result.
//! * `{"op":"submit", ...spec}` — submit, return `{"id":N}`.
//! * `{"op":"wait","id":N}` — block for job `N`'s result.
//! * `{"op":"status","id":N}` — non-blocking job status.
//! * `{"op":"health"}` — readiness + queue gauges.
//! * `{"op":"metrics"}` — Prometheus exposition (JSON-escaped).
//! * `{"op":"shutdown"}` — drain, shed, stop.
//!
//! Spec fields (all optional, with [`crate::JobSpec::default`]'s
//! values): `kind`, `workload`, `iterations`, `p`, `n`, `nb`, `seed`,
//! `trials`, `priority`, `cycle_budget`, `wall_budget_ms`,
//! `deadline_ms`, `durable`, `cache` (`"use"` or `"bypass"`).
//!
//! Responses are deterministic functions of deterministic state: a
//! `run` response for a given spec byte-diffs clean across runs,
//! restarts and worker counts — CI's resume check relies on it.

use crate::catalog::{JobKind, JobSpec, Priority, Workload};
use crate::server::{Health, JobResult, JobStatus, Server};
use softsim_trace::json::{parse, Value};
use std::time::Duration;

/// Escapes `s` for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(|x| x.as_f64()).map(|f| f as u64)
}

fn field_bool(v: &Value, key: &str) -> Option<bool> {
    match v.get(key) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// Parses a job spec out of a request object, starting from defaults.
pub fn parse_spec(v: &Value) -> Result<JobSpec, String> {
    let mut spec = JobSpec::default();
    if let Some(kind) = v.get("kind").and_then(|x| x.as_str()) {
        spec.kind = JobKind::parse(kind).ok_or_else(|| format!("unknown kind {kind:?}"))?;
    }
    let workload = v.get("workload").and_then(|x| x.as_str()).unwrap_or("cordic");
    spec.workload = match workload {
        "cordic" => Workload::Cordic {
            iterations: field_u64(v, "iterations").unwrap_or(8) as u32,
            p: field_u64(v, "p").unwrap_or(2) as usize,
        },
        "matmul" => Workload::Matmul {
            n: field_u64(v, "n").unwrap_or(4) as usize,
            nb: field_u64(v, "nb").unwrap_or(2) as usize,
        },
        "crash_test" => Workload::CrashTest,
        other => return Err(format!("unknown workload {other:?}")),
    };
    if let Some(seed) = field_u64(v, "seed") {
        spec.seed = seed;
    }
    if let Some(trials) = field_u64(v, "trials") {
        spec.trials = trials as u32;
    }
    if let Some(p) = v.get("priority").and_then(|x| x.as_str()) {
        spec.priority = Priority::parse(p).ok_or_else(|| format!("unknown priority {p:?}"))?;
    }
    spec.trial_cycle_budget = field_u64(v, "cycle_budget");
    spec.trial_wall_budget_ms = field_u64(v, "wall_budget_ms");
    spec.deadline_ms = field_u64(v, "deadline_ms");
    if let Some(durable) = field_bool(v, "durable") {
        spec.durable = durable;
    }
    if let Some(cache) = v.get("cache").and_then(|x| x.as_str()) {
        spec.use_cache = match cache {
            "use" => true,
            "bypass" => false,
            other => return Err(format!("cache must be \"use\" or \"bypass\", got {other:?}")),
        };
    }
    Ok(spec)
}

/// Renders a terminal job result.
pub fn render_result(r: &JobResult) -> String {
    let mut out = format!(
        "{{\"id\":{},\"state\":\"{}\",\"cache\":\"{}\",\"degraded\":{},\"durable\":{},\
         \"retries\":{},\"executed_trials\":{},\"resumed_trials\":{}",
        r.id,
        r.state.label(),
        r.cache.label(),
        r.degraded,
        r.durable,
        r.retries,
        r.executed_trials,
        r.resumed_trials,
    );
    if let Some(shed) = &r.shed {
        out.push_str(&format!(",\"shed\":\"{}\"", escape_json(&shed.to_string())));
    }
    if let Some(w) = &r.warning {
        out.push_str(&format!(",\"warning\":\"{}\"", escape_json(w)));
    }
    if let Some(e) = &r.error {
        out.push_str(&format!(",\"error\":\"{}\"", escape_json(e)));
    }
    out.push_str(&format!(",\"report\":\"{}\"}}", escape_json(&r.report)));
    out
}

fn render_health(h: &Health) -> String {
    format!(
        "{{\"ready\":{},\"queue_depth\":{},\"queue_capacity\":{},\"running\":{},\"workers\":{}}}",
        h.ready, h.queue_depth, h.queue_capacity, h.running, h.workers,
    )
}

fn error_line(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape_json(msg))
}

/// Whether [`handle_line`]'s response means the connection (and for
/// `shutdown`, the server) should close.
pub enum Disposition {
    /// Keep serving this connection.
    Continue,
    /// The client asked the server to shut down.
    Shutdown,
}

/// Handles one request line against `server`, returning the response
/// line (no trailing newline) and what to do next.
pub fn handle_line(server: &Server, line: &str) -> (String, Disposition) {
    let v = match parse(line) {
        Ok(v) => v,
        Err(e) => return (error_line(&format!("bad request: {e}")), Disposition::Continue),
    };
    let op = v.get("op").and_then(|x| x.as_str()).unwrap_or("run");
    match op {
        "run" => match parse_spec(&v) {
            Err(e) => (error_line(&e), Disposition::Continue),
            Ok(spec) => match server.run(spec) {
                Ok(result) => (render_result(&result), Disposition::Continue),
                Err(shed) => (
                    format!("{{\"shed\":\"{}\"}}", escape_json(&shed.reason.to_string())),
                    Disposition::Continue,
                ),
            },
        },
        "submit" => match parse_spec(&v) {
            Err(e) => (error_line(&e), Disposition::Continue),
            Ok(spec) => match server.submit(spec) {
                Ok(id) => (format!("{{\"id\":{id}}}"), Disposition::Continue),
                Err(shed) => (
                    format!("{{\"shed\":\"{}\"}}", escape_json(&shed.reason.to_string())),
                    Disposition::Continue,
                ),
            },
        },
        "wait" => match field_u64(&v, "id") {
            None => (error_line("wait needs an id"), Disposition::Continue),
            Some(id) => match server.wait(id, Duration::from_secs(600)) {
                Some(result) => (render_result(&result), Disposition::Continue),
                None => (error_line(&format!("unknown job {id}")), Disposition::Continue),
            },
        },
        "status" => match field_u64(&v, "id") {
            None => (error_line("status needs an id"), Disposition::Continue),
            Some(id) => {
                let line = match server.status(id) {
                    None => error_line(&format!("unknown job {id}")),
                    Some(JobStatus::Queued) => format!("{{\"id\":{id},\"status\":\"queued\"}}"),
                    Some(JobStatus::Running) => format!("{{\"id\":{id},\"status\":\"running\"}}"),
                    Some(JobStatus::Finished(r)) => render_result(&r),
                };
                (line, Disposition::Continue)
            }
        },
        "health" => (render_health(&server.health()), Disposition::Continue),
        "metrics" => (
            format!("{{\"metrics\":\"{}\"}}", escape_json(&server.metrics())),
            Disposition::Continue,
        ),
        "shutdown" => {
            server.shutdown();
            ("{\"ok\":\"shutting down\"}".to_string(), Disposition::Shutdown)
        }
        other => (error_line(&format!("unknown op {other:?}")), Disposition::Continue),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_applies_defaults_and_overrides() {
        let v = parse("{\"op\":\"run\"}").unwrap();
        let spec = parse_spec(&v).unwrap();
        assert_eq!(spec, JobSpec::default());

        let v = parse(
            "{\"op\":\"run\",\"kind\":\"recovery\",\"workload\":\"matmul\",\"n\":8,\"nb\":4,\
             \"seed\":7,\"trials\":5,\"priority\":\"high\",\"durable\":false,\
             \"cache\":\"bypass\",\"deadline_ms\":250}",
        )
        .unwrap();
        let spec = parse_spec(&v).unwrap();
        assert_eq!(spec.kind, JobKind::Recovery);
        assert_eq!(spec.workload, Workload::Matmul { n: 8, nb: 4 });
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.trials, 5);
        assert_eq!(spec.priority, Priority::High);
        assert!(!spec.durable);
        assert!(!spec.use_cache);
        assert_eq!(spec.deadline_ms, Some(250));
    }

    #[test]
    fn spec_parsing_rejects_unknowns_with_messages() {
        for (req, needle) in [
            ("{\"kind\":\"frobnicate\"}", "unknown kind"),
            ("{\"workload\":\"quux\"}", "unknown workload"),
            ("{\"priority\":\"urgent\"}", "unknown priority"),
            ("{\"cache\":\"maybe\"}", "cache must be"),
        ] {
            let v = parse(req).unwrap();
            let err = parse_spec(&v).expect_err(req);
            assert!(err.contains(needle), "{req} -> {err}");
        }
    }

    #[test]
    fn escaping_round_trips_through_the_house_parser() {
        let nasty = "line\nbreak \"quote\" back\\slash\ttab";
        let line = format!("{{\"s\":\"{}\"}}", escape_json(nasty));
        let v = parse(&line).expect("escaped string parses");
        assert_eq!(v.get("s").and_then(|x| x.as_str()), Some(nasty));
    }
}
