//! Bounded, priority-classed admission queue.
//!
//! Three FIFO classes ([`crate::Priority`]); the total population is
//! capped by [`QueueConfig::capacity`]. A push into a full queue either
//! evicts the newest job of a strictly lower class (making room for the
//! higher-priority arrival) or is rejected outright — both are typed
//! [`Admission`] outcomes, so overload can never grow memory without
//! bound or panic.

use crate::catalog::Priority;
use std::collections::VecDeque;

/// Sizing of the admission queue.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Maximum jobs waiting across all classes.
    pub capacity: usize,
    /// Queue depth at or above which new jobs are admitted in
    /// reduced-fidelity (degraded) mode.
    pub degrade_watermark: usize,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig { capacity: 64, degrade_watermark: 48 }
    }
}

/// The typed outcome of an admission attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Admission<T> {
    /// The item is queued.
    Admitted,
    /// The item is queued; a lower-priority victim was evicted to make
    /// room and is returned to the caller for a shed response.
    AdmittedEvicting(T),
    /// The queue is full of equal-or-higher-priority work.
    Rejected {
        /// Queue population at rejection.
        depth: usize,
        /// Configured capacity.
        capacity: usize,
    },
}

/// A bounded three-class priority queue.
pub struct BoundedQueue<T> {
    classes: [VecDeque<T>; 3],
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue bounded by `capacity`.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue { classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()], capacity }
    }

    /// Jobs waiting across all classes.
    pub fn len(&self) -> usize {
        self.classes.iter().map(|c| c.len()).sum()
    }

    /// `true` when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(|c| c.is_empty())
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Attempts to queue `item` at `priority`. At capacity, the newest
    /// item of the lowest non-empty class *below* `priority` is evicted
    /// to make room; with no lower class populated the push is
    /// rejected. Never exceeds capacity.
    pub fn push(&mut self, item: T, priority: Priority) -> Admission<T> {
        if self.len() < self.capacity {
            self.classes[priority.rank()].push_back(item);
            return Admission::Admitted;
        }
        for lower in 0..priority.rank() {
            if let Some(victim) = self.classes[lower].pop_back() {
                self.classes[priority.rank()].push_back(item);
                return Admission::AdmittedEvicting(victim);
            }
        }
        Admission::Rejected { depth: self.len(), capacity: self.capacity }
    }

    /// Pops the oldest item of the highest populated class.
    pub fn pop(&mut self) -> Option<T> {
        self.classes.iter_mut().rev().find_map(|c| c.pop_front())
    }

    /// Drains every waiting item, highest class first (shutdown path).
    pub fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(item) = self.pop() {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_fifo_with_priority_pop_order() {
        let mut q = BoundedQueue::new(4);
        assert_eq!(q.push(1, Priority::Low), Admission::Admitted);
        assert_eq!(q.push(2, Priority::Normal), Admission::Admitted);
        assert_eq!(q.push(3, Priority::High), Admission::Admitted);
        assert_eq!(q.push(4, Priority::Normal), Admission::Admitted);
        assert_eq!(q.pop(), Some(3), "high first");
        assert_eq!(q.pop(), Some(2), "then normal, FIFO");
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), Some(1), "low last");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_rejects_equal_priority_and_evicts_lower() {
        let mut q = BoundedQueue::new(2);
        q.push(1, Priority::Normal);
        q.push(2, Priority::Normal);
        // Same class: typed rejection with the observed depth.
        assert_eq!(q.push(3, Priority::Normal), Admission::Rejected { depth: 2, capacity: 2 });
        assert_eq!(q.len(), 2, "rejection does not grow the queue");
        // Higher class: the newest normal item is evicted.
        assert_eq!(q.push(4, Priority::High), Admission::AdmittedEvicting(2));
        assert_eq!(q.len(), 2, "eviction keeps the bound");
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn low_priority_never_evicts() {
        let mut q = BoundedQueue::new(1);
        q.push(1, Priority::Low);
        assert_eq!(q.push(2, Priority::Low), Admission::Rejected { depth: 1, capacity: 1 });
    }

    #[test]
    fn drain_empties_highest_first() {
        let mut q = BoundedQueue::new(8);
        q.push(1, Priority::Low);
        q.push(2, Priority::High);
        q.push(3, Priority::Normal);
        assert_eq!(q.drain(), vec![2, 3, 1]);
        assert!(q.is_empty());
    }
}
