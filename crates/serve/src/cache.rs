//! Content-addressed memoization cache for job results.
//!
//! Keyed by [`crate::JobSpec::content_hash`]; every entry carries a
//! CRC-32 of its payload, verified on read. A corrupt entry is evicted
//! and reported as [`CacheLookup::Corrupt`] — the job then re-runs, so
//! a flipped bit in the cache can cost time but never correctness.

use softsim_resilience::crc32;
use std::collections::{HashMap, VecDeque};

/// The outcome of a cache probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheLookup {
    /// CRC-verified payload.
    Hit(Vec<u8>),
    /// No entry for the key.
    Miss,
    /// An entry existed but failed its CRC; it has been evicted.
    Corrupt,
}

struct Entry {
    crc: u32,
    payload: Vec<u8>,
}

/// A bounded FIFO memoization cache with CRC-verified entries.
pub struct MemoCache {
    capacity: usize,
    map: HashMap<u64, Entry>,
    order: VecDeque<u64>,
    evictions: u64,
}

impl MemoCache {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> MemoCache {
        MemoCache { capacity, map: HashMap::new(), order: VecDeque::new(), evictions: 0 }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted so far (capacity + corruption).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Probes `key`, verifying the stored CRC before trusting the
    /// payload.
    pub fn get(&mut self, key: u64) -> CacheLookup {
        match self.map.get(&key) {
            None => CacheLookup::Miss,
            Some(e) if crc32(&e.payload) == e.crc => CacheLookup::Hit(e.payload.clone()),
            Some(_) => {
                self.map.remove(&key);
                self.order.retain(|&k| k != key);
                self.evictions += 1;
                CacheLookup::Corrupt
            }
        }
    }

    /// Stores `payload` under `key`, evicting the oldest entry when at
    /// capacity.
    pub fn insert(&mut self, key: u64, payload: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key, Entry { crc: crc32(&payload), payload }).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                    self.evictions += 1;
                }
            }
        }
    }

    /// Test hook: flips a byte of `key`'s stored payload (without
    /// updating its CRC), returning `false` if the key is absent or
    /// empty. The next [`MemoCache::get`] must detect and evict it.
    pub fn corrupt(&mut self, key: u64) -> bool {
        match self.map.get_mut(&key) {
            Some(e) if !e.payload.is_empty() => {
                e.payload[0] ^= 0xFF;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_fifo_capacity() {
        let mut c = MemoCache::new(2);
        assert_eq!(c.get(1), CacheLookup::Miss);
        c.insert(1, vec![1, 2, 3]);
        c.insert(2, vec![4]);
        assert_eq!(c.get(1), CacheLookup::Hit(vec![1, 2, 3]));
        c.insert(3, vec![5]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), CacheLookup::Miss, "oldest entry evicted at capacity");
        assert_eq!(c.evictions(), 1);
        // Re-inserting an existing key does not grow the cache.
        c.insert(2, vec![9, 9]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2), CacheLookup::Hit(vec![9, 9]));
    }

    #[test]
    fn corrupt_entry_is_detected_and_evicted() {
        let mut c = MemoCache::new(4);
        c.insert(7, vec![10, 20, 30]);
        assert!(c.corrupt(7));
        assert_eq!(c.get(7), CacheLookup::Corrupt, "CRC catches the flipped byte");
        assert_eq!(c.get(7), CacheLookup::Miss, "the corrupt entry is gone");
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = MemoCache::new(0);
        c.insert(1, vec![1]);
        assert_eq!(c.get(1), CacheLookup::Miss);
        assert!(c.is_empty());
    }
}
