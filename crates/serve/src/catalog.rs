//! The job catalog: which workloads the service can run, how a job is
//! specified, and the deterministic recipes (simulator, observables,
//! injection plans) behind each workload.
//!
//! The recipes reproduce the canonical configurations of
//! `softsim-bench` (the dependency points the other way — bench's
//! `--serve-json` drives this crate), so a campaign served here is
//! byte-identical to the same campaign run by `tables`.

use softsim_apps::cordic::reference as cordic_ref;
use softsim_apps::cordic::software::{hw_program, CordicBatch};
use softsim_apps::matmul::reference::Matrix;
use softsim_apps::matmul::software as mm_sw;
use softsim_cosim::CoSim;
use softsim_isa::asm::assemble;
use softsim_isa::Image;
use softsim_resilience::{random_plan, random_plan_hardware, Injection, RecoveryPolicy};

/// What a job asks the service to do with its workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// One fault-free run to halt; returns cycles and observables.
    Simulate,
    /// A seeded fault-injection campaign (durable when requested).
    Campaign,
    /// A seeded rollback-recovery campaign.
    Recovery,
    /// A small deterministic parameter sweep of fault-free runs.
    Sweep,
}

impl JobKind {
    /// Wire name of this kind.
    pub fn label(self) -> &'static str {
        match self {
            JobKind::Simulate => "simulate",
            JobKind::Campaign => "campaign",
            JobKind::Recovery => "recovery",
            JobKind::Sweep => "sweep",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<JobKind> {
        Some(match s {
            "simulate" => JobKind::Simulate,
            "campaign" => JobKind::Campaign,
            "recovery" => JobKind::Recovery,
            "sweep" => JobKind::Sweep,
            _ => return None,
        })
    }
}

/// Scheduling class of a job. Under overload, lower classes are shed
/// first; within a class the queue is FIFO.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Shed first.
    Low,
    /// The default class.
    Normal,
    /// Evicts queued lower-class jobs when the queue is full.
    High,
}

impl Priority {
    /// Queue class index (0 = Low).
    pub fn rank(self) -> usize {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Wire name of this priority.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Priority> {
        Some(match s {
            "low" => Priority::Low,
            "normal" => Priority::Normal,
            "high" => Priority::High,
            _ => return None,
        })
    }
}

/// A workload the catalog can build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// The hardware-accelerated CORDIC divider over the canonical
    /// 8-pair batch.
    Cordic {
        /// CORDIC iterations per result.
        iterations: u32,
        /// Processing elements in the peripheral.
        p: usize,
    },
    /// The hardware block matmul over the deterministic test matrices.
    Matmul {
        /// Matrix dimension.
        n: usize,
        /// Block size.
        nb: usize,
    },
    /// A workload whose simulator constructor panics — exercises the
    /// retry/quarantine path deterministically (the service analog of
    /// `FaultKind::HarnessPanic`).
    CrashTest,
}

impl Workload {
    /// Wire name of this workload.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Cordic { .. } => "cordic",
            Workload::Matmul { .. } => "matmul",
            Workload::CrashTest => "crash_test",
        }
    }

    /// Rejects parameter combinations the apps cannot build, with a
    /// message suitable for a typed job rejection. Validation happens
    /// at admission so a bad request never reaches a worker.
    pub fn validate(self) -> Result<(), String> {
        match self {
            Workload::Cordic { iterations, p } => {
                if iterations == 0 || iterations > 64 {
                    return Err(format!("cordic iterations {iterations} outside 1..=64"));
                }
                if p == 0 || p > 8 {
                    return Err(format!("cordic p {p} outside 1..=8"));
                }
                Ok(())
            }
            Workload::Matmul { n, nb } => {
                if n == 0 || n > 32 {
                    return Err(format!("matmul n {n} outside 1..=32"));
                }
                if nb == 0 || nb > n || n % nb != 0 {
                    return Err(format!("matmul nb {nb} must divide n {n}"));
                }
                Ok(())
            }
            Workload::CrashTest => Ok(()),
        }
    }
}

/// A fully-specified job: what to run and under which robustness knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// What to do.
    pub kind: JobKind,
    /// What to run it on.
    pub workload: Workload,
    /// Campaign/recovery plan seed.
    pub seed: u64,
    /// Campaign/recovery trial count (sweep point count for sweeps).
    pub trials: u32,
    /// Scheduling class.
    pub priority: Priority,
    /// Per-trial cycle budget forwarded to the campaign layer.
    pub trial_cycle_budget: Option<u64>,
    /// Per-trial wall budget (milliseconds) forwarded to the campaign
    /// layer. Wall budgets make reports machine-dependent; leave unset
    /// for byte-reproducible output.
    pub trial_wall_budget_ms: Option<u64>,
    /// Whole-job deadline (milliseconds, measured from submission). A
    /// job still queued past its deadline is shed, never started.
    pub deadline_ms: Option<u64>,
    /// Journal campaign trials to the spool for crash-resume.
    pub durable: bool,
    /// Consult and fill the memoization cache.
    pub use_cache: bool,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            kind: JobKind::Campaign,
            workload: Workload::Cordic { iterations: 8, p: 2 },
            seed: 0x5EED_FA17,
            trials: 24,
            priority: Priority::Normal,
            trial_cycle_budget: None,
            trial_wall_budget_ms: None,
            deadline_ms: None,
            durable: true,
            use_cache: true,
        }
    }
}

impl JobSpec {
    /// Content address of this job's *result*: an FNV-1a hash over
    /// every field that affects the output bytes (kind, workload,
    /// seed, trials, budgets) and none that don't (priority, deadline,
    /// durability, cache policy). Two specs with equal hashes produce
    /// byte-identical reports, which is what makes the memoization
    /// cache and the spool's journal naming sound.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.byte(self.kind.label().as_bytes()[0]);
        match self.workload {
            Workload::Cordic { iterations, p } => {
                h.byte(1);
                h.u64(iterations as u64);
                h.u64(p as u64);
            }
            Workload::Matmul { n, nb } => {
                h.byte(2);
                h.u64(n as u64);
                h.u64(nb as u64);
            }
            Workload::CrashTest => h.byte(3),
        }
        h.u64(self.seed);
        h.u64(self.trials as u64);
        h.u64(self.trial_cycle_budget.map_or(u64::MAX, |b| b));
        h.u64(self.trial_wall_budget_ms.map_or(u64::MAX, |b| b));
        h.finish()
    }
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The canonical CORDIC batch (the 8 pairs every bench row uses).
fn cordic_batch() -> CordicBatch {
    let pairs: Vec<(i32, i32)> = [
        (1.0, 0.5),
        (1.5, 1.2),
        (2.0, -1.0),
        (1.25, 0.8),
        (3.0, 2.5),
        (1.1, -0.3),
        (2.75, 1.9),
        (1.9, 0.05),
    ]
    .iter()
    .map(|&(a, b)| (cordic_ref::to_fix(a), cordic_ref::to_fix(b)))
    .collect();
    CordicBatch::new(&pairs)
}

/// The assembled image behind `workload`.
pub fn image(workload: Workload) -> Image {
    match workload {
        Workload::Cordic { iterations, p } => {
            assemble(&hw_program(&cordic_batch(), iterations, p)).expect("cordic hw assembles")
        }
        Workload::Matmul { n, nb } => {
            let (a, b) = (Matrix::test_pattern(n, 7), Matrix::test_pattern(n, 8));
            assemble(&mm_sw::hw_program(&a, &b, nb)).expect("matmul assembles")
        }
        Workload::CrashTest => panic!("crash-test workload build (deliberate)"),
    }
}

/// A fresh co-simulator for `workload`. `degraded` arms the
/// reduced-fidelity knobs (stall fast-forward + block translation) —
/// both are bit-exact accelerations, so a degraded job's report equals
/// the full-fidelity one; only the wall-clock drops.
pub fn build_sim(workload: Workload, degraded: bool) -> CoSim {
    let img = image(workload);
    let mut sim = match workload {
        Workload::Cordic { p, .. } => {
            CoSim::with_peripheral(&img, softsim_apps::cordic::hardware::cordic_peripheral(p))
        }
        Workload::Matmul { nb, .. } => {
            CoSim::with_peripheral(&img, softsim_apps::matmul::hardware::matmul_peripheral(nb))
        }
        Workload::CrashTest => unreachable!("image() panicked first"),
    };
    if degraded {
        sim.set_fast_forward(true);
        sim.set_translation(true);
    }
    sim
}

/// The observable window of `workload`: result base address and word
/// count, read back after every run for classification.
pub fn observe_window(workload: Workload) -> (u32, usize) {
    let img = image(workload);
    match workload {
        Workload::Cordic { .. } => {
            (img.symbol("z_data").expect("cordic result label"), cordic_batch().len())
        }
        Workload::Matmul { n, .. } => (img.symbol("c_data").expect("matmul result label"), n * n),
        Workload::CrashTest => unreachable!("image() panicked first"),
    }
}

/// Reads the observable window out of a halted simulator.
pub fn observe_words(sim: &CoSim, base: u32, n: usize) -> Vec<u32> {
    (0..n).map(|i| sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap()).collect()
}

/// Cycles the fault-free workload takes to halt.
pub fn golden_cycles(workload: Workload) -> u64 {
    let mut sim = build_sim(workload, false);
    let stop = sim.run(10_000_000);
    assert_eq!(stop, softsim_cosim::CoSimStop::Halted, "workload must halt: {stop}");
    sim.cpu().stats().cycles
}

/// The seeded injection plan of a campaign job (identical to the bench
/// harness's recipe: window in the live part of the golden run, SEU +
/// protocol faults on channels 0 and 1).
pub fn campaign_plan(workload: Workload, seed: u64, trials: u32) -> Vec<Injection> {
    let golden = golden_cycles(workload);
    let bytes = image(workload).bytes().len() as u32;
    random_plan(seed, trials as usize, (golden / 10, golden), bytes, &[0, 1])
}

/// The seeded plan of a recovery job (hardware-survivable faults only,
/// channel 0 — the recovery harness's recipe).
pub fn recovery_plan(workload: Workload, seed: u64, trials: u32) -> Vec<Injection> {
    let golden = golden_cycles(workload);
    let bytes = image(workload).bytes().len() as u32;
    random_plan_hardware(seed, trials as usize, (golden / 10, golden), bytes, &[0])
}

/// The recovery policy served jobs run under (the bench harness's
/// reporting policy: tight checkpoints, quick watchdog).
pub fn recovery_policy() -> RecoveryPolicy {
    RecoveryPolicy { checkpoint_every: 256, watchdog_threshold: 2_000, ..RecoveryPolicy::default() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_covers_results_not_policy() {
        let a = JobSpec::default();
        let mut b = a;
        b.priority = Priority::High;
        b.deadline_ms = Some(5);
        b.durable = false;
        b.use_cache = false;
        assert_eq!(a.content_hash(), b.content_hash(), "policy knobs don't change results");
        let mut c = a;
        c.seed ^= 1;
        assert_ne!(a.content_hash(), c.content_hash());
        let mut d = a;
        d.trials += 1;
        assert_ne!(a.content_hash(), d.content_hash());
        let mut e = a;
        e.workload = Workload::Matmul { n: 4, nb: 2 };
        assert_ne!(a.content_hash(), e.content_hash());
    }

    #[test]
    fn validation_rejects_unbuildable_workloads() {
        assert!(Workload::Cordic { iterations: 8, p: 2 }.validate().is_ok());
        assert!(Workload::Cordic { iterations: 0, p: 2 }.validate().is_err());
        assert!(Workload::Cordic { iterations: 8, p: 9 }.validate().is_err());
        assert!(Workload::Matmul { n: 4, nb: 2 }.validate().is_ok());
        assert!(Workload::Matmul { n: 4, nb: 3 }.validate().is_err());
        assert!(Workload::Matmul { n: 0, nb: 1 }.validate().is_err());
    }

    #[test]
    fn degraded_sim_is_bit_exact() {
        let w = Workload::Cordic { iterations: 8, p: 2 };
        let (base, n) = observe_window(w);
        let mut full = build_sim(w, false);
        let mut degraded = build_sim(w, true);
        assert_eq!(full.run(10_000_000), softsim_cosim::CoSimStop::Halted);
        assert_eq!(degraded.run(10_000_000), softsim_cosim::CoSimStop::Halted);
        assert_eq!(full.cpu().stats().cycles, degraded.cpu().stats().cycles);
        assert_eq!(observe_words(&full, base, n), observe_words(&degraded, base, n));
    }
}
