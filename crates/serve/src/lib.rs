//! `softsim-serve`: a fault-tolerant batched simulation service.
//!
//! ROADMAP item 2's serving layer: simulation, fault-campaign,
//! recovery-campaign and sweep jobs submitted to a supervised worker
//! pool, over an in-process [`Server`] API or the line-oriented JSON
//! protocol of [`net`]. Robustness is the headline:
//!
//! * **Admission control** — a bounded three-class priority queue
//!   ([`queue::BoundedQueue`]); overload produces typed
//!   [`server::Shed`] rejections and priority-based eviction, never
//!   unbounded memory growth.
//! * **Deadlines, retry, quarantine** — per-job wall/cycle deadlines
//!   compose with the campaign layer's trial budgets; a job attempt
//!   that panics is caught (`catch_unwind`), retried with exponential
//!   backoff, and quarantined after the configured retries. Workers
//!   survive every panic.
//! * **Crash-resume** — durable campaign jobs journal every trial into
//!   a per-job `SSJL` spool file; a `kill -9` of the server followed by
//!   a restart re-runs only the missing trials, and the merged report
//!   is byte-identical to an uninterrupted run at any worker count.
//! * **Graceful degradation** — above a queue watermark, new jobs are
//!   admitted in reduced-fidelity mode (stall fast-forward + block
//!   translation on — bit-exact, just cheaper) and the downgrade is
//!   recorded in the job result.
//! * **Memoization** — a content-addressed cache keyed by the FNV-1a
//!   hash of (program, config, seed), CRC-verified on every read with
//!   corrupt-entry eviction; a repeated identical request is a cache
//!   hit, not a re-simulation.
//! * **Observability** — health/readiness, queue depth and per-job
//!   lifecycle counters surfaced through the
//!   `softsim_metrics::telemetry` hub and its Prometheus exposition.

#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod net;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CacheLookup, MemoCache};
pub use catalog::{JobKind, JobSpec, Priority, Workload};
pub use queue::{Admission, BoundedQueue, QueueConfig};
pub use server::{
    CacheStatus, Health, JobResult, JobState, JobStatus, ServeConfig, Server, Shed, ShedReason,
};
