//! TCP front-end: line-oriented JSON over a plain socket.
//!
//! [`serve`] runs an accept loop against an already-bound listener and
//! handles each connection on its own scoped thread, so a stalled
//! client never blocks admission for the others. The listener polls in
//! non-blocking mode (~25 ms) and exits once the server stops being
//! ready — either a local [`crate::Server::shutdown`] or a remote
//! `{"op":"shutdown"}` — and connection threads notice the same flag
//! through their read timeout, so shutdown converges without killing
//! in-flight responses.
//!
//! [`request`] is the matching one-shot client used by the CLI's
//! `--request` mode and by CI smoke checks.

use crate::protocol::{handle_line, Disposition};
use crate::server::Server;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// How often the accept loop and idle connections re-check readiness.
const POLL: Duration = Duration::from_millis(25);

/// Serves `server` on `listener` until shutdown. Blocks the caller;
/// returns once the accept loop has exited and every connection thread
/// has joined.
pub fn serve(server: &Server, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| {
        while server.health().ready {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    scope.spawn(move || {
                        if let Err(e) = handle_connection(server, stream) {
                            eprintln!("warning: connection error: {e}");
                        }
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) => return Err(e),
            }
        }
        Ok(())
    })
}

fn handle_connection(server: &Server, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(POLL * 20))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {
                let request = std::mem::take(&mut line);
                if request.trim().is_empty() {
                    continue;
                }
                let (response, disposition) = handle_line(server, request.trim());
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                if let Disposition::Shutdown = disposition {
                    return Ok(());
                }
            }
            // Read timeout: `line` may hold a partial request that the
            // next read_line call keeps appending to. Keep waiting
            // while the server is up; bail out once it is draining.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if !server.health().ready {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// One-shot client: sends `line` to `addr` and returns the single
/// response line (trailing newline stripped).
pub fn request(addr: &str, line: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    while response.ends_with('\n') || response.ends_with('\r') {
        response.pop();
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use std::net::TcpListener;

    #[test]
    fn tcp_round_trip_health_then_remote_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = Server::start(ServeConfig {
            workers: 1,
            spool: std::env::temp_dir().join("softsim-serve-net-test"),
            ..ServeConfig::default()
        })
        .expect("start");
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| serve(&server, listener));
            let health = request(&addr, "{\"op\":\"health\"}").expect("health");
            assert!(health.contains("\"ready\":true"), "{health}");
            let bad = request(&addr, "{\"op\":\"frobnicate\"}").expect("bad op");
            assert!(bad.contains("unknown op"), "{bad}");
            let bye = request(&addr, "{\"op\":\"shutdown\"}").expect("shutdown");
            assert!(bye.contains("shutting down"), "{bye}");
            handle.join().expect("accept loop").expect("serve");
        });
    }
}
