//! `serve` — the softsim simulation service CLI.
//!
//! Server mode (default): bind a TCP listener and serve line-oriented
//! JSON jobs until `{"op":"shutdown"}` or process death. Client mode
//! (`--request`): send one request line to a running server, print the
//! response, exit.
//!
//! ```text
//! serve [--listen ADDR] [--workers N] [--campaign-workers N]
//!       [--queue N] [--watermark N] [--spool DIR] [--hold]
//! serve --request ADDR JSON
//! ```
//!
//! Environment is validated eagerly: an invalid
//! `SOFTSIM_ABORT_AFTER_TRIALS` is a configuration error (exit 2) at
//! startup, not a surprise mid-campaign.

use softsim_serve::{net, ServeConfig, Server};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

enum Mode {
    Serve(String, ServeConfig),
    Request(String, String),
    Help,
}

fn operand(it: &mut std::slice::Iter<'_, String>, name: &str) -> Result<String, String> {
    it.next().cloned().ok_or_else(|| format!("{name} needs an operand"))
}

fn parse_count(value: &str, flag: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("invalid {flag}={value:?}: expected a positive integer")),
    }
}

fn parse_args(args: &[String]) -> Result<Mode, String> {
    let mut listen = String::from("127.0.0.1:7878");
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => listen = operand(&mut it, "--listen")?,
            "--workers" => {
                config.workers = parse_count(&operand(&mut it, "--workers")?, "--workers")?;
            }
            "--campaign-workers" => {
                config.campaign_workers =
                    parse_count(&operand(&mut it, "--campaign-workers")?, "--campaign-workers")?;
            }
            "--queue" => {
                config.queue.capacity = parse_count(&operand(&mut it, "--queue")?, "--queue")?;
            }
            "--watermark" => {
                config.queue.degrade_watermark =
                    parse_count(&operand(&mut it, "--watermark")?, "--watermark")?;
            }
            "--spool" => config.spool = PathBuf::from(operand(&mut it, "--spool")?),
            "--hold" => config.hold = true,
            "--request" => {
                let addr = operand(&mut it, "--request")?;
                let line = operand(&mut it, "--request")?;
                return Ok(Mode::Request(addr, line));
            }
            "--help" | "-h" => return Ok(Mode::Help),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Mode::Serve(listen, config))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve [--listen ADDR] [--workers N] [--campaign-workers N] \
         [--queue N] [--watermark N] [--spool DIR] [--hold]\n\
         \x20      serve --request ADDR JSON"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    // Fail fast on bad environment before any work is admitted.
    if let Err(e) = softsim_resilience::abort_after_trials_from_env() {
        eprintln!("configuration error: {e}");
        return ExitCode::from(2);
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match parse_args(&args) {
        Ok(mode) => mode,
        Err(e) => {
            eprintln!("configuration error: {e}");
            return usage();
        }
    };
    let (listen, config) = match mode {
        Mode::Help => return usage(),
        Mode::Request(addr, line) => {
            return match net::request(&addr, &line) {
                Ok(response) => {
                    println!("{response}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: request to {addr} failed: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        Mode::Serve(listen, config) => (listen, config),
    };

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(listen);
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("serve: listening on {bound}");
    match net::serve(&server, listener) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
