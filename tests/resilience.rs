//! Integration tests for the resilience layer: checkpoint → inject →
//! resume determinism, deadlock detection on mis-sized FIFOs, the
//! checkpoint byte format, stuck-flag protocol faults, and a full
//! seeded CORDIC fault campaign.

use softsim::apps::cordic::hardware::cordic_peripheral;
use softsim::apps::cordic::reference::to_fix;
use softsim::apps::cordic::software::{hw_program, CordicBatch};
use softsim::bus::FslBank;
use softsim::cosim::{CoSim, CoSimStop, DeadlockCause};
use softsim::isa::asm::assemble;
use softsim::isa::Image;
use softsim::resilience::{
    from_bytes, random_plan, run_campaign, snapshot, CampaignConfig, FaultKind, Injection,
    Injector, Outcome, SnapshotError,
};
use softsim::trace::FifoDir;

/// The CORDIC workload every test here drives: four divisions, eight
/// iterations, two PEs.
fn cordic_image() -> Image {
    let batch = CordicBatch::new(&[
        (to_fix(1.0), to_fix(0.5)),
        (to_fix(1.5), to_fix(1.2)),
        (to_fix(2.0), to_fix(-1.0)),
        (to_fix(1.25), to_fix(0.8)),
    ]);
    assemble(&hw_program(&batch, 8, 2)).expect("cordic assembles")
}

fn cordic_sim() -> CoSim {
    CoSim::with_peripheral(&cordic_image(), cordic_peripheral(2))
}

/// Reads the four CORDIC quotients from local memory.
fn observe(sim: &CoSim, img: &Image) -> Vec<u32> {
    let base = img.symbol("z_data").expect("result label");
    (0..4).map(|i| sim.cpu().mem().read_u32(base + 4 * i).unwrap()).collect()
}

/// Runs to `checkpoint` cycles, snapshots, injects `kind`, resumes to
/// completion; returns everything an identical replay must reproduce.
fn checkpoint_inject_resume(
    checkpoint: u64,
    kind: FaultKind,
) -> (Vec<u8>, CoSimStop, Vec<u32>, softsim::iss::CpuStats) {
    let img = cordic_image();
    let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(2));
    while sim.cpu().stats().cycles < checkpoint {
        sim.step();
    }
    let state = sim.save_state();
    let bytes = snapshot::to_bytes(&state);

    // Restore into a *fresh* co-simulator, as a checkpoint file would be.
    let mut sim2 = CoSim::with_peripheral(&img, cordic_peripheral(2));
    sim2.load_state(&from_bytes(&bytes).expect("decodes"));
    Injector::apply(&mut sim2, kind);
    sim2.set_watchdog(5_000);
    let stop = sim2.run(100_000);
    (bytes, stop, observe(&sim2, &img), sim2.cpu().stats())
}

#[test]
fn checkpoint_inject_resume_is_deterministic() {
    let kind = FaultKind::RegBitFlip { reg: 3, bit: 17 };
    let (bytes_a, stop_a, obs_a, stats_a) = checkpoint_inject_resume(200, kind);
    let (bytes_b, stop_b, obs_b, stats_b) = checkpoint_inject_resume(200, kind);
    assert_eq!(bytes_a, bytes_b, "checkpoint bytes must be identical");
    assert_eq!(stop_a, stop_b);
    assert_eq!(obs_a, obs_b);
    assert_eq!(stats_a, stats_b, "replayed CpuStats must be byte-identical");
}

#[test]
fn restored_run_matches_uninterrupted_run() {
    let img = cordic_image();
    // Uninterrupted reference.
    let mut gold = CoSim::with_peripheral(&img, cordic_peripheral(2));
    assert_eq!(gold.run(100_000), CoSimStop::Halted);

    // Same run, but checkpointed and restored halfway through.
    let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(2));
    while sim.cpu().stats().cycles < 300 {
        sim.step();
    }
    let state = sim.save_state();
    let mut resumed = CoSim::with_peripheral(&img, cordic_peripheral(2));
    resumed.load_state(&state);
    assert_eq!(resumed.run(100_000), CoSimStop::Halted);
    assert_eq!(resumed.cpu().stats(), gold.cpu().stats());
    assert_eq!(resumed.hw_stats(), gold.hw_stats());
    assert_eq!(observe(&resumed, &img), observe(&gold, &img));
}

#[test]
fn snapshot_bytes_round_trip_and_reject_garbage() {
    let mut sim = cordic_sim();
    for _ in 0..150 {
        sim.step();
    }
    let state = sim.save_state();
    let bytes = snapshot::to_bytes(&state);
    assert_eq!(from_bytes(&bytes).expect("round-trips"), state);

    // Chopping the trailer leaves payload bytes where the CRC should be.
    assert_eq!(from_bytes(&bytes[..bytes.len() - 3]), Err(SnapshotError::ChecksumMismatch));
    assert_eq!(from_bytes(&bytes[..10]), Err(SnapshotError::Truncated));
    let mut padded = bytes.clone();
    padded.push(0);
    assert_eq!(from_bytes(&padded), Err(SnapshotError::ChecksumMismatch));
    assert_eq!(from_bytes(b"NOPE"), Err(SnapshotError::BadMagic));
    let mut wrong_version = bytes.clone();
    wrong_version[4] = 0xFF;
    assert_eq!(from_bytes(&wrong_version), Err(SnapshotError::VersionUnsupported(0xFF)));
    assert_eq!(from_bytes(&bytes[..3]), Err(SnapshotError::Truncated));
}

/// Every rejection path of the hardened checkpoint decoder, including
/// the two the CRC alone cannot express: a corrupted payload with a
/// *recomputed* (valid) trailer must still be rejected structurally,
/// and a bit flip anywhere under the trailer must be caught by it.
#[test]
fn snapshot_crc_catches_corruption_and_structure_checks_back_it_up() {
    let mut sim = cordic_sim();
    for _ in 0..150 {
        sim.step();
    }
    let bytes = snapshot::to_bytes(&sim.save_state());

    // Known-answer check for the public CRC so external tooling can
    // interoperate ("123456789" is the standard IEEE test vector).
    assert_eq!(snapshot::crc32(b"123456789"), 0xCBF4_3926);

    // A single flipped payload bit anywhere is a checksum mismatch.
    for pos in [8usize, 200, bytes.len() / 2, bytes.len() - 5] {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x10;
        assert_eq!(
            from_bytes(&corrupt),
            Err(SnapshotError::ChecksumMismatch),
            "flip at byte {pos} must be caught"
        );
    }

    // An attacker-style edit that *recomputes* the trailer gets past the
    // CRC but must still fail the structural checks: declare one more
    // trailing byte than exists.
    let mut resealed = bytes.clone();
    let body_end = resealed.len() - 4;
    resealed.insert(body_end, 0);
    let crc = snapshot::crc32(&resealed[..resealed.len() - 4]);
    let at = resealed.len() - 4;
    resealed[at..].copy_from_slice(&crc.to_le_bytes());
    assert_eq!(from_bytes(&resealed), Err(SnapshotError::Corrupt("trailing bytes")));

    // The empty and sub-header streams truncate, never panic.
    assert_eq!(from_bytes(&[]), Err(SnapshotError::Truncated));
    assert_eq!(from_bytes(&bytes[..7]), Err(SnapshotError::Truncated));
}

/// The satellite regression: a burst writer against a mis-sized
/// (depth-1) FIFO with nobody draining it deadlocks, the watchdog names
/// the blocked channel, and two runs agree on the exact cycle.
#[test]
fn depth_one_fifo_burst_writer_deadlocks_deterministically() {
    let run_once = || {
        let img = assemble(
            "\taddik r3, r0, 7\n\
             \tput r3, rfsl0\n\
             \tput r3, rfsl0\n\
             \thalt\n",
        )
        .unwrap();
        let mut sim = CoSim::software_only(&img);
        *sim.fsl_mut() = FslBank::new(1);
        sim.set_watchdog(100);
        sim.run(1_000_000)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "deadlock must be reported on the same cycle across runs");
    match a {
        CoSimStop::Deadlock { cycle, cause: DeadlockCause::FslDeadlock { block } } => {
            assert!(cycle > 0);
            assert_eq!(block.channel, 0);
            assert_eq!(block.dir, FifoDir::ToHw);
        }
        other => panic!("expected an FSL deadlock, got: {other}"),
    }
}

#[test]
fn stuck_empty_flag_starves_reader_into_deadlock() {
    let img = cordic_image();
    let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(2));
    // Stick the result channel's exists flag low before anything runs:
    // the software's first blocking `get` can never complete.
    assert!(Injector::apply(&mut sim, FaultKind::StuckEmpty { channel: 0 }));
    sim.set_watchdog(2_000);
    match sim.run(1_000_000) {
        CoSimStop::Deadlock { cause: DeadlockCause::FslDeadlock { block }, .. } => {
            assert_eq!(block.dir, FifoDir::FromHw);
        }
        other => panic!("expected deadlock from stuck exists flag, got: {other}"),
    }
}

#[test]
fn cycle_limit_reports_blocked_channel() {
    // A blocking get on a channel nothing feeds, no watchdog: the budget
    // expires and the stop must say where the processor was stuck.
    let img = assemble("\tget r3, rfsl4\n\thalt\n").unwrap();
    let mut sim = CoSim::software_only(&img);
    match sim.run(500) {
        CoSimStop::CycleLimit { blocked: Some(block) } => {
            assert_eq!(block.channel, 4);
            assert_eq!(block.dir, FifoDir::FromHw);
        }
        other => panic!("expected a blocked cycle-limit stop, got: {other}"),
    }
}

#[test]
fn stop_and_cause_display_are_prose() {
    let halted = format!("{}", CoSimStop::Halted);
    assert_eq!(halted, "halted");
    let img = assemble("\tget r3, rfsl2\n\thalt\n").unwrap();
    let mut sim = CoSim::software_only(&img);
    sim.set_watchdog(50);
    let stop = sim.run(10_000);
    let text = format!("{stop}");
    assert!(text.contains("deadlock detected at cycle"), "got: {text}");
    assert!(text.contains("blocking get on FSL channel 2"), "got: {text}");
    assert!(
        format!("{}", DeadlockCause::Livelock).contains("no instruction retired"),
        "livelock prose"
    );
    let kind = FaultKind::FifoDrop { dir: FifoDir::ToHw, channel: 3 };
    assert_eq!(format!("{kind}"), "drop the head word of to_hw FSL 3");
    assert_eq!(format!("{}", Outcome::Sdc), "sdc");
    assert_eq!(
        format!("{}", Injection { cycle: 40, kind: FaultKind::RegBitFlip { reg: 5, bit: 1 } }),
        "at cycle 40: flip bit 1 of r5"
    );
}

/// The acceptance-criteria campaign: ≥ 100 injections over the CORDIC
/// co-simulation, every trial classified, no ambiguity about why a run
/// ended, and the whole report reproducible from the seed.
#[test]
fn hundred_injection_cordic_campaign_is_classified_and_deterministic() {
    let img = cordic_image();
    let run = || {
        let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(2));
        let plan = random_plan(0xC0FFEE, 100, (50, 900), img.bytes().len() as u32, &[0, 1]);
        assert_eq!(plan.len(), 100);
        run_campaign(&mut sim, &plan, |s| observe(s, &img), CampaignConfig::default())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "campaign must replay identically from the same seed");
    assert_eq!(a.trials.len(), 100);
    let (m, s, d, f) = a.counts();
    assert_eq!(m + s + d + f, 100, "every trial must land in exactly one class");
    // Any trial that hit the cycle budget must still carry its stall
    // context — no bare, uninformative CycleLimit.
    for t in &a.trials {
        if let CoSimStop::CycleLimit { blocked } = &t.stop {
            assert!(blocked.is_some(), "cycle-limit stop without stall context: {:?}", t.injection);
        }
    }
}

#[test]
fn vacuous_faults_are_counted_but_harmless() {
    let img = cordic_image();
    let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(2));
    // r0 is hardwired to zero: flipping its bits can never change state.
    let mut inj =
        Injector::new(vec![Injection { cycle: 0, kind: FaultKind::RegBitFlip { reg: 0, bit: 9 } }]);
    inj.poll(&mut sim);
    assert!(inj.done());
    assert_eq!(inj.applied(), 0);
    assert_eq!(inj.vacuous(), 1);
    assert_eq!(sim.run(100_000), CoSimStop::Halted);
}
