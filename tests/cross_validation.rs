//! Cross-simulator validation: the high-level co-simulation environment
//! and the low-level RTL baseline must agree *exactly* — same
//! architectural results, same cycle counts — which is precisely the
//! paper's premise ("the functional behavior of the system predicted by
//! the high-level cycle-accurate simulation environment should match the
//! functional behavior of the corresponding low-level implementations").

use softsim::bus::FslBank;
use softsim::isa::inst::{ArithFlags, BarrelOp, FslChan, FslMode, Inst, LogicOp, MemSize, ShiftOp};
use softsim::isa::CpuConfig;
use softsim::isa::{encode, Image, Reg};
use softsim::iss::{Cpu, StopReason};
use softsim::rtl::{RtlStop, SocRtl};
use softsim_testkit::Rng;

/// Generates a random straight-line program (no branches, guaranteed to
/// halt) over the full ALU/memory/FSL-nonblocking instruction space.
fn random_program(rng: &mut Rng, len: usize) -> Image {
    let mut image = Image::new(0);
    let mut addr = 0u32;
    let mut emit = |image: &mut Image, inst: Inst| {
        image.write_u32(addr, encode(&inst));
        addr += 4;
    };
    // r1 = memory base for loads/stores (0x8000, well inside 64 KiB).
    emit(&mut image, Inst::Imm { imm: 0 });
    emit(
        &mut image,
        Inst::AddI { rd: Reg::new(1), ra: Reg::R0, imm: 0x7F00, flags: ArithFlags::KEEP },
    );
    let reg = |rng: &mut Rng| Reg::new(rng.range_u32(0, 32) as u8);
    // Avoid clobbering the base register r1.
    let dst = |rng: &mut Rng| loop {
        let r = rng.range_u32(0, 32) as u8;
        if r != 1 {
            break Reg::new(r);
        }
    };
    for _ in 0..len {
        let inst = match rng.range_u32(0, 15) {
            0 => Inst::Add {
                rd: dst(rng),
                ra: reg(rng),
                rb: reg(rng),
                flags: ArithFlags::from_bits(rng.range_u32(0, 4)),
            },
            1 => Inst::Rsub {
                rd: dst(rng),
                ra: reg(rng),
                rb: reg(rng),
                flags: ArithFlags::from_bits(rng.range_u32(0, 4)),
            },
            2 => Inst::AddI {
                rd: dst(rng),
                ra: reg(rng),
                imm: rng.next_u32() as i16,
                flags: ArithFlags::from_bits(rng.range_u32(0, 4)),
            },
            3 => Inst::Cmp { rd: dst(rng), ra: reg(rng), rb: reg(rng), unsigned: rng.flip() },
            4 => Inst::Mul { rd: dst(rng), ra: reg(rng), rb: reg(rng) },
            5 => Inst::Logic {
                op: *rng.pick(&[LogicOp::Or, LogicOp::And, LogicOp::Xor, LogicOp::Andn]),
                rd: dst(rng),
                ra: reg(rng),
                rb: reg(rng),
            },
            6 => Inst::Shift {
                op: *rng.pick(&[ShiftOp::Sra, ShiftOp::Src, ShiftOp::Srl]),
                rd: dst(rng),
                ra: reg(rng),
            },
            7 => Inst::BarrelI {
                op: *rng.pick(&[BarrelOp::Bsll, BarrelOp::Bsrl, BarrelOp::Bsra]),
                rd: dst(rng),
                ra: reg(rng),
                amount: rng.range_u32(0, 32) as u8,
            },
            8 => Inst::Sext { rd: dst(rng), ra: reg(rng), half: rng.flip() },
            9 => {
                let size = *rng.pick(&[MemSize::Byte, MemSize::Half, MemSize::Word]);
                let align = size.bytes() as i16;
                Inst::LoadI {
                    size,
                    rd: dst(rng),
                    ra: Reg::new(1),
                    imm: rng.range_i16(0, 0x40) * align,
                }
            }
            10 => {
                let size = *rng.pick(&[MemSize::Byte, MemSize::Half, MemSize::Word]);
                let align = size.bytes() as i16;
                Inst::StoreI {
                    size,
                    rd: reg(rng),
                    ra: Reg::new(1),
                    imm: rng.range_i16(0, 0x40) * align,
                }
            }
            11 => Inst::Imm { imm: rng.next_u32() as u16 },
            14 => Inst::Div { rd: dst(rng), ra: reg(rng), rb: reg(rng), unsigned: rng.flip() },
            12 => Inst::Get {
                rd: dst(rng),
                chan: FslChan::new(rng.range_u32(0, 8) as u8),
                mode: FslMode::NONBLOCKING_DATA,
            },
            _ => Inst::Put {
                ra: reg(rng),
                chan: FslChan::new(rng.range_u32(0, 8) as u8),
                mode: FslMode::NONBLOCKING_DATA,
            },
        };
        emit(&mut image, inst);
        // An imm prefix must be followed by an immediate-carrying
        // instruction; simplest: always follow it with an addi.
        if matches!(inst, Inst::Imm { .. }) {
            emit(
                &mut image,
                Inst::AddI {
                    rd: dst(rng),
                    ra: reg(rng),
                    imm: rng.next_u32() as i16,
                    flags: ArithFlags::KEEP,
                },
            );
        }
    }
    emit(&mut image, Inst::Halt);
    image
}

/// Architectural fingerprint after a run: registers, carry, cycle count
/// and a checksum of the touched memory window.
fn iss_fingerprint(image: &Image) -> (Vec<u32>, u64, u64) {
    let mut cpu = Cpu::with_config(image, CpuConfig::full());
    let mut fsl = FslBank::default();
    let stop = cpu.run(&mut fsl, 10_000_000);
    assert_eq!(stop, StopReason::Halted);
    let regs: Vec<u32> = (0..32).map(|i| cpu.reg(Reg::new(i))).collect();
    let mut checksum = 0u64;
    for a in (0x7F00u32..0x8100).step_by(4) {
        checksum = checksum.wrapping_mul(31).wrapping_add(cpu.mem().read_u32(a).unwrap() as u64);
    }
    (regs, checksum, cpu.stats().cycles)
}

fn rtl_fingerprint(image: &Image) -> (Vec<u32>, u64, u64) {
    let mut soc = SocRtl::with_config(image, CpuConfig::full());
    let stop = soc.run(10_000_000);
    assert_eq!(stop, RtlStop::Halted);
    let regs: Vec<u32> = (0..32).map(|i| soc.reg(Reg::new(i))).collect();
    let mut checksum = 0u64;
    for a in (0x7F00u32..0x8100).step_by(4) {
        checksum = checksum.wrapping_mul(31).wrapping_add(soc.mem_word(a) as u64);
    }
    (regs, checksum, soc.cpu_cycles())
}

#[test]
fn iss_and_rtl_agree_on_random_programs() {
    for seed in 0..30u64 {
        let mut rng = Rng::new(seed);
        let image = random_program(&mut rng, 120);
        let (iss_regs, iss_mem, iss_cycles) = iss_fingerprint(&image);
        let (rtl_regs, rtl_mem, rtl_cycles) = rtl_fingerprint(&image);
        assert_eq!(iss_regs, rtl_regs, "registers diverged (seed {seed})");
        assert_eq!(iss_mem, rtl_mem, "memory diverged (seed {seed})");
        assert_eq!(iss_cycles, rtl_cycles, "cycle counts diverged (seed {seed})");
    }
}

#[test]
fn traces_match_instruction_for_instruction() {
    let mut rng = Rng::new(99);
    let image = random_program(&mut rng, 60);
    let mut cpu = Cpu::with_config(&image, CpuConfig::full());
    cpu.enable_trace();
    let mut fsl = FslBank::default();
    assert_eq!(cpu.run(&mut fsl, 1_000_000), StopReason::Halted);
    let mut soc = SocRtl::with_config(&image, CpuConfig::full());
    soc.enable_trace();
    assert_eq!(soc.run(1_000_000), RtlStop::Halted);
    let iss_trace: Vec<(u32, u32)> = cpu.trace().unwrap().iter().map(|t| (t.pc, t.word)).collect();
    assert_eq!(iss_trace, soc.trace(), "retirement streams must be identical");
}

#[test]
fn cosim_and_rtl_agree_on_both_applications() {
    use softsim::apps::cordic;
    use softsim::apps::matmul;
    use softsim::cosim::{CoSim, CoSimStop};
    use softsim::isa::asm::assemble;

    // CORDIC, P = 4.
    let batch = cordic::software::CordicBatch::new(&[
        (cordic::reference::to_fix(1.5), cordic::reference::to_fix(0.7)),
        (cordic::reference::to_fix(2.0), cordic::reference::to_fix(1.5)),
    ]);
    let img = assemble(&cordic::software::hw_program(&batch, 24, 4)).unwrap();
    let mut hi = CoSim::with_peripheral(&img, cordic::hardware::cordic_peripheral(4));
    assert_eq!(hi.run(1_000_000), CoSimStop::Halted);
    let (mut lo, stop) = {
        let mut soc = cordic::rtl::build_cordic_rtl(&img, 4);
        let stop = soc.run(1_000_000);
        (soc, stop)
    };
    assert_eq!(stop, RtlStop::Halted);
    assert_eq!(hi.cpu_stats().cycles, lo.cpu_cycles(), "CORDIC cycle counts");
    let base = img.symbol(cordic::software::RESULT_LABEL).unwrap();
    for i in 0..2 {
        assert_eq!(
            hi.cpu().mem().read_u32(base + 4 * i).unwrap(),
            lo.mem_word(base + 4 * i),
            "CORDIC result {i}"
        );
    }
    let _ = &mut lo;

    // Matmul, 4×4 blocks on an 8×8 product.
    let a = matmul::reference::Matrix::test_pattern(8, 21);
    let b = matmul::reference::Matrix::test_pattern(8, 22);
    let img = assemble(&matmul::software::hw_program(&a, &b, 4)).unwrap();
    let mut hi = CoSim::with_peripheral(&img, matmul::hardware::matmul_peripheral(4));
    assert_eq!(hi.run(10_000_000), CoSimStop::Halted);
    let mut soc = matmul::rtl::build_matmul_rtl(&img, 4);
    assert_eq!(soc.run(10_000_000), RtlStop::Halted);
    assert_eq!(hi.cpu_stats().cycles, soc.cpu_cycles(), "matmul cycle counts");
}

#[test]
fn lpc_over_fsl_matches_rtl() {
    // The Levinson-Durbin program drives the same CORDIC pipeline; the
    // high-level and low-level simulations must agree cycle-exactly here
    // too (serial, latency-sensitive traffic is the hardest case).
    use softsim::apps::cordic::rtl::build_cordic_rtl;
    use softsim::apps::lpc::reference::test_autocorrelation;
    use softsim::apps::lpc::software::{lpc_cosim, LpcDivision};

    let r = test_autocorrelation(5);
    let (mut hi, img) = lpc_cosim(&r, LpcDivision::CordicFsl(4));
    assert_eq!(hi.run(1_000_000), softsim::cosim::CoSimStop::Halted);
    let mut lo = build_cordic_rtl(&img, 4);
    assert_eq!(lo.run(1_000_000), RtlStop::Halted);
    assert_eq!(hi.cpu_stats().cycles, lo.cpu_cycles(), "cycle counts");
    let base = img.symbol("a_data").unwrap();
    for i in 0..=5u32 {
        assert_eq!(
            hi.cpu().mem().read_u32(base + 4 * i).unwrap(),
            lo.mem_word(base + 4 * i),
            "coefficient {i}"
        );
    }
}
