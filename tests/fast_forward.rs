//! Stall fast-forwarding equivalence: a co-simulation run with
//! fast-forwarding enabled must be indistinguishable — halt cycle,
//! processor statistics, hardware statistics, full simulation state,
//! deadlock diagnosis, windowed metrics, trace timeline — from the same
//! run stepped cycle by cycle. The fast path only coalesces cycles in
//! which nothing can change, so every observable total has to land on
//! exactly the same value.

use softsim::apps::cordic::hardware::cordic_peripheral;
use softsim::apps::cordic::reference::to_fix;
use softsim::apps::cordic::software::{hw_program, CordicBatch};
use softsim::apps::matmul::hardware::matmul_peripheral;
use softsim::apps::matmul::reference::Matrix;
use softsim::apps::matmul::software as mm_sw;
use softsim::cosim::{CoSim, CoSimStop};
use softsim::isa::asm::assemble;
use softsim::metrics::MetricsCollector;
use softsim::resilience::{FaultKind, Injector};
use softsim::trace::{shared, Fanout, Recorder, TraceEvent};
use softsim_testkit::cases;
use std::cell::RefCell;
use std::rc::Rc;

/// A CORDIC co-simulator: four divisions, `iters` iterations, `p` PEs.
fn cordic_sim(iters: u32, p: usize) -> CoSim {
    let batch = CordicBatch::new(&[
        (to_fix(1.0), to_fix(0.5)),
        (to_fix(1.5), to_fix(1.2)),
        (to_fix(2.0), to_fix(-1.0)),
        (to_fix(1.25), to_fix(0.8)),
    ]);
    let img = assemble(&hw_program(&batch, iters, p)).expect("cordic assembles");
    CoSim::with_peripheral(&img, cordic_peripheral(p))
}

/// A block-matmul co-simulator, N = `n`, NB = `nb`.
fn matmul_sim(n: usize, nb: usize) -> CoSim {
    let (a, b) = (Matrix::test_pattern(n, 7), Matrix::test_pattern(n, 8));
    let img = assemble(&mm_sw::hw_program(&a, &b, nb)).expect("matmul assembles");
    CoSim::with_peripheral(&img, matmul_peripheral(nb))
}

/// Drives one simulator through the scenario and returns everything
/// equivalence requires: the stop, and the complete final state.
fn drive(
    mut sim: CoSim,
    fast_forward: bool,
    fault: Option<(u64, FaultKind)>,
    watchdog: Option<u64>,
    budget: u64,
) -> (CoSimStop, u64, softsim::iss::CpuStats, softsim::cosim::HwStats, softsim::cosim::CoSimState) {
    sim.set_fast_forward(fast_forward);
    let mut remaining = budget;
    if let Some((cycle, kind)) = fault {
        let pre = cycle.min(budget);
        let stop = sim.run(pre);
        remaining = budget - pre;
        if !matches!(stop, CoSimStop::CycleLimit { .. }) {
            // Halted or faulted before the injection point — still a
            // valid equivalence scenario, just without the fault.
            let state = sim.save_state();
            return (stop, sim.cpu().stats().cycles, sim.cpu().stats(), sim.hw_stats(), state);
        }
        Injector::apply(&mut sim, kind);
    }
    if let Some(threshold) = watchdog {
        sim.set_watchdog(threshold);
    }
    let stop = sim.run(remaining);
    let state = sim.save_state();
    (stop, sim.cpu().stats().cycles, sim.cpu().stats(), sim.hw_stats(), state)
}

/// Fault-free runs: fast-forwarding on vs off reach the identical halt,
/// cycle for cycle and counter for counter, on CORDIC and matmul.
#[test]
fn fault_free_runs_are_identical() {
    for (name, a, b) in [
        ("cordic", drive(cordic_sim(8, 2), false, None, None, 500_000), {
            drive(cordic_sim(8, 2), true, None, None, 500_000)
        }),
        ("matmul", drive(matmul_sim(4, 2), false, None, None, 500_000), {
            drive(matmul_sim(4, 2), true, None, None, 500_000)
        }),
    ] {
        assert_eq!(a.0, CoSimStop::Halted, "{name} must halt");
        assert_eq!(a, b, "{name}: fast-forward changed a fault-free run");
    }
}

/// Randomized stuck-flag scenarios: the watchdog-diagnosed deadlock
/// (the case fast-forwarding exists for) fires at the identical cycle
/// with the identical cause, and every statistic and state word
/// matches, across random configurations, injection points, thresholds
/// and budgets.
#[test]
fn stuck_fault_runs_are_identical() {
    cases(40, |seed, rng| {
        let p = *rng.pick(&[1usize, 2, 4]);
        let iters = *rng.pick(&[4u32, 8]);
        let kind = if rng.flip() {
            FaultKind::StuckEmpty { channel: 0 }
        } else {
            FaultKind::StuckFull { channel: 0 }
        };
        // The fault-free runs halt within ~1.1k–4k cycles depending on
        // the configuration; keep most injection points inside the live
        // window (later ones degenerate to fault-free equivalence).
        let inject_at = rng.below(1_500);
        let watchdog = if rng.flip() { Some(rng.below(8_000) + 1) } else { None };
        let budget = rng.below(60_000) + 5_000;
        let scenario = Some((inject_at, kind));
        let slow = drive(cordic_sim(iters, p), false, scenario, watchdog, budget);
        let fast = drive(cordic_sim(iters, p), true, scenario, watchdog, budget);
        assert_eq!(slow, fast, "seed {seed}: p={p} iters={iters} {kind:?} @{inject_at}");
    });
}

/// With observability attached (metrics windows + raw event timeline)
/// the fast path silently disengages, so the per-cycle event streams
/// and the windowed series stay bit-identical whatever the flag says.
#[test]
fn traced_runs_are_identical_with_fast_forward_enabled() {
    let run = |fast_forward: bool| {
        let mut sim = cordic_sim(8, 2);
        sim.set_fast_forward(fast_forward);
        let collector = Rc::new(RefCell::new(MetricsCollector::new(256)));
        let recorder = Rc::new(RefCell::new(Recorder::new(1 << 16)));
        let fanout = Fanout::new().with(shared(collector.clone())).with(shared(recorder.clone()));
        sim.attach_trace(shared(Rc::new(RefCell::new(fanout))));
        Injector::apply(&mut sim, FaultKind::StuckEmpty { channel: 0 });
        sim.set_watchdog(3_000);
        let stop = sim.run(100_000);
        let events: Vec<TraceEvent> = recorder.borrow().events();
        let mut collector = collector.borrow_mut();
        collector.finish(sim.cpu().stats().cycles);
        (stop, sim.cpu().stats(), events, collector.series())
    };
    let slow = run(false);
    let fast = run(true);
    assert!(matches!(slow.0, CoSimStop::Deadlock { .. }), "stuck flag must deadlock");
    assert_eq!(slow, fast);
}

/// The fast path must actually engage: a fully stuck system under a
/// 200-million-cycle budget is only affordable if the stalled stretch
/// is jumped, not stepped (stepping it takes minutes; the jump is
/// microseconds). The generous wall-clock bound makes this a
/// regression tripwire, not a tight benchmark.
#[test]
fn fast_forward_engages_on_stuck_systems() {
    let mut sim = cordic_sim(8, 2);
    sim.set_fast_forward(true);
    Injector::apply(&mut sim, FaultKind::StuckEmpty { channel: 0 });
    let start = std::time::Instant::now();
    let stop = sim.run(200_000_000);
    assert_eq!(stop, CoSimStop::CycleLimit { blocked: sim.cpu().fsl_block() });
    assert!(sim.cpu().fsl_block().is_some(), "system must be stuck on the FSL");
    assert_eq!(sim.cpu().stats().cycles, 200_000_000, "the whole budget must elapse");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "200M stalled cycles took {:?} — fast-forwarding is not engaging",
        start.elapsed()
    );
}

/// Regression (restore bug): restoring a checkpoint used to silently
/// disarm an armed liveness watchdog, so every post-restore hang burned
/// its whole cycle budget. The watchdog must survive a restore and
/// still diagnose the deadlock.
#[test]
fn watchdog_survives_checkpoint_restore() {
    let mut sim = cordic_sim(8, 2);
    let checkpoint = sim.save_state();
    sim.set_watchdog(2_000);
    sim.load_state(&checkpoint);
    Injector::apply(&mut sim, FaultKind::StuckEmpty { channel: 0 });
    match sim.run(1_000_000) {
        CoSimStop::Deadlock { .. } => {}
        stop => panic!("restored watchdog must still fire, got: {stop}"),
    }
}

/// Regression (injection hazard): an armed run horizon must pin every
/// `run` — stepped or fast-forwarded — to the horizon cycle exactly.
/// Before the clamp existed, a fast-forward jump over a stalled stretch
/// could sail past a scheduled injection cycle, silently shifting the
/// fault to a different machine state.
#[test]
fn run_horizon_clamps_stepped_and_fast_forwarded_runs() {
    // Fast-forwarded: a fully stuck system coalesces millions of stall
    // cycles per jump, the exact situation that used to overshoot.
    let mut sim = cordic_sim(8, 2);
    sim.set_fast_forward(true);
    Injector::apply(&mut sim, FaultKind::StuckEmpty { channel: 0 });
    sim.set_run_horizon(Some(700_000));
    let stop = sim.run(200_000_000);
    assert_eq!(stop, CoSimStop::CycleLimit { blocked: sim.cpu().fsl_block() });
    assert_eq!(sim.cpu().stats().cycles, 700_000, "jump must land exactly on the horizon");
    // Re-running with the same horizon is a no-op, not an overshoot.
    sim.run(200_000_000);
    assert_eq!(sim.cpu().stats().cycles, 700_000);
    // Clearing the horizon releases the run again.
    sim.set_run_horizon(None);
    sim.run(1_000);
    assert_eq!(sim.cpu().stats().cycles, 701_000);

    // Stepped: same contract without fast-forwarding.
    let mut sim = cordic_sim(8, 2);
    sim.set_fast_forward(false);
    sim.set_run_horizon(Some(300));
    assert_eq!(sim.run(1_000_000), CoSimStop::CycleLimit { blocked: None });
    assert_eq!(sim.cpu().stats().cycles, 300);

    // A horizon already behind the clock runs nothing.
    sim.set_run_horizon(Some(100));
    sim.run(1_000_000);
    assert_eq!(sim.cpu().stats().cycles, 300);
}

/// Composition: watchdog + checkpoint restore + fast-forwarding + run
/// horizon all interact on the same run without disturbing each other —
/// the horizon pauses the run mid-stall, the resumed run reaches the
/// identical deadlock diagnosis, and the whole supervised sequence is
/// bit-identical to an unsupervised stepped run.
#[test]
fn watchdog_restore_horizon_and_fast_forward_compose() {
    let reference = {
        let mut sim = cordic_sim(8, 2);
        sim.set_fast_forward(false);
        sim.run(400);
        Injector::apply(&mut sim, FaultKind::StuckEmpty { channel: 0 });
        sim.set_watchdog(5_000);
        let stop = sim.run(10_000_000);
        (stop, sim.cpu().stats(), sim.save_state())
    };
    assert!(matches!(reference.0, CoSimStop::Deadlock { .. }), "stuck flag must deadlock");

    // Same scenario, but restored from a checkpoint, fast-forwarded,
    // and interrupted twice by run horizons mid-stall.
    let mut sim = cordic_sim(8, 2);
    sim.set_fast_forward(true);
    sim.run(400);
    let checkpoint = sim.save_state();
    let mut sim2 = cordic_sim(8, 2);
    sim2.set_fast_forward(true);
    sim2.load_state(&checkpoint);
    Injector::apply(&mut sim2, FaultKind::StuckEmpty { channel: 0 });
    sim2.set_watchdog(5_000);
    sim2.set_run_horizon(Some(1_000));
    assert_eq!(sim2.run(10_000_000), CoSimStop::CycleLimit { blocked: sim2.cpu().fsl_block() });
    assert_eq!(sim2.cpu().stats().cycles, 1_000, "first pause lands on the horizon");
    sim2.set_run_horizon(Some(3_000));
    sim2.run(10_000_000);
    assert_eq!(sim2.cpu().stats().cycles, 3_000, "second pause lands on the horizon");
    sim2.set_run_horizon(None);
    let stop = sim2.run(10_000_000);
    assert_eq!(
        (stop, sim2.cpu().stats(), sim2.save_state()),
        reference,
        "supervised run must reach the identical deadlock and state"
    );
}

/// Regression (stale stall context): a zero-cycle run executes nothing,
/// so it must not report the processor blocked on a transfer it never
/// attempted in that run.
#[test]
fn zero_cycle_run_reports_no_blockage() {
    let img = assemble("get r3, rfsl4\nhalt\n").expect("assembles");
    let mut sim = CoSim::software_only(&img);
    // Block the processor for real first: the stall context is live...
    assert_eq!(sim.run(100), CoSimStop::CycleLimit { blocked: sim.cpu().fsl_block() });
    assert!(sim.cpu().fsl_block().is_some(), "get from an empty FSL must stall");
    // ...but a zero-cycle run stalled on nothing.
    assert_eq!(sim.run(0), CoSimStop::CycleLimit { blocked: None });
}
