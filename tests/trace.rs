//! Integration tests for the observability layer: exact reconciliation
//! of the trace against the ISS's own counters, validity of the Chrome
//! trace-event export, the bounded recorder under load, and the unified
//! halt predicate across the ISS and the co-simulator.

use softsim::bus::{FslBank, FslWord};
use softsim::cosim::{CoSim, CoSimStop};
use softsim::isa::asm::assemble;
use softsim::iss::{Cpu, Event, StopReason};
use softsim::trace::{chrome, json, shared, Profile, Recorder};
use std::cell::RefCell;
use std::rc::Rc;

/// A program whose FSL traffic genuinely stalls the processor in both
/// directions: 20 blocking puts against a 16-deep FIFO nobody drains
/// promptly, then a blocking get from a channel nobody has filled yet.
fn stall_program() -> String {
    let mut src = String::from("\taddik r3, r0, 7\n");
    for _ in 0..20 {
        src.push_str("\tput r3, rfsl0\n");
    }
    src.push_str("\tget r4, rfsl1\n\thalt\n");
    src
}

/// Drives [`stall_program`] by hand: the "hardware" side pops one word
/// every 16 cycles and delivers the awaited result word late, so the CPU
/// accumulates both write stalls (full FIFO) and read stalls (empty
/// FIFO). Returns the finished CPU and bank.
fn run_stalling(cpu: &mut Cpu, fsl: &mut FslBank) {
    let mut cycle = 0u64;
    loop {
        let ev = cpu.tick(fsl);
        if ev.is_halt() {
            break;
        }
        if let Event::Fault(f) = ev {
            panic!("unexpected fault: {f:?}");
        }
        cycle += 1;
        assert!(cycle < 10_000, "stall workload ran away");
        if cycle.is_multiple_of(16) {
            let _ = fsl.to_hw(0).try_pop();
        }
        if cycle == 400 {
            assert!(fsl.from_hw(1).try_push(FslWord { data: 99, control: false }));
        }
    }
}

#[test]
fn profile_reconciles_exactly_with_cpu_stats() {
    let img = assemble(&stall_program()).unwrap();
    let mut cpu = Cpu::with_default_memory(&img);
    let mut fsl = FslBank::default();
    let profile = Rc::new(RefCell::new(Profile::new()));
    cpu.attach_trace(shared(profile.clone()));
    fsl.attach_trace(shared(profile.clone()));
    run_stalling(&mut cpu, &mut fsl);

    let stats = cpu.stats();
    let p = profile.borrow();
    let b = p.breakdown();
    // The workload must actually exercise both stall causes, or the
    // reconciliation below proves nothing.
    assert!(stats.fsl_write_stalls > 0, "workload produced no write stalls");
    assert!(stats.fsl_read_stalls > 0, "workload produced no read stalls");
    // Exact accounting: every simulated cycle is attributed to exactly
    // one bucket, and the buckets match the ISS's own counters.
    assert_eq!(b.total, stats.cycles, "trace total != ISS cycles");
    assert_eq!(b.fsl_read_stall, stats.fsl_read_stalls);
    assert_eq!(b.fsl_write_stall, stats.fsl_write_stalls);
    assert_eq!(b.compute + b.fsl_read_stall + b.fsl_write_stall, b.total);
    assert_eq!(p.total_instructions(), stats.instructions);
}

/// Builds the CORDIC `P = 4` co-simulation with a recorder of the given
/// capacity attached, runs it to completion and returns the recorder.
fn record_cordic_p4(capacity: usize) -> Rc<RefCell<Recorder>> {
    use softsim::apps::cordic::hardware::cordic_peripheral;
    use softsim::apps::cordic::reference::to_fix;
    use softsim::apps::cordic::software::{hw_program, CordicBatch};
    let pairs: Vec<(i32, i32)> = [(1.0, 0.5), (1.5, 1.2), (2.0, -1.0), (1.25, 0.8)]
        .iter()
        .map(|&(a, b)| (to_fix(a), to_fix(b)))
        .collect();
    let batch = CordicBatch::new(&pairs);
    let img = assemble(&hw_program(&batch, 24, 4)).unwrap();
    let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(4));
    let recorder = Rc::new(RefCell::new(Recorder::new(capacity)));
    sim.attach_trace(shared(recorder.clone()));
    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
    recorder
}

#[test]
fn chrome_export_of_cordic_run_is_valid_trace_event_json() {
    let recorder = record_cordic_p4(1 << 16);
    let events = recorder.borrow().events();
    assert_eq!(recorder.borrow().dropped(), 0, "capacity must hold the whole run");
    assert!(!events.is_empty());

    let text = chrome::to_json(&events);
    let doc = json::parse(&text).expect("export must be valid JSON");
    let trace_events =
        doc.get("traceEvents").and_then(|v| v.as_array()).expect("top-level traceEvents array");
    assert_eq!(trace_events.len(), events.len());

    let mut last_ts = f64::NEG_INFINITY;
    for e in trace_events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph field");
        assert!(matches!(ph, "X" | "B" | "E" | "C" | "i"), "unexpected phase {ph:?}");
        assert!(e.get("name").and_then(|v| v.as_str()).is_some(), "name field");
        assert!(e.get("pid").and_then(|v| v.as_f64()).is_some(), "pid field");
        let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts field");
        assert!(ts >= last_ts, "timestamps must be non-decreasing");
        last_ts = ts;
        if ph == "X" {
            assert!(e.get("dur").and_then(|v| v.as_f64()).is_some(), "X needs dur");
        }
    }
}

#[test]
fn recorder_stays_bounded_under_load() {
    let recorder = record_cordic_p4(64);
    let r = recorder.borrow();
    assert_eq!(r.len(), 64, "ring must be full");
    assert!(r.dropped() > 0, "run must overflow a 64-event ring");
    assert_eq!(r.events().len(), 64);
}

#[test]
fn iss_and_cosim_agree_on_halt_cycle() {
    // Satellite regression: both run loops share one halt predicate, so
    // a bare ISS run and a software-only co-simulation of the same image
    // must stop at exactly the same cycle.
    let src = "\taddik r3, r0, 5\n\
               loop:\n\
               \taddik r3, r3, -1\n\
               \tbneid r3, loop\n\
               \tnop\n\
               \thalt\n";
    let img = assemble(src).unwrap();

    let mut cpu = Cpu::with_default_memory(&img);
    let mut fsl = FslBank::default();
    assert_eq!(cpu.run(&mut fsl, 1_000_000), StopReason::Halted);

    let mut sim = CoSim::software_only(&img);
    assert_eq!(sim.run(1_000_000), CoSimStop::Halted);

    assert_eq!(cpu.stats().cycles, sim.cpu_stats().cycles);
    assert_eq!(cpu.stats().instructions, sim.cpu_stats().instructions);
}
