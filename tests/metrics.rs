//! End-to-end tests for the metrics layer: cycle-windowed collection on
//! a real co-simulation, Prometheus/JSON export validity, and seeded
//! golden-vs-trial divergence localization — an SDC fault must be
//! pinned to the injected channel/cycle within one metrics window.

use softsim::apps::cordic::hardware::cordic_peripheral;
use softsim::apps::cordic::reference::to_fix;
use softsim::apps::cordic::software::{hw_program, CordicBatch};
use softsim::cosim::{CoSim, CoSimStop};
use softsim::isa::asm::assemble;
use softsim::isa::Image;
use softsim::metrics::{MetricsCollector, COLUMNS};
use softsim::resilience::{
    capture_golden, localize_trial, FaultKind, Injection, LocalizeConfig, Outcome,
};
use softsim::trace::{json, shared, FifoDir};
use std::cell::RefCell;
use std::rc::Rc;

/// The CORDIC workload driven throughout: four divisions, eight
/// iterations, two PEs (the same configuration as the resilience tests).
fn cordic_image() -> Image {
    let batch = CordicBatch::new(&[
        (to_fix(1.0), to_fix(0.5)),
        (to_fix(1.5), to_fix(1.2)),
        (to_fix(2.0), to_fix(-1.0)),
        (to_fix(1.25), to_fix(0.8)),
    ]);
    assemble(&hw_program(&batch, 8, 2)).expect("cordic assembles")
}

fn cordic_sim() -> CoSim {
    CoSim::with_peripheral(&cordic_image(), cordic_peripheral(2))
}

/// Reads the four CORDIC quotients from local memory.
fn observe(sim: &CoSim, img: &Image) -> Vec<u32> {
    let base = img.symbol("z_data").expect("result label");
    (0..4).map(|i| sim.cpu().mem().read_u32(base + 4 * i).unwrap()).collect()
}

/// Runs the CORDIC co-simulation with a collector attached and returns
/// it finished, together with the run's final cycle count.
fn collected_run(window: u64) -> (MetricsCollector, u64) {
    let collector = Rc::new(RefCell::new(MetricsCollector::new(window)));
    let mut sim = cordic_sim();
    sim.attach_trace(shared(collector.clone()));
    assert_eq!(sim.run(1_000_000), CoSimStop::Halted);
    let cycles = sim.cpu_stats().cycles;
    collector.borrow_mut().finish(cycles);
    // The simulator holds the only other strong reference to the sink.
    drop(sim);
    (Rc::try_unwrap(collector).ok().expect("sole owner after run").into_inner(), cycles)
}

/// The acceptance-criteria regression: a fault that ends in silent data
/// corruption must be localized to its first architectural consequence
/// — the corrupted word leaving the FIFO — within one metrics window of
/// the injection cycle.
#[test]
fn sdc_trial_localizes_to_injection_cycle_within_one_window() {
    let img = cordic_image();
    let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(2));
    let config = LocalizeConfig::default();
    let golden = capture_golden(&mut sim, |s| observe(s, &img), &config);
    assert!(golden.record.events.len() > 100, "golden run must be instrumented");
    assert_eq!(golden.record.dropped_events, 0);

    // Scan a deterministic set of mid-run FIFO-word flips until one is
    // classified SDC. Corrupting a result word in flight on the
    // hardware→software channel reliably reaches the output array; the
    // divider also recomputes from memory, so pure register flips are
    // masked in this workload.
    let mut found = None;
    'scan: for frac in [4u64, 3, 2] {
        let cycle = golden.cycles / frac;
        for channel in [0u8, 1] {
            for index in [0u8, 1, 2] {
                let injection = Injection {
                    cycle,
                    kind: FaultKind::FifoBitFlip { dir: FifoDir::FromHw, channel, index, bit: 7 },
                };
                let report =
                    localize_trial(&mut sim, &golden, injection, |s| observe(s, &img), &config);
                if report.outcome == Outcome::Sdc {
                    found = Some((injection, report));
                    break 'scan;
                }
            }
        }
    }
    let (injection, report) = found.expect("some mid-run FIFO-word flip causes SDC");
    assert!(report.applied, "an SDC flip must have hit an occupied FIFO slot");

    let d = &report.divergence;
    assert!(!d.is_identical(), "an SDC trial must diverge somewhere");
    assert!(!d.lossy(), "default recorder capacity must not drop events here");

    // Event-level localization: the first diverging event is the
    // corrupted word being popped off the injected channel.
    let w = config.window_cycles;
    let e = d.event.as_ref().expect("event divergence");
    assert!(e.what.contains("fifo pop from_hw"), "expected the corrupted pop: {}", e.what);
    assert!(
        e.cycle >= injection.cycle.saturating_sub(w) && e.cycle < injection.cycle + w,
        "event at cycle {} not within one window ({w}) of injection cycle {}",
        e.cycle,
        injection.cycle
    );

    // Window-level localization: the first diverging window is the
    // injection's window (or an adjacent one, for a word that drains
    // just past the boundary).
    let win = d.window.as_ref().expect("window divergence");
    assert!(
        win.index.abs_diff(injection.cycle / w) <= 1,
        "diverging window #{} vs injection window #{}",
        win.index,
        injection.cycle / w
    );

    // The whole report replays identically.
    let replay = localize_trial(&mut sim, &golden, injection, |s| observe(s, &img), &config);
    assert_eq!(replay.divergence, report.divergence);
    assert_eq!(replay.outcome, report.outcome);
    assert!(report.text().contains("first diverging event"));
}

/// A register upset goes through `Cpu::set_reg`, so the injector's own
/// corrupted writeback is the first diverging event — even when the
/// workload later masks the flip, localization pins the exact injection
/// point.
#[test]
fn register_flip_pinpoints_the_corrupted_writeback() {
    let img = cordic_image();
    let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(2));
    let config = LocalizeConfig::default();
    let golden = capture_golden(&mut sim, |s| observe(s, &img), &config);

    let injection =
        Injection { cycle: golden.cycles / 2, kind: FaultKind::RegBitFlip { reg: 5, bit: 13 } };
    let report = localize_trial(&mut sim, &golden, injection, |s| observe(s, &img), &config);
    assert!(report.applied);
    let e = report.divergence.event.as_ref().expect("the flip itself is an event divergence");
    assert!(e.what.contains("register write r5"), "got: {}", e.what);
    assert!(
        e.cycle.abs_diff(injection.cycle) <= 2,
        "writeback at cycle {} should pin the injection at cycle {}",
        e.cycle,
        injection.cycle
    );
}

/// Satellite 2: with a deliberately tiny recorder, drop accounting must
/// surface through the record and flag the localization as lossy.
#[test]
fn overflowing_recorder_flags_localization_as_lossy() {
    let img = cordic_image();
    let mut sim = CoSim::with_peripheral(&img, cordic_peripheral(2));
    let config = LocalizeConfig { recorder_capacity: 64, ..LocalizeConfig::default() };
    let golden = capture_golden(&mut sim, |s| observe(s, &img), &config);
    assert!(golden.record.dropped_events > 0, "64 slots cannot hold a full CORDIC run");

    let injection =
        Injection { cycle: golden.cycles / 2, kind: FaultKind::RegBitFlip { reg: 5, bit: 13 } };
    let report = localize_trial(&mut sim, &golden, injection, |s| observe(s, &img), &config);
    assert!(report.divergence.lossy());
    assert!(report.divergence.text().contains("dropped events"));
}

/// The Prometheus exposition must be structurally valid: every sample
/// belongs to a family with HELP/TYPE declared first, histogram buckets
/// are cumulative and consistent with `_count`, and the headline
/// counters reconcile with the processor's own statistics.
#[test]
fn prometheus_exposition_is_structurally_valid() {
    let mut sim = cordic_sim();
    let collector = Rc::new(RefCell::new(MetricsCollector::new(256)));
    sim.attach_trace(shared(collector.clone()));
    assert_eq!(sim.run(1_000_000), CoSimStop::Halted);
    let stats = sim.cpu_stats();
    let mut collector = collector.borrow_mut();
    collector.finish(stats.cycles);
    collector.set_dropped_events(0);
    let text = collector.to_prometheus();

    let mut typed = std::collections::BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap().to_string();
            let kind = it.next().unwrap();
            assert!(["counter", "gauge", "histogram"].contains(&kind), "bad TYPE: {line}");
            assert!(typed.insert(name), "duplicate TYPE for a family: {line}");
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        // Sample line: `name[{labels}] value`.
        let (name_labels, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(value.parse::<f64>().is_ok(), "unparseable value in: {line}");
        let name = name_labels.split('{').next().unwrap();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in: {line}"
        );
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.contains(*f))
            .unwrap_or(name);
        assert!(typed.contains(family), "sample without TYPE: {line}");
    }

    // Headline counters reconcile with the ISS's own statistics.
    assert!(text.contains(&format!("softsim_iss_instructions_total {}", stats.instructions)));
    assert!(text.contains(&format!(
        "softsim_iss_stall_cycles_total{{cause=\"fsl_read\"}} {}",
        stats.fsl_read_stalls
    )));
    assert!(text.contains(&format!(
        "softsim_gateway_words_total{{dir=\"to_hw\"}} {}",
        sim.hw_stats().words_to_hw
    )));

    // Histogram buckets are cumulative and end at `_count`.
    let buckets: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with("softsim_fsl_occupancy_bucket"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
        .collect();
    assert!(!buckets.is_empty());
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "buckets must be cumulative");
    let count: u64 = text
        .lines()
        .find(|l| l.starts_with("softsim_fsl_occupancy_count"))
        .unwrap()
        .rsplit_once(' ')
        .unwrap()
        .1
        .parse()
        .unwrap();
    assert_eq!(*buckets.last().unwrap(), count, "+Inf bucket must equal _count");
}

/// The JSON time-series export must parse, carry the full column set,
/// and tile the run with contiguous windows.
#[test]
fn json_series_parses_and_windows_tile_the_run() {
    let (collector, cycles) = collected_run(128);
    let series = collector.series();
    assert_eq!(series.columns, COLUMNS.to_vec());

    let doc = json::parse(&collector.to_json()).expect("series must be valid JSON");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("softsim-metrics/1"));
    assert_eq!(doc.get("window_cycles").unwrap().as_f64(), Some(128.0));
    let columns = doc.get("columns").unwrap().as_array().unwrap();
    assert_eq!(columns.len(), COLUMNS.len());
    let rows = doc.get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len(), cycles.div_ceil(128) as usize);
    let mut expect_start = 0.0;
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.get("i").unwrap().as_f64(), Some(i as f64));
        assert_eq!(row.get("start").unwrap().as_f64(), Some(expect_start), "windows must tile");
        let end = row.get("end").unwrap().as_f64().unwrap();
        assert!(end > expect_start);
        expect_start = end;
        assert_eq!(row.get("v").unwrap().as_array().unwrap().len(), COLUMNS.len());
    }
    assert_eq!(expect_start, cycles as f64, "final window must end at the run's last cycle");
}

/// The windowed totals must reconcile with the cumulative counters: the
/// series is a partition of the run, not a sampling of it.
#[test]
fn windowed_series_sums_match_cumulative_totals() {
    let (collector, _) = collected_run(64);
    let series = collector.series();
    let total =
        |name: &str| -> f64 { series.rows.iter().map(|r| series.value(r, name).unwrap()).sum() };
    let text = collector.to_prometheus();
    let counter = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit_once(' '))
            .map(|(_, v)| v.parse().unwrap())
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
    };
    assert_eq!(total("instructions"), counter("softsim_iss_instructions_total "));
    assert_eq!(total("reg_writes"), counter("softsim_iss_reg_writes_total "));
    assert_eq!(
        total("gateway_to_hw") + total("gateway_from_hw"),
        counter("softsim_gateway_words_total{dir=\"to_hw\"}")
            + counter("softsim_gateway_words_total{dir=\"from_hw\"}")
    );
    assert_eq!(total("lmb_transfers"), counter("softsim_bus_transfers_total{bus=\"lmb\"}"));
}
