//! End-to-end integration tests across the whole workspace: the paper's
//! applications through the public facade, resource accounting, and the
//! qualitative performance claims of §IV.

use softsim::apps::{cordic, matmul};
use softsim::cosim::{CoSim, CoSimStop};
use softsim::isa::asm::assemble;

#[test]
fn cordic_full_design_space_is_correct() {
    // Every (iterations, P) configuration of Figure 5 produces quotients
    // that match the golden model bit-exactly.
    let pairs = [(1.0, 0.5), (1.75, 1.6), (2.5, -2.0), (1.0, 0.001)]
        .map(|(a, b): (f64, f64)| (cordic::reference::to_fix(a), cordic::reference::to_fix(b)));
    let batch = cordic::software::CordicBatch::new(&pairs);
    for iters in [8u32, 24] {
        for p in [1usize, 2, 3, 4, 5, 6, 7, 8] {
            let img = assemble(&cordic::software::hw_program(&batch, iters, p)).unwrap();
            let mut sim = CoSim::with_peripheral(&img, cordic::hardware::cordic_peripheral(p));
            assert_eq!(sim.run(10_000_000), CoSimStop::Halted, "iters={iters} P={p}");
            assert_eq!(sim.hw_stats().output_overflows, 0);
            // The paper sizes each data set to FIFO capacity ("the size
            // of each set of data is selected carefully"): no batch may
            // ever come close to overrunning the 16-deep FSL FIFOs.
            assert!(
                sim.hw_stats().max_to_hw_occupancy <= 16,
                "iters={iters} P={p}: to-hw FIFO high-water {} exceeds depth",
                sim.hw_stats().max_to_hw_occupancy
            );
            assert!(
                sim.hw_stats().max_from_hw_occupancy <= 16,
                "iters={iters} P={p}: from-hw FIFO high-water {} exceeds depth",
                sim.hw_stats().max_from_hw_occupancy
            );
            let base = img.symbol(cordic::software::RESULT_LABEL).unwrap();
            let eff = cordic::software::effective_iterations(iters, p);
            for (i, &(a, b)) in pairs.iter().enumerate() {
                let got = sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32;
                assert_eq!(
                    got,
                    cordic::reference::divide_fix(a, b, eff),
                    "iters={iters} P={p} sample={i}"
                );
            }
        }
    }
}

#[test]
fn matmul_all_sizes_and_blocks_correct() {
    for n in [4usize, 8, 12, 16] {
        let a = matmul::reference::Matrix::test_pattern(n, 31);
        let b = matmul::reference::Matrix::test_pattern(n, 32);
        let golden = matmul::reference::multiply(&a, &b);
        for nb in [2usize, 4] {
            if n % nb != 0 {
                continue;
            }
            let img = assemble(&matmul::software::hw_program(&a, &b, nb)).unwrap();
            let mut sim = CoSim::with_peripheral(&img, matmul::hardware::matmul_peripheral(nb));
            assert_eq!(sim.run(500_000_000), CoSimStop::Halted, "n={n} nb={nb}");
            let base = img.symbol(matmul::software::RESULT_LABEL).unwrap();
            for i in 0..n * n {
                assert_eq!(
                    sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32,
                    golden.data[i],
                    "n={n} nb={nb} element={i}"
                );
            }
        }
    }
}

#[test]
fn figure5_performance_claims() {
    // HW acceleration wins at 24 iterations and improves monotonically
    // with P; the P=4 speedup is a multiple (paper: 5.6x, ours ~3.7x).
    let pairs = [(1.0, 0.5), (1.5, 1.2), (2.0, -1.0), (1.25, 0.8)]
        .map(|(a, b): (f64, f64)| (cordic::reference::to_fix(a), cordic::reference::to_fix(b)));
    let batch = cordic::software::CordicBatch::new(&pairs);
    let cycles = |p: Option<usize>| {
        let (img, per) = match p {
            None => (
                assemble(&cordic::software::sw_program(
                    &batch,
                    24,
                    cordic::software::SwStyle::Compiled,
                ))
                .unwrap(),
                None,
            ),
            Some(p) => (
                assemble(&cordic::software::hw_program(&batch, 24, p)).unwrap(),
                Some(cordic::hardware::cordic_peripheral(p)),
            ),
        };
        let mut sim = match per {
            None => CoSim::software_only(&img),
            Some(per) => CoSim::with_peripheral(&img, per),
        };
        assert_eq!(sim.run(10_000_000), CoSimStop::Halted);
        sim.cpu_stats().cycles
    };
    let sw = cycles(None);
    let p2 = cycles(Some(2));
    let p4 = cycles(Some(4));
    let p8 = cycles(Some(8));
    assert!(p2 < sw && p4 < p2 && p8 < p4, "monotone improvement: {sw} {p2} {p4} {p8}");
    let speedup = sw as f64 / p4 as f64;
    assert!(speedup > 3.0, "P=4 speedup {speedup:.2} should be a multiple");
}

#[test]
fn fsl_stall_accounting_is_consistent() {
    // A blocking `get` issued right after the last `put` must stall for
    // the pipeline latency of a deep (P = 8) pipeline, and every counter
    // must balance.
    let a = cordic::reference::to_fix(1.5);
    let b = cordic::reference::to_fix(0.7);
    let src = format!(
        "li r8, {one}\n cput r8, rfsl0\n\
         li r5, {a}\n put r5, rfsl0\n\
         li r6, {b}\n put r6, rfsl0\n\
         put r0, rfsl0\n\
         get r9, rfsl0\n get r10, rfsl0\n halt\n",
        one = cordic::reference::ONE,
    );
    let img = assemble(&src).unwrap();
    let mut sim = CoSim::with_peripheral(&img, cordic::hardware::cordic_peripheral(8));
    assert_eq!(sim.run(100_000), CoSimStop::Halted);
    let s = sim.cpu_stats();
    let hw = sim.hw_stats();
    assert_eq!(s.fsl_words_sent, hw.words_to_hw, "every sent word reached hardware");
    assert_eq!(s.fsl_words_received, hw.words_from_hw, "every produced word was consumed");
    assert_eq!(s.fsl_words_sent, 4);
    assert_eq!(s.fsl_words_received, 2);
    assert!(s.fsl_read_stalls > 0, "the first get must wait for the pipeline to drain");
    assert!(s.cycles > s.instructions, "multi-cycle instructions and stalls");
    // The result is one 8-iteration pass of the reference.
    assert_eq!(
        sim.cpu().reg(softsim::isa::Reg::new(10)) as i32,
        cordic::reference::divide_fix(a, b, 8)
    );
}

#[test]
fn resource_report_for_whole_design_space() {
    use softsim::resource::{estimate_system, DataSheet, SystemConfig};
    let sheet = DataSheet::default();
    let pairs = [(1.0, 0.5)]
        .map(|(a, b): (f64, f64)| (cordic::reference::to_fix(a), cordic::reference::to_fix(b)));
    let batch = cordic::software::CordicBatch::new(&pairs);
    let mut last = 0;
    for p in [2usize, 4, 6, 8] {
        let img = assemble(&cordic::software::hw_program(&batch, 24, p)).unwrap();
        let est = estimate_system(
            &SystemConfig {
                program: &img,
                peripheral: cordic::hardware::pipeline_resources(p),
                fsl_channels: 1,
            },
            &sheet,
        );
        assert!(est.slices > last, "slices grow with P");
        assert_eq!(est.mult18s, 3, "no multipliers in the PEs (Table I)");
        assert_eq!(est.brams, 1, "small program fits one BRAM");
        last = est.slices;
    }
}

#[test]
fn opb_attachment_is_slower_than_fsl() {
    // The paper supports both FSL and OPB attachments; the dedicated FSL
    // interface is the faster choice. Model the same exchange over the
    // OPB register bus and compare per-transfer cycle costs.
    use softsim::bus::{OPB_READ_LATENCY, OPB_WRITE_LATENCY};
    use softsim::isa::Inst;
    // An FSL put+get pair costs the two instructions' base cycles when
    // ready; an OPB write+read pair adds the bus transfer latencies.
    let get = Inst::Get {
        rd: softsim::isa::Reg::new(3),
        chan: softsim::isa::FslChan::new(0),
        mode: softsim::isa::FslMode::BLOCKING_DATA,
    };
    let put = Inst::Put {
        ra: softsim::isa::Reg::new(3),
        chan: softsim::isa::FslChan::new(0),
        mode: softsim::isa::FslMode::BLOCKING_DATA,
    };
    let fsl_pair = get.base_cycles() + put.base_cycles();
    assert!(OPB_WRITE_LATENCY + OPB_READ_LATENCY > fsl_pair);
}

#[test]
fn two_peripherals_share_one_processor() {
    // The paper's environment simulates "customized hardware peripherals"
    // (plural): attach the CORDIC pipeline on FSL 0 and a 2x2 block-matmul
    // unit on FSL 2, and interleave work on both from one program.
    let a_fix = cordic::reference::to_fix(1.5);
    let b_fix = cordic::reference::to_fix(0.9);
    let src = format!(
        "# one CORDIC pass (P PEs) on channel 0
         li r8, {one}
         cput r8, rfsl0
         li r5, {a_fix}
         put r5, rfsl0
         li r6, {b_fix}
         put r6, rfsl0
         put r0, rfsl0
         # meanwhile: a 2x2 block product on channel 2
         addik r3, r0, 1
         cput r3, rfsl2       # B = identity
         cput r0, rfsl2
         cput r0, rfsl2
         addik r3, r0, 1
         cput r3, rfsl2
         addik r3, r0, 5      # A column-major: [[5,7],[6,8]]... a(0,0)=5
         put r3, rfsl2
         addik r3, r0, 6
         put r3, rfsl2
         addik r3, r0, 7
         put r3, rfsl2
         addik r3, r0, 8
         put r3, rfsl2
         # collect CORDIC results (Y then Z)
         get r9, rfsl0
         get r10, rfsl0
         # collect the matrix product (row-major; B = I so it's A)
         get r11, rfsl2
         get r12, rfsl2
         get r13, rfsl2
         get r14, rfsl2
         halt
        ",
        one = cordic::reference::ONE,
    );
    let img = assemble(&src).unwrap();
    let mut sim = CoSim::with_peripheral(&img, cordic::hardware::cordic_peripheral(8));
    sim.add_peripheral(matmul::hardware::matmul_peripheral_chan(2, 2));
    assert_eq!(sim.run(100_000), CoSimStop::Halted);
    let reg = |n| sim.cpu().reg(softsim::isa::Reg::new(n));
    // CORDIC: one 8-iteration pass.
    assert_eq!(reg(10) as i32, cordic::reference::divide_fix(a_fix, b_fix, 8));
    // Matmul with B = I (Q0 identity = 1s on the diagonal): C = A row-major.
    assert_eq!([reg(11), reg(12), reg(13), reg(14)], [5, 7, 6, 8]);
}

#[test]
#[should_panic(expected = "already claimed")]
fn conflicting_fsl_channels_rejected() {
    let img = assemble("halt\n").unwrap();
    let mut sim = CoSim::with_peripheral(&img, cordic::hardware::cordic_peripheral(2));
    sim.add_peripheral(matmul::hardware::matmul_peripheral_chan(2, 0));
}
