//! Cross-crate property-based tests: randomized invariants over the
//! golden models and the assembler/disassembler tool chain.

use proptest::prelude::*;
use softsim::apps::{cordic, matmul};
use softsim::isa::asm::assemble;
use softsim::isa::{decode, disasm, encode, Image};

proptest! {
    /// CORDIC division converges to the true quotient within its error
    /// bound over the whole convergence domain.
    #[test]
    fn cordic_divide_converges(a in 0.05f64..7.9, ratio in -1.9f64..1.9, iters in 4u32..=28) {
        let b = a * ratio;
        prop_assume!(b.abs() < 7.9);
        let af = cordic::reference::to_fix(a);
        let bf = cordic::reference::to_fix(b);
        let q = cordic::reference::divide_fix(af, bf, iters);
        let err = (cordic::reference::from_fix(q) - b / a).abs();
        // Residual step plus input quantization amplified by 1/a.
        let bound = cordic::reference::error_bound(iters) + 3e-7 / a * (1.0 + ratio.abs());
        prop_assert!(err <= bound, "{b}/{a} @ {iters}: err {err} > {bound}");
    }

    /// Block decomposition never changes the matrix product, for any
    /// compatible (n, block) pair and any inputs.
    #[test]
    fn blocked_matmul_equals_dense(nblk in 1usize..=4, blocks in 1usize..=3, s1: u32, s2: u32) {
        let nb = nblk * 2 / 2; // 1..=4
        let n = nb * blocks;
        prop_assume!(n >= 1);
        let a = matmul::reference::Matrix::test_pattern(n, s1);
        let b = matmul::reference::Matrix::test_pattern(n, s2);
        let dense = matmul::reference::multiply(&a, &b);
        prop_assert_eq!(matmul::reference::multiply_blocked(&a, &b, nb), dense);
    }

    /// Disassembling any program of valid instructions and reassembling
    /// the listing reproduces the identical image — the assembler and
    /// disassembler are mutual inverses over whole programs.
    #[test]
    fn listing_reassembles_identically(words in proptest::collection::vec(any::<u32>(), 1..60)) {
        let mut image = Image::new(0);
        let mut addr = 0u32;
        let mut last_was_imm = false;
        for w in words {
            if let Ok(inst) = decode(w) {
                // Keep `imm` prefixes paired with an immediate consumer so
                // the listing is architecturally meaningful.
                if inst.is_imm_prefix() && last_was_imm {
                    continue;
                }
                last_was_imm = inst.is_imm_prefix();
                image.write_u32(addr, encode(&inst));
                addr += 4;
            }
        }
        prop_assume!(addr > 0);
        let listing: String = disasm::disassemble(&image)
            .iter()
            .map(|l| format!("{}\n", l.text))
            .collect();
        let re = assemble(&listing).expect("listing reassembles");
        prop_assert_eq!(re.bytes(), image.bytes());
    }

    /// The Levinson-Durbin reference keeps reflection coefficients
    /// bounded and the error positive for any stable AR(2) input.
    #[test]
    fn levinson_durbin_stability(p1 in -0.9f64..0.9, p2 in -0.8f64..0.0, order in 2usize..=8) {
        use softsim::apps::lpc::reference as lpc;
        // Stationarity of AR(2) requires |p2| < 1, p2 ± p1 < 1.
        prop_assume!(p1 + p2 < 0.95 && p2 - p1 < 0.95);
        let mut rho = vec![0.0f64; order + 1];
        rho[0] = 1.0;
        rho[1] = p1 / (1.0 - p2);
        for m in 2..=order {
            rho[m] = p1 * rho[m - 1] + p2 * rho[m - 2];
        }
        let r: Vec<i32> = rho.iter().map(|&v| lpc::to_fix(v)).collect();
        let res = lpc::levinson_durbin(&r, lpc::DivStrategy::Idiv);
        prop_assert!(res.error > 0, "prediction error stays positive");
        for (i, &k) in res.k.iter().enumerate() {
            prop_assert!(k.abs() <= lpc::ONE + 8, "|k[{i}]| bounded: {k}");
        }
    }
}
