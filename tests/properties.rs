//! Cross-crate randomized tests: invariants over the golden models and
//! the assembler/disassembler tool chain, driven by the deterministic
//! `softsim-testkit` generator (every failure message carries the case
//! seed, and re-running replays the identical input).

use softsim::apps::{cordic, matmul};
use softsim::isa::asm::assemble;
use softsim::isa::{decode, disasm, encode, Image};
use softsim_testkit::cases;

/// CORDIC division converges to the true quotient within its error
/// bound over the whole convergence domain.
#[test]
fn cordic_divide_converges() {
    cases(300, |seed, rng| {
        let a = rng.range_f64(0.05, 7.9);
        let ratio = rng.range_f64(-1.9, 1.9);
        let iters = rng.range_u32(4, 29);
        let b = a * ratio;
        if b.abs() >= 7.9 {
            return;
        }
        let af = cordic::reference::to_fix(a);
        let bf = cordic::reference::to_fix(b);
        let q = cordic::reference::divide_fix(af, bf, iters);
        let err = (cordic::reference::from_fix(q) - b / a).abs();
        // Residual step plus input quantization amplified by 1/a.
        let bound = cordic::reference::error_bound(iters) + 3e-7 / a * (1.0 + ratio.abs());
        assert!(err <= bound, "seed {seed}: {b}/{a} @ {iters}: err {err} > {bound}");
    });
}

/// Block decomposition never changes the matrix product, for any
/// compatible (n, block) pair and any inputs.
#[test]
fn blocked_matmul_equals_dense() {
    cases(100, |seed, rng| {
        let nb = rng.range_usize(1, 5);
        let blocks = rng.range_usize(1, 4);
        let n = nb * blocks;
        let a = matmul::reference::Matrix::test_pattern(n, rng.next_u32());
        let b = matmul::reference::Matrix::test_pattern(n, rng.next_u32());
        let dense = matmul::reference::multiply(&a, &b);
        assert_eq!(
            matmul::reference::multiply_blocked(&a, &b, nb),
            dense,
            "seed {seed}: n={n} nb={nb}"
        );
    });
}

/// Disassembling any program of valid instructions and reassembling
/// the listing reproduces the identical image — the assembler and
/// disassembler are mutual inverses over whole programs.
#[test]
fn listing_reassembles_identically() {
    cases(150, |seed, rng| {
        let mut image = Image::new(0);
        let mut addr = 0u32;
        let mut last_was_imm = false;
        for _ in 0..rng.range_usize(1, 60) {
            if let Ok(inst) = decode(rng.next_u32()) {
                // Keep `imm` prefixes paired with an immediate consumer so
                // the listing is architecturally meaningful.
                if inst.is_imm_prefix() && last_was_imm {
                    continue;
                }
                last_was_imm = inst.is_imm_prefix();
                image.write_u32(addr, encode(&inst));
                addr += 4;
            }
        }
        if addr == 0 {
            return;
        }
        let listing: String =
            disasm::disassemble(&image).iter().map(|l| format!("{}\n", l.text)).collect();
        let re = assemble(&listing).expect("listing reassembles");
        assert_eq!(re.bytes(), image.bytes(), "seed {seed}");
    });
}

/// The Levinson-Durbin reference keeps reflection coefficients
/// bounded and the error positive for any stable AR(2) input.
#[test]
fn levinson_durbin_stability() {
    use softsim::apps::lpc::reference as lpc;
    cases(200, |seed, rng| {
        let p1 = rng.range_f64(-0.9, 0.9);
        let p2 = rng.range_f64(-0.8, 0.0);
        let order = rng.range_usize(2, 9);
        // Stationarity of AR(2) requires |p2| < 1, p2 ± p1 < 1.
        if p1 + p2 >= 0.95 || p2 - p1 >= 0.95 {
            return;
        }
        let mut rho = vec![0.0f64; order + 1];
        rho[0] = 1.0;
        rho[1] = p1 / (1.0 - p2);
        for m in 2..=order {
            rho[m] = p1 * rho[m - 1] + p2 * rho[m - 2];
        }
        let r: Vec<i32> = rho.iter().map(|&v| lpc::to_fix(v)).collect();
        let res = lpc::levinson_durbin(&r, lpc::DivStrategy::Idiv);
        assert!(res.error > 0, "seed {seed}: prediction error stays positive");
        for (i, &k) in res.k.iter().enumerate() {
            assert!(k.abs() <= lpc::ONE + 8, "seed {seed}: |k[{i}]| bounded: {k}");
        }
    });
}
