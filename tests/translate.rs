//! Translated-execution equivalence: a co-simulation run with the
//! basic-block fast path enabled must be indistinguishable — halt
//! cycle, processor statistics, hardware statistics, full simulation
//! state, trace timeline — from the same run interpreted cycle by
//! cycle. Translation only batches instructions whose effects the
//! interpreter would produce identically, so every observable total has
//! to land on exactly the same value, across all four evaluation
//! workloads and through mid-run checkpoint round-trips.

use softsim::apps::beamformer::beamformer_cosim;
use softsim::apps::cordic::hardware::cordic_peripheral;
use softsim::apps::cordic::reference::to_fix;
use softsim::apps::cordic::software::{hw_program, CordicBatch};
use softsim::apps::fir::reference::test_signal;
use softsim::apps::fir::software::fir_cosim;
use softsim::apps::lpc::reference::test_autocorrelation;
use softsim::apps::matmul::hardware::matmul_peripheral;
use softsim::apps::matmul::reference::Matrix;
use softsim::apps::matmul::software as mm_sw;
use softsim::cosim::{CoSim, CoSimStop};
use softsim::isa::asm::assemble;
use softsim::metrics::MetricsCollector;
use softsim::resilience::{FaultKind, Injector};
use softsim::trace::{shared, Fanout, Recorder, TraceEvent};
use softsim_testkit::cases;
use std::cell::RefCell;
use std::rc::Rc;

/// A CORDIC co-simulator: four divisions, `iters` iterations, `p` PEs.
fn cordic_sim(iters: u32, p: usize) -> CoSim {
    let batch = CordicBatch::new(&[
        (to_fix(1.0), to_fix(0.5)),
        (to_fix(1.5), to_fix(1.2)),
        (to_fix(2.0), to_fix(-1.0)),
        (to_fix(1.25), to_fix(0.8)),
    ]);
    let img = assemble(&hw_program(&batch, iters, p)).expect("cordic assembles");
    CoSim::with_peripheral(&img, cordic_peripheral(p))
}

/// A block-matmul co-simulator, N = `n`, NB = `nb`.
fn matmul_sim(n: usize, nb: usize) -> CoSim {
    let (a, b) = (Matrix::test_pattern(n, 7), Matrix::test_pattern(n, 8));
    let img = assemble(&mm_sw::hw_program(&a, &b, nb)).expect("matmul assembles");
    CoSim::with_peripheral(&img, matmul_peripheral(nb))
}

/// The four evaluation workloads, by name.
fn workload(name: &str) -> CoSim {
    match name {
        "cordic" => cordic_sim(8, 2),
        "matmul" => matmul_sim(4, 2),
        "fir" => fir_cosim(&[3, -1, 4, 1, -5], &test_signal(24, 9), true).0,
        "beamformer" => beamformer_cosim(&test_autocorrelation(4), 2, &test_signal(24, 11)).0,
        other => panic!("unknown workload {other}"),
    }
}

/// Runs one simulator to the budget and returns everything equivalence
/// requires: the stop and the complete final state (the
/// [`softsim::cosim::CoSimState`] covers registers, memory, the FSL
/// fabric, and every peripheral).
fn drive(
    mut sim: CoSim,
    translate: bool,
    budget: u64,
) -> (CoSimStop, u64, softsim::iss::CpuStats, softsim::cosim::HwStats, softsim::cosim::CoSimState) {
    sim.set_translation(translate);
    let stop = sim.run(budget);
    if translate {
        let stats = sim.cpu().translation_stats();
        assert!(stats.block_dispatches > 0, "fast path never engaged: {stats:?}");
    }
    let state = sim.save_state();
    (stop, sim.cpu().stats().cycles, sim.cpu().stats(), sim.hw_stats(), state)
}

/// Fault-free runs: translation on vs off reaches the identical halt,
/// cycle for cycle and counter for counter, on every workload. The
/// engagement tripwire inside `drive` keeps the comparison non-vacuous.
#[test]
fn fault_free_runs_are_identical_on_all_workloads() {
    for name in ["cordic", "matmul", "fir", "beamformer"] {
        let interp = drive(workload(name), false, 5_000_000);
        let xlate = drive(workload(name), true, 5_000_000);
        assert_eq!(interp.0, CoSimStop::Halted, "{name} must halt");
        assert_eq!(interp, xlate, "{name}: translation changed the run");
    }
}

/// Randomized budgets: stopping mid-run at an arbitrary cycle count
/// must land on the identical machine state whether the cycles were
/// interpreted or dispatched in translated blocks (the dispatcher
/// refuses blocks that would overshoot, so partial budgets are exact).
#[test]
fn randomized_budget_cutoffs_are_identical() {
    cases(40, |seed, rng| {
        let name = *rng.pick(&["cordic", "matmul", "fir", "beamformer"]);
        let budget = rng.below(80_000) + 200;
        let interp = drive(workload(name), false, budget);
        let xlate = drive(workload(name), true, budget);
        assert_eq!(interp, xlate, "seed {seed}: {name} budget={budget}");
    });
}

/// Mid-run checkpoint round-trips: pause a translated run at a random
/// cycle, `save_state`, restore into a fresh simulator, and finish —
/// with translation on either, both, or neither side of the
/// checkpoint. Every combination must match the uninterrupted
/// interpreted run bit for bit.
#[test]
fn mid_run_checkpoint_round_trips_are_identical() {
    cases(24, |seed, rng| {
        let name = *rng.pick(&["cordic", "matmul", "fir", "beamformer"]);
        let pause = rng.below(30_000) + 100;
        let budget = 5_000_000u64;
        // Pause, checkpoint, restore into a fresh simulator, finish —
        // with translation flipped independently on each side of the
        // checkpoint. Every combination must match the all-interpreted
        // round-trip bit for bit.
        let round_trip = |before: bool, after: bool| {
            let mut sim = workload(name);
            sim.set_translation(before);
            sim.run(pause);
            let checkpoint = sim.save_state();
            let mut resumed = workload(name);
            resumed.set_translation(after);
            resumed.load_state(&checkpoint);
            let stop = resumed.run(budget - pause);
            let state = resumed.save_state();
            (stop, resumed.cpu().stats().cycles, resumed.cpu().stats(), resumed.hw_stats(), state)
        };
        let reference = round_trip(false, false);
        for (before, after) in [(true, true), (true, false), (false, true)] {
            assert_eq!(
                round_trip(before, after),
                reference,
                "seed {seed}: {name} pause={pause} translate(before={before}, after={after})"
            );
        }
    });
}

/// With observability attached (metrics windows + raw event timeline)
/// translated dispatch silently disengages, so the per-cycle event
/// streams and the windowed series stay bit-identical whatever the
/// flag says.
#[test]
fn traced_runs_are_identical_with_translation_enabled() {
    let run = |translate: bool| {
        let mut sim = workload("cordic");
        sim.set_translation(translate);
        let collector = Rc::new(RefCell::new(MetricsCollector::new(256)));
        let recorder = Rc::new(RefCell::new(Recorder::new(1 << 16)));
        let fanout = Fanout::new().with(shared(collector.clone())).with(shared(recorder.clone()));
        sim.attach_trace(shared(Rc::new(RefCell::new(fanout))));
        let stop = sim.run(5_000_000);
        assert_eq!(sim.cpu().translation_stats().block_dispatches, 0, "must disengage under trace");
        let events: Vec<TraceEvent> = recorder.borrow().events();
        let mut collector = collector.borrow_mut();
        collector.finish(sim.cpu().stats().cycles);
        (stop, sim.cpu().stats(), events, collector.series())
    };
    let slow = run(false);
    let fast = run(true);
    assert_eq!(slow.0, CoSimStop::Halted);
    assert_eq!(slow, fast);
}

/// Composition with the liveness supervisor: a stuck-flag deadlock is
/// diagnosed at the identical cycle with the identical cause whether
/// the live stretch before it was interpreted, translated,
/// fast-forwarded, or both.
#[test]
fn watchdog_and_fast_forward_compose_with_translation() {
    cases(16, |seed, rng| {
        let kind = if rng.flip() {
            FaultKind::StuckEmpty { channel: 0 }
        } else {
            FaultKind::StuckFull { channel: 0 }
        };
        let inject_at = rng.below(1_500);
        let threshold = rng.below(8_000) + 1;
        let budget = rng.below(60_000) + 5_000;
        let run = |translate: bool, fast_forward: bool| {
            let mut sim = cordic_sim(8, 2);
            sim.set_translation(translate);
            sim.set_fast_forward(fast_forward);
            let stop = sim.run(inject_at);
            if !matches!(stop, CoSimStop::CycleLimit { .. }) {
                let state = sim.save_state();
                return (stop, sim.cpu().stats(), sim.hw_stats(), state);
            }
            Injector::apply(&mut sim, kind);
            sim.set_watchdog(threshold);
            let stop = sim.run(budget);
            let state = sim.save_state();
            (stop, sim.cpu().stats(), sim.hw_stats(), state)
        };
        let reference = run(false, false);
        for (translate, fast_forward) in [(true, false), (true, true), (false, true)] {
            let got = run(translate, fast_forward);
            assert_eq!(
                got, reference,
                "seed {seed}: {kind:?} @{inject_at} wd={threshold} \
                 translate={translate} ff={fast_forward}"
            );
        }
    });
}

/// An armed run horizon pins translated runs to the horizon cycle
/// exactly: the dispatcher never runs a block whose worst case would
/// overshoot, falling back to single-stepping for the remainder.
#[test]
fn run_horizon_clamps_translated_runs() {
    let mut sim = workload("matmul");
    sim.set_translation(true);
    sim.set_run_horizon(Some(700));
    let stop = sim.run(5_000_000);
    assert_eq!(stop, CoSimStop::CycleLimit { blocked: sim.cpu().fsl_block() });
    assert_eq!(sim.cpu().stats().cycles, 700, "run must land exactly on the horizon");
    // Releasing the horizon resumes bit-exactly: the finished run
    // matches an uninterrupted interpreted run.
    sim.set_run_horizon(None);
    let stop = sim.run(5_000_000);
    let got = (stop, sim.cpu().stats(), sim.hw_stats(), sim.save_state());
    let reference = drive(workload("matmul"), false, 5_000_000);
    assert_eq!(got, (reference.0, reference.2, reference.3, reference.4));
}

/// Workload-level self-modifying-code property: a program that patches
/// its own loop body mid-run — at a random iteration, with a random
/// replacement instruction — re-translates and stays bit-exact, and
/// the store provably invalidated cached code.
#[test]
fn self_modifying_programs_stay_bit_exact() {
    use softsim::isa::{encode, ArithFlags, Inst, Reg};
    cases(24, |seed, rng| {
        let total = rng.below(40) + 10;
        // `r3` counts down from `total`; the store fires on the
        // iteration where `r3 == rem`, i.e. after `total - rem` body
        // executions, and the loop keeps running on the patched body.
        let rem = rng.below(total - 1) + 1;
        let imm = (rng.below(500) + 1) as i16;
        // The replacement for `body: addik r5, r5, 1`.
        let patch =
            encode(&Inst::AddI { rd: Reg::new(5), ra: Reg::new(5), imm, flags: ArithFlags::KEEP });
        let src = format!(
            "start:
                addik r3, r0, {total}
                li    r7, {patch:#010x}
                li    r8, body
            loop:
            body:
                addik r5, r5, 1
                addik r6, r6, 1
                xori  r4, r3, {rem}
                bneid r4, skip
                addik r9, r9, 1
                sw    r7, r8, r0
            skip:
                addik r3, r3, -1
                bneid r3, loop
                addik r10, r10, 1
                halt
            "
        );
        let run = |translate: bool| {
            let img = assemble(&src).expect("assembles");
            let mut sim = CoSim::software_only(&img);
            sim.set_translation(translate);
            let stop = sim.run(1_000_000);
            (stop, sim.cpu().stats(), sim.save_state(), sim.cpu().translation_stats())
        };
        let interp = run(false);
        let xlate = run(true);
        assert_eq!(interp.0, CoSimStop::Halted, "seed {seed}: must halt");
        assert_eq!(
            (&interp.0, &interp.1, &interp.2),
            (&xlate.0, &xlate.1, &xlate.2),
            "seed {seed}: total={total} rem={rem} imm={imm}"
        );
        assert!(xlate.3.block_dispatches > 0, "seed {seed}: fast path never engaged");
        assert!(xlate.3.invalidations > 0, "seed {seed}: store into code must invalidate");
    });
}

/// The fast path must actually engage on real workloads and translate
/// the bulk of the retired instruction stream, not just a token block.
#[test]
fn translation_covers_the_bulk_of_compute() {
    // Software-only FIR: pure compute loops, no FSL boundaries — the
    // workload the fast path exists for.
    let mut sim = fir_cosim(&[3, -1, 4, 1, -5], &test_signal(48, 9), false).0;
    sim.set_translation(true);
    assert_eq!(sim.run(50_000_000), CoSimStop::Halted);
    let stats = sim.cpu().translation_stats();
    let retired = sim.cpu().stats().instructions;
    assert!(
        stats.translated_instructions * 2 > retired,
        "translated {}/{retired} instructions — fast path barely engaging: {stats:?}",
        stats.translated_instructions
    );
}
