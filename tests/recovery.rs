//! Integration tests for the rollback-recovery supervisor: detection by
//! watchdog / ECC / TMR / signature, automatic rollback to a clean
//! checkpoint, bit-exact recovered outputs, and byte-identical
//! serial-vs-parallel campaign reports.

use softsim::apps::cordic::hardware::{cordic_peripheral, cordic_peripheral_tmr};
use softsim::apps::cordic::reference::to_fix;
use softsim::apps::cordic::software::{hw_program, CordicBatch};
use softsim::cosim::{CoSim, CoSimStop};
use softsim::isa::asm::assemble;
use softsim::isa::Image;
use softsim::resilience::{
    random_plan_hardware, run_campaign, run_recovery_campaign, run_recovery_campaign_parallel,
    CampaignConfig, FaultKind, Injection, Outcome, RecoveryOutcome, RecoveryPolicy, Supervisor,
};
use softsim::trace::{shared, DetectorKind, FifoDir, Profile, Recorder, TraceEvent};
use std::cell::RefCell;
use std::rc::Rc;

/// The CORDIC workload: four divisions, eight iterations, two PEs.
fn cordic_image() -> Image {
    let batch = CordicBatch::new(&[
        (to_fix(1.0), to_fix(0.5)),
        (to_fix(1.5), to_fix(1.2)),
        (to_fix(2.0), to_fix(-1.0)),
        (to_fix(1.25), to_fix(0.8)),
    ]);
    assemble(&hw_program(&batch, 8, 2)).expect("cordic assembles")
}

fn cordic_sim(img: &Image) -> CoSim {
    CoSim::with_peripheral(img, cordic_peripheral(2))
}

/// Hardened variant: SEC-DED on the FSLs, TMR around the pipeline.
fn hardened_sim(img: &Image) -> CoSim {
    let mut sim = CoSim::with_peripheral(img, cordic_peripheral_tmr(2));
    sim.set_fsl_ecc(true);
    sim
}

fn observe(sim: &CoSim, img: &Image) -> Vec<u32> {
    let base = img.symbol("z_data").expect("result label");
    (0..4).map(|i| sim.cpu().mem().read_u32(base + 4 * i).unwrap()).collect()
}

/// A small, fast policy: 512-cycle checkpoints, a tight watchdog.
fn test_policy() -> RecoveryPolicy {
    RecoveryPolicy { checkpoint_every: 256, watchdog_threshold: 2_000, ..Default::default() }
}

/// A vacuous fault (r0 is hardwired zero) leaves the trial clean: no
/// detector fires, no rollback happens, the outputs are golden.
#[test]
fn vacuous_fault_is_clean() {
    let img = cordic_image();
    let mut sim = cordic_sim(&img);
    let sup = Supervisor::new(test_policy());
    let golden = sup.capture_golden(&mut sim, |s| observe(s, &img));
    assert!(golden.cycles > 0);
    let inj = Injection { cycle: 300, kind: FaultKind::RegBitFlip { reg: 0, bit: 5 } };
    let t = sup.run_trial(&mut sim, &golden, inj, |s| observe(s, &img));
    assert_eq!(t.outcome, RecoveryOutcome::Clean);
    assert!(!t.applied, "r0 flips never change state");
    assert_eq!(t.detector, None);
    assert_eq!(observe(&sim, &img), golden.observed);
}

/// A stuck-empty FSL hangs the processor; the watchdog diagnoses the
/// hang, the supervisor rolls back past the (transient) stuck flag, and
/// the replay completes with bit-exact outputs.
#[test]
fn stuck_flag_hang_recovers_via_watchdog() {
    let img = cordic_image();
    let mut sim = cordic_sim(&img);
    // Signature windows off: otherwise the SDC detector catches the
    // hang's traffic divergence at the next boundary, before the
    // watchdog threshold elapses.
    let sup = Supervisor::new(RecoveryPolicy { signature_windows: false, ..test_policy() });
    let golden = sup.capture_golden(&mut sim, |s| observe(s, &img));
    let inj = Injection { cycle: 300, kind: FaultKind::StuckEmpty { channel: 0 } };
    let t = sup.run_trial(&mut sim, &golden, inj, |s| observe(s, &img));
    assert!(t.applied);
    assert_eq!(t.detector, Some(DetectorKind::Watchdog), "hang must be watchdog-diagnosed");
    match t.outcome {
        RecoveryOutcome::Recovered { retries, detection_latency, .. } => {
            assert!(retries >= 1);
            assert!(detection_latency >= 2_000, "latency includes the stalled stretch");
        }
        other => panic!("expected recovery, got {other:?} (stop {:?})", t.stop),
    }
    assert_eq!(t.stop, CoSimStop::Halted);
    assert_eq!(observe(&sim, &img), golden.observed, "recovered outputs must be golden");
}

/// With SEC-DED enabled, a single-bit upset of an in-flight FSL word is
/// corrected in place: no rollback, clean outcome, corrected counter up.
#[test]
fn ecc_corrects_single_bit_upsets_in_place() {
    let img = cordic_image();
    let mut sim = cordic_sim(&img);
    sim.set_fsl_ecc(true);
    let sup = Supervisor::new(test_policy());
    let golden = sup.capture_golden(&mut sim, |s| observe(s, &img));
    let mut corrected_somewhere = false;
    for cycle in (50..550).step_by(50) {
        let kind = FaultKind::FifoBitFlip { dir: FifoDir::FromHw, channel: 0, index: 0, bit: 7 };
        let t = sup.run_trial(&mut sim, &golden, Injection { cycle, kind }, |s| observe(s, &img));
        assert_eq!(
            t.outcome,
            RecoveryOutcome::Clean,
            "corrected upset needs no rollback (cycle {cycle}, stop {:?})",
            t.stop
        );
        assert_eq!(observe(&sim, &img), golden.observed);
        if t.applied && sim.fsl().ecc_corrected_total() > 0 {
            corrected_somewhere = true;
        }
    }
    assert!(corrected_somewhere, "at least one flip must land on a buffered word");
}

/// A double-bit upset of the same word defeats correction but not
/// detection: the decoder flags it, the supervisor rolls back, and the
/// replay is clean.
#[test]
fn double_bit_upset_recovers_via_ecc_detection() {
    let img = cordic_image();
    let mut sim = cordic_sim(&img);
    sim.set_fsl_ecc(true);
    let sup = Supervisor::new(test_policy());
    let golden = sup.capture_golden(&mut sim, |s| observe(s, &img));
    let mut recovered_somewhere = false;
    for cycle in (50..550).step_by(50) {
        let flip = |bit| FaultKind::FifoBitFlip { dir: FifoDir::FromHw, channel: 0, index: 0, bit };
        let plan = vec![Injection { cycle, kind: flip(5) }, Injection { cycle, kind: flip(19) }];
        let t = sup.run_trial_plan(&mut sim, &golden, plan, |s| observe(s, &img));
        assert!(
            matches!(t.outcome, RecoveryOutcome::Clean | RecoveryOutcome::Recovered { .. }),
            "cycle {cycle}: {:?}",
            t.outcome
        );
        assert_eq!(observe(&sim, &img), golden.observed);
        if let RecoveryOutcome::Recovered { .. } = t.outcome {
            assert_eq!(t.detector, Some(DetectorKind::Ecc), "cycle {cycle}");
            recovered_somewhere = true;
        }
    }
    assert!(recovered_somewhere, "at least one double flip must hit a buffered word");
}

/// An SEU in the configured hardware's sequential state makes the TMR
/// replicas disagree; the voter masks the value, the miscompare counter
/// trips the detector, and the rollback scrubs the upset replica.
#[test]
fn tmr_detects_block_state_upsets_and_rollback_scrubs_them() {
    let img = cordic_image();
    let mut sim = hardened_sim(&img);
    let sup = Supervisor::new(test_policy());
    let golden = sup.capture_golden(&mut sim, |s| observe(s, &img));
    let mut tmr_detected = false;
    for (word, cycle) in [(3u32, 150u64), (9, 250), (17, 350), (24, 450)] {
        let kind = FaultKind::BlockStateFlip { peripheral: 0, word, bit: 4 };
        let t = sup.run_trial(&mut sim, &golden, Injection { cycle, kind }, |s| observe(s, &img));
        assert!(
            matches!(t.outcome, RecoveryOutcome::Clean | RecoveryOutcome::Recovered { .. }),
            "word {word} cycle {cycle}: {:?} (stop {:?})",
            t.outcome,
            t.stop
        );
        assert_eq!(observe(&sim, &img), golden.observed, "word {word} cycle {cycle}");
        if t.detector == Some(DetectorKind::Tmr) {
            tmr_detected = true;
        }
    }
    assert!(tmr_detected, "at least one state flip must trip the voter");
}

/// On the unhardened system a register upset surfaces as silent data
/// corruption; the windowed signature (or the observable backstop)
/// catches it and the rollback undoes it.
#[test]
fn silent_corruption_recovers_via_signature_or_observable() {
    let img = cordic_image();
    let mut sim = cordic_sim(&img);
    let sup = Supervisor::new(test_policy());
    let golden = sup.capture_golden(&mut sim, |s| observe(s, &img));
    let mut recovered = 0;
    for (reg, cycle) in [(3u8, 120u64), (4, 220), (5, 320), (6, 420), (7, 520)] {
        let kind = FaultKind::RegBitFlip { reg, bit: 12 };
        let t = sup.run_trial(&mut sim, &golden, Injection { cycle, kind }, |s| observe(s, &img));
        assert_ne!(t.outcome, RecoveryOutcome::Unrecoverable, "r{reg} @{cycle}");
        assert_eq!(observe(&sim, &img), golden.observed, "r{reg} @{cycle}");
        if let RecoveryOutcome::Recovered { .. } = t.outcome {
            assert!(
                matches!(
                    t.detector,
                    Some(
                        DetectorKind::Signature
                            | DetectorKind::Observable
                            | DetectorKind::Watchdog
                            | DetectorKind::Fault
                    )
                ),
                "r{reg} @{cycle}: {:?}",
                t.detector
            );
            recovered += 1;
        }
    }
    assert!(recovered >= 1, "some register upset must corrupt and recover");
}

/// The supervisor narrates its work: detection and recovery events land
/// on the attached sink, and the profile exporter rolls them up.
#[test]
fn supervisor_emits_detection_and_recovery_events() {
    let img = cordic_image();
    let mut sim = cordic_sim(&img);
    let recorder = Rc::new(RefCell::new(Recorder::new(1 << 12)));
    let profile = Rc::new(RefCell::new(Profile::new()));
    let mut sup = Supervisor::new(RecoveryPolicy { signature_windows: false, ..test_policy() });
    sup.attach_trace(shared(recorder.clone()));
    let golden = sup.capture_golden(&mut sim, |s| observe(s, &img));
    let inj = Injection { cycle: 300, kind: FaultKind::StuckEmpty { channel: 0 } };
    let t = sup.run_trial(&mut sim, &golden, inj, |s| observe(s, &img));
    assert!(matches!(t.outcome, RecoveryOutcome::Recovered { .. }));
    let events = recorder.borrow().events();
    let detections = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::FaultDetected { detector: DetectorKind::Watchdog, .. }))
        .count();
    let recoveries = events.iter().filter(|e| matches!(e, TraceEvent::Recovered { .. })).count();
    assert!(detections >= 1, "watchdog detection must be traced");
    assert!(recoveries >= 1, "rollback must be traced");
    {
        use softsim::trace::TraceSink;
        let mut p = profile.borrow_mut();
        for e in &events {
            p.event(e);
        }
        assert!(p.faults_detected() >= 1);
        assert!(p.recoveries() >= 1);
    }
}

/// Same seed, same plan: the serial report and the parallel report are
/// identical — at any worker count.
#[test]
fn recovery_campaign_serial_equals_parallel() {
    let img = cordic_image();
    let plan = random_plan_hardware(0x5EED_0005, 18, (50, 550), img.bytes().len() as u32, &[0]);
    let policy = test_policy();
    let mut sim = cordic_sim(&img);
    let serial = run_recovery_campaign(&mut sim, &plan, |s| observe(s, &img), policy);
    for workers in [1usize, 3, 8] {
        let parallel = run_recovery_campaign_parallel(
            || cordic_sim(&img),
            &plan,
            |s| observe(s, &img),
            policy,
            workers,
        );
        assert_eq!(serial, parallel, "parallel report diverged at {workers} workers");
    }
    let (clean, recovered, unrecoverable) = serial.counts();
    assert_eq!(clean + recovered + unrecoverable, plan.len());
}

/// The headline robustness claim, in miniature: faults the plain
/// campaign classifies as SDC or hang on the hardened system are
/// overwhelmingly converted to `Recovered` by the supervisor — with
/// bit-exact outputs.
#[test]
fn hardened_supervisor_converts_sdc_and_hangs_to_recovered() {
    let img = cordic_image();
    let plan = random_plan_hardware(0xFA17_2005, 60, (50, 550), img.bytes().len() as u32, &[0]);

    // Baseline: classify the same plan, unsupervised, on the same
    // hardened system.
    let mut sim = hardened_sim(&img);
    let baseline = run_campaign(&mut sim, &plan, |s| observe(s, &img), CampaignConfig::default());

    let mut sim = hardened_sim(&img);
    let report = run_recovery_campaign(&mut sim, &plan, |s| observe(s, &img), test_policy());
    assert_eq!(report.trials.len(), baseline.trials.len());

    let mut bad = 0usize;
    let mut converted = 0usize;
    for (b, r) in baseline.trials.iter().zip(&report.trials) {
        if matches!(b.outcome, Outcome::Sdc | Outcome::Deadlock | Outcome::Fault) {
            bad += 1;
            if matches!(r.outcome, RecoveryOutcome::Recovered { .. } | RecoveryOutcome::Clean) {
                converted += 1;
            }
        }
    }
    assert!(bad >= 3, "the seed must produce some damaging faults, got {bad}");
    assert!(
        converted * 10 >= bad * 7,
        "supervisor must convert >= 70% of damaging faults, got {converted}/{bad}"
    );
}
