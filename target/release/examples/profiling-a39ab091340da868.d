/root/repo/target/release/examples/profiling-a39ab091340da868.d: examples/profiling.rs

/root/repo/target/release/examples/profiling-a39ab091340da868: examples/profiling.rs

examples/profiling.rs:
