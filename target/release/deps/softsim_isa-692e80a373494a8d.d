/root/repo/target/release/deps/softsim_isa-692e80a373494a8d.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/config.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/image.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libsoftsim_isa-692e80a373494a8d.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/config.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/image.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libsoftsim_isa-692e80a373494a8d.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/config.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/image.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/config.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/image.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
