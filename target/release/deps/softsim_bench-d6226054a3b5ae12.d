/root/repo/target/release/deps/softsim_bench-d6226054a3b5ae12.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libsoftsim_bench-d6226054a3b5ae12.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libsoftsim_bench-d6226054a3b5ae12.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/measure.rs:
crates/bench/src/tables.rs:
crates/bench/src/workloads.rs:
