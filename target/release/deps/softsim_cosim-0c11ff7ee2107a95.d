/root/repo/target/release/deps/softsim_cosim-0c11ff7ee2107a95.d: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs

/root/repo/target/release/deps/libsoftsim_cosim-0c11ff7ee2107a95.rlib: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs

/root/repo/target/release/deps/libsoftsim_cosim-0c11ff7ee2107a95.rmeta: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs

crates/core/src/lib.rs:
crates/core/src/binding.rs:
crates/core/src/cosim.rs:
crates/core/src/opb.rs:
