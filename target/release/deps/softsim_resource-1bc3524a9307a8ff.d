/root/repo/target/release/deps/softsim_resource-1bc3524a9307a8ff.d: crates/resource/src/lib.rs

/root/repo/target/release/deps/libsoftsim_resource-1bc3524a9307a8ff.rlib: crates/resource/src/lib.rs

/root/repo/target/release/deps/libsoftsim_resource-1bc3524a9307a8ff.rmeta: crates/resource/src/lib.rs

crates/resource/src/lib.rs:
