/root/repo/target/release/deps/softsim_trace-fe74e8d804a62990.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs

/root/repo/target/release/deps/libsoftsim_trace-fe74e8d804a62990.rlib: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs

/root/repo/target/release/deps/libsoftsim_trace-fe74e8d804a62990.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/event.rs:
crates/trace/src/json.rs:
crates/trace/src/profile.rs:
crates/trace/src/recorder.rs:
crates/trace/src/sink.rs:
crates/trace/src/timeline.rs:
