/root/repo/target/release/deps/trace_overhead-f04bc789479d4382.d: crates/bench/benches/trace_overhead.rs

/root/repo/target/release/deps/trace_overhead-f04bc789479d4382: crates/bench/benches/trace_overhead.rs

crates/bench/benches/trace_overhead.rs:
