/root/repo/target/release/deps/softsim-ec584269c0627be3.d: src/lib.rs

/root/repo/target/release/deps/libsoftsim-ec584269c0627be3.rlib: src/lib.rs

/root/repo/target/release/deps/libsoftsim-ec584269c0627be3.rmeta: src/lib.rs

src/lib.rs:
