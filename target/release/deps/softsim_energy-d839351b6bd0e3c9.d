/root/repo/target/release/deps/softsim_energy-d839351b6bd0e3c9.d: crates/energy/src/lib.rs

/root/repo/target/release/deps/libsoftsim_energy-d839351b6bd0e3c9.rlib: crates/energy/src/lib.rs

/root/repo/target/release/deps/libsoftsim_energy-d839351b6bd0e3c9.rmeta: crates/energy/src/lib.rs

crates/energy/src/lib.rs:
