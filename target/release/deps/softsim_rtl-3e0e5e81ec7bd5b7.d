/root/repo/target/release/deps/softsim_rtl-3e0e5e81ec7bd5b7.d: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs

/root/repo/target/release/deps/libsoftsim_rtl-3e0e5e81ec7bd5b7.rlib: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs

/root/repo/target/release/deps/libsoftsim_rtl-3e0e5e81ec7bd5b7.rmeta: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs

crates/rtl/src/lib.rs:
crates/rtl/src/comp.rs:
crates/rtl/src/kernel.rs:
crates/rtl/src/soc.rs:
crates/rtl/src/vcd.rs:
