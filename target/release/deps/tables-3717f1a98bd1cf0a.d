/root/repo/target/release/deps/tables-3717f1a98bd1cf0a.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-3717f1a98bd1cf0a: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
