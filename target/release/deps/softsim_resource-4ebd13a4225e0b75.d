/root/repo/target/release/deps/softsim_resource-4ebd13a4225e0b75.d: crates/resource/src/lib.rs

/root/repo/target/release/deps/libsoftsim_resource-4ebd13a4225e0b75.rlib: crates/resource/src/lib.rs

/root/repo/target/release/deps/libsoftsim_resource-4ebd13a4225e0b75.rmeta: crates/resource/src/lib.rs

crates/resource/src/lib.rs:
