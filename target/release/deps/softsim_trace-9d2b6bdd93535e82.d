/root/repo/target/release/deps/softsim_trace-9d2b6bdd93535e82.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs

/root/repo/target/release/deps/libsoftsim_trace-9d2b6bdd93535e82.rlib: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs

/root/repo/target/release/deps/libsoftsim_trace-9d2b6bdd93535e82.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/event.rs:
crates/trace/src/json.rs:
crates/trace/src/profile.rs:
crates/trace/src/recorder.rs:
crates/trace/src/sink.rs:
crates/trace/src/timeline.rs:
