/root/repo/target/release/deps/softsim_blocks-042e45c9091d1463.d: crates/blocks/src/lib.rs crates/blocks/src/block.rs crates/blocks/src/fix.rs crates/blocks/src/gen.rs crates/blocks/src/graph.rs crates/blocks/src/library/mod.rs crates/blocks/src/library/arith.rs crates/blocks/src/library/logic.rs crates/blocks/src/library/rate.rs crates/blocks/src/library/seq.rs crates/blocks/src/resource.rs

/root/repo/target/release/deps/libsoftsim_blocks-042e45c9091d1463.rlib: crates/blocks/src/lib.rs crates/blocks/src/block.rs crates/blocks/src/fix.rs crates/blocks/src/gen.rs crates/blocks/src/graph.rs crates/blocks/src/library/mod.rs crates/blocks/src/library/arith.rs crates/blocks/src/library/logic.rs crates/blocks/src/library/rate.rs crates/blocks/src/library/seq.rs crates/blocks/src/resource.rs

/root/repo/target/release/deps/libsoftsim_blocks-042e45c9091d1463.rmeta: crates/blocks/src/lib.rs crates/blocks/src/block.rs crates/blocks/src/fix.rs crates/blocks/src/gen.rs crates/blocks/src/graph.rs crates/blocks/src/library/mod.rs crates/blocks/src/library/arith.rs crates/blocks/src/library/logic.rs crates/blocks/src/library/rate.rs crates/blocks/src/library/seq.rs crates/blocks/src/resource.rs

crates/blocks/src/lib.rs:
crates/blocks/src/block.rs:
crates/blocks/src/fix.rs:
crates/blocks/src/gen.rs:
crates/blocks/src/graph.rs:
crates/blocks/src/library/mod.rs:
crates/blocks/src/library/arith.rs:
crates/blocks/src/library/logic.rs:
crates/blocks/src/library/rate.rs:
crates/blocks/src/library/seq.rs:
crates/blocks/src/resource.rs:
