/root/repo/target/release/deps/softsim_iss-3f2f4340f16808e1.d: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs

/root/repo/target/release/deps/libsoftsim_iss-3f2f4340f16808e1.rlib: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs

/root/repo/target/release/deps/libsoftsim_iss-3f2f4340f16808e1.rmeta: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs

crates/iss/src/lib.rs:
crates/iss/src/cpu.rs:
crates/iss/src/debug.rs:
crates/iss/src/exec.rs:
crates/iss/src/fault.rs:
crates/iss/src/stats.rs:
