/root/repo/target/release/deps/softsim_bus-4696ceaa641b2720.d: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs

/root/repo/target/release/deps/libsoftsim_bus-4696ceaa641b2720.rlib: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs

/root/repo/target/release/deps/libsoftsim_bus-4696ceaa641b2720.rmeta: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs

crates/bus/src/lib.rs:
crates/bus/src/fsl.rs:
crates/bus/src/lmb.rs:
crates/bus/src/opb.rs:
