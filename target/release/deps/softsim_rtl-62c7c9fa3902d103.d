/root/repo/target/release/deps/softsim_rtl-62c7c9fa3902d103.d: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs

/root/repo/target/release/deps/libsoftsim_rtl-62c7c9fa3902d103.rlib: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs

/root/repo/target/release/deps/libsoftsim_rtl-62c7c9fa3902d103.rmeta: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs

crates/rtl/src/lib.rs:
crates/rtl/src/comp.rs:
crates/rtl/src/kernel.rs:
crates/rtl/src/soc.rs:
crates/rtl/src/vcd.rs:
