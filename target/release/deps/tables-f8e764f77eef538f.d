/root/repo/target/release/deps/tables-f8e764f77eef538f.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-f8e764f77eef538f: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
