/root/repo/target/release/deps/softsim_energy-9c93905607b930a5.d: crates/energy/src/lib.rs

/root/repo/target/release/deps/libsoftsim_energy-9c93905607b930a5.rlib: crates/energy/src/lib.rs

/root/repo/target/release/deps/libsoftsim_energy-9c93905607b930a5.rmeta: crates/energy/src/lib.rs

crates/energy/src/lib.rs:
