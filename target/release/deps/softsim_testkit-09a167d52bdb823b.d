/root/repo/target/release/deps/softsim_testkit-09a167d52bdb823b.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libsoftsim_testkit-09a167d52bdb823b.rlib: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libsoftsim_testkit-09a167d52bdb823b.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
