/root/repo/target/release/deps/softsim_iss-5a4e58cc56a5762a.d: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs

/root/repo/target/release/deps/libsoftsim_iss-5a4e58cc56a5762a.rlib: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs

/root/repo/target/release/deps/libsoftsim_iss-5a4e58cc56a5762a.rmeta: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs

crates/iss/src/lib.rs:
crates/iss/src/cpu.rs:
crates/iss/src/debug.rs:
crates/iss/src/exec.rs:
crates/iss/src/fault.rs:
crates/iss/src/stats.rs:
