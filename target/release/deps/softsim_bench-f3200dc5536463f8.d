/root/repo/target/release/deps/softsim_bench-f3200dc5536463f8.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libsoftsim_bench-f3200dc5536463f8.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libsoftsim_bench-f3200dc5536463f8.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/measure.rs:
crates/bench/src/tables.rs:
crates/bench/src/workloads.rs:
