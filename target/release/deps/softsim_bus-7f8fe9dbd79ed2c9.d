/root/repo/target/release/deps/softsim_bus-7f8fe9dbd79ed2c9.d: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs

/root/repo/target/release/deps/libsoftsim_bus-7f8fe9dbd79ed2c9.rlib: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs

/root/repo/target/release/deps/libsoftsim_bus-7f8fe9dbd79ed2c9.rmeta: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs

crates/bus/src/lib.rs:
crates/bus/src/fsl.rs:
crates/bus/src/lmb.rs:
crates/bus/src/opb.rs:
