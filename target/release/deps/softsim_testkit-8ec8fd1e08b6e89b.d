/root/repo/target/release/deps/softsim_testkit-8ec8fd1e08b6e89b.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libsoftsim_testkit-8ec8fd1e08b6e89b.rlib: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libsoftsim_testkit-8ec8fd1e08b6e89b.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
