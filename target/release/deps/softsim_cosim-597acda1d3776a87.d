/root/repo/target/release/deps/softsim_cosim-597acda1d3776a87.d: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs

/root/repo/target/release/deps/libsoftsim_cosim-597acda1d3776a87.rlib: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs

/root/repo/target/release/deps/libsoftsim_cosim-597acda1d3776a87.rmeta: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs

crates/core/src/lib.rs:
crates/core/src/binding.rs:
crates/core/src/cosim.rs:
crates/core/src/opb.rs:
