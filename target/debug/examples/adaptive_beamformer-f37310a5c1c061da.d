/root/repo/target/debug/examples/adaptive_beamformer-f37310a5c1c061da.d: examples/adaptive_beamformer.rs

/root/repo/target/debug/examples/adaptive_beamformer-f37310a5c1c061da: examples/adaptive_beamformer.rs

examples/adaptive_beamformer.rs:
