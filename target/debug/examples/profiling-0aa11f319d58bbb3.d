/root/repo/target/debug/examples/profiling-0aa11f319d58bbb3.d: examples/profiling.rs Cargo.toml

/root/repo/target/debug/examples/libprofiling-0aa11f319d58bbb3.rmeta: examples/profiling.rs Cargo.toml

examples/profiling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
