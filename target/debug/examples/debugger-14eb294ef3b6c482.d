/root/repo/target/debug/examples/debugger-14eb294ef3b6c482.d: examples/debugger.rs Cargo.toml

/root/repo/target/debug/examples/libdebugger-14eb294ef3b6c482.rmeta: examples/debugger.rs Cargo.toml

examples/debugger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
