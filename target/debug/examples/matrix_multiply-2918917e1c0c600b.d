/root/repo/target/debug/examples/matrix_multiply-2918917e1c0c600b.d: examples/matrix_multiply.rs Cargo.toml

/root/repo/target/debug/examples/libmatrix_multiply-2918917e1c0c600b.rmeta: examples/matrix_multiply.rs Cargo.toml

examples/matrix_multiply.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
