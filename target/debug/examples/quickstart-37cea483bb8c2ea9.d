/root/repo/target/debug/examples/quickstart-37cea483bb8c2ea9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-37cea483bb8c2ea9: examples/quickstart.rs

examples/quickstart.rs:
