/root/repo/target/debug/examples/energy_estimation-000f8ae353a1d852.d: examples/energy_estimation.rs Cargo.toml

/root/repo/target/debug/examples/libenergy_estimation-000f8ae353a1d852.rmeta: examples/energy_estimation.rs Cargo.toml

examples/energy_estimation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
