/root/repo/target/debug/examples/lpc_weight_update-d2994759e664564c.d: examples/lpc_weight_update.rs

/root/repo/target/debug/examples/lpc_weight_update-d2994759e664564c: examples/lpc_weight_update.rs

examples/lpc_weight_update.rs:
