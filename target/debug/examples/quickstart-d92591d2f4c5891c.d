/root/repo/target/debug/examples/quickstart-d92591d2f4c5891c.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d92591d2f4c5891c.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
