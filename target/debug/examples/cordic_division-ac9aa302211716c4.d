/root/repo/target/debug/examples/cordic_division-ac9aa302211716c4.d: examples/cordic_division.rs

/root/repo/target/debug/examples/cordic_division-ac9aa302211716c4: examples/cordic_division.rs

examples/cordic_division.rs:
