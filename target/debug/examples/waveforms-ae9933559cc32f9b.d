/root/repo/target/debug/examples/waveforms-ae9933559cc32f9b.d: examples/waveforms.rs

/root/repo/target/debug/examples/waveforms-ae9933559cc32f9b: examples/waveforms.rs

examples/waveforms.rs:
