/root/repo/target/debug/examples/matrix_multiply-05e3f9b3fcdeb08f.d: examples/matrix_multiply.rs

/root/repo/target/debug/examples/matrix_multiply-05e3f9b3fcdeb08f: examples/matrix_multiply.rs

examples/matrix_multiply.rs:
