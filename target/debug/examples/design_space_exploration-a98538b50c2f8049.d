/root/repo/target/debug/examples/design_space_exploration-a98538b50c2f8049.d: examples/design_space_exploration.rs

/root/repo/target/debug/examples/design_space_exploration-a98538b50c2f8049: examples/design_space_exploration.rs

examples/design_space_exploration.rs:
