/root/repo/target/debug/examples/cordic_division-8c8f98342a51d25c.d: examples/cordic_division.rs Cargo.toml

/root/repo/target/debug/examples/libcordic_division-8c8f98342a51d25c.rmeta: examples/cordic_division.rs Cargo.toml

examples/cordic_division.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
