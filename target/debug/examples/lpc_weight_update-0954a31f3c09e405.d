/root/repo/target/debug/examples/lpc_weight_update-0954a31f3c09e405.d: examples/lpc_weight_update.rs Cargo.toml

/root/repo/target/debug/examples/liblpc_weight_update-0954a31f3c09e405.rmeta: examples/lpc_weight_update.rs Cargo.toml

examples/lpc_weight_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
