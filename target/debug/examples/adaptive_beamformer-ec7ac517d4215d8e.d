/root/repo/target/debug/examples/adaptive_beamformer-ec7ac517d4215d8e.d: examples/adaptive_beamformer.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_beamformer-ec7ac517d4215d8e.rmeta: examples/adaptive_beamformer.rs Cargo.toml

examples/adaptive_beamformer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
