/root/repo/target/debug/examples/waveforms-c795700b12702912.d: examples/waveforms.rs Cargo.toml

/root/repo/target/debug/examples/libwaveforms-c795700b12702912.rmeta: examples/waveforms.rs Cargo.toml

examples/waveforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
