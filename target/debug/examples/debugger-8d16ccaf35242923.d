/root/repo/target/debug/examples/debugger-8d16ccaf35242923.d: examples/debugger.rs

/root/repo/target/debug/examples/debugger-8d16ccaf35242923: examples/debugger.rs

examples/debugger.rs:
