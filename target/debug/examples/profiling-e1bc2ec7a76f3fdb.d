/root/repo/target/debug/examples/profiling-e1bc2ec7a76f3fdb.d: examples/profiling.rs

/root/repo/target/debug/examples/profiling-e1bc2ec7a76f3fdb: examples/profiling.rs

examples/profiling.rs:
