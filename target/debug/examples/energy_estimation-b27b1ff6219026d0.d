/root/repo/target/debug/examples/energy_estimation-b27b1ff6219026d0.d: examples/energy_estimation.rs

/root/repo/target/debug/examples/energy_estimation-b27b1ff6219026d0: examples/energy_estimation.rs

examples/energy_estimation.rs:
