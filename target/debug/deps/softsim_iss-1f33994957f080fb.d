/root/repo/target/debug/deps/softsim_iss-1f33994957f080fb.d: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_iss-1f33994957f080fb.rmeta: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs Cargo.toml

crates/iss/src/lib.rs:
crates/iss/src/cpu.rs:
crates/iss/src/debug.rs:
crates/iss/src/exec.rs:
crates/iss/src/fault.rs:
crates/iss/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
