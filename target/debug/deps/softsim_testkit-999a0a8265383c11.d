/root/repo/target/debug/deps/softsim_testkit-999a0a8265383c11.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_testkit-999a0a8265383c11.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
