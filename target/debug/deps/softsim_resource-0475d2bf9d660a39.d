/root/repo/target/debug/deps/softsim_resource-0475d2bf9d660a39.d: crates/resource/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_resource-0475d2bf9d660a39.rmeta: crates/resource/src/lib.rs Cargo.toml

crates/resource/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
