/root/repo/target/debug/deps/trace-c1d3a9b7f94ff9db.d: tests/trace.rs Cargo.toml

/root/repo/target/debug/deps/libtrace-c1d3a9b7f94ff9db.rmeta: tests/trace.rs Cargo.toml

tests/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
