/root/repo/target/debug/deps/softsim_rtl-148adc6e2fb13191.d: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs

/root/repo/target/debug/deps/softsim_rtl-148adc6e2fb13191: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs

crates/rtl/src/lib.rs:
crates/rtl/src/comp.rs:
crates/rtl/src/kernel.rs:
crates/rtl/src/soc.rs:
crates/rtl/src/vcd.rs:
