/root/repo/target/debug/deps/softsim_cosim-1b92f427fb56aac8.d: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs

/root/repo/target/debug/deps/libsoftsim_cosim-1b92f427fb56aac8.rlib: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs

/root/repo/target/debug/deps/libsoftsim_cosim-1b92f427fb56aac8.rmeta: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs

crates/core/src/lib.rs:
crates/core/src/binding.rs:
crates/core/src/cosim.rs:
crates/core/src/opb.rs:
