/root/repo/target/debug/deps/softsim-b4ce95477ad351bf.d: src/lib.rs

/root/repo/target/debug/deps/softsim-b4ce95477ad351bf: src/lib.rs

src/lib.rs:
