/root/repo/target/debug/deps/softsim_cosim-6e44dc9df77a2742.d: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs

/root/repo/target/debug/deps/softsim_cosim-6e44dc9df77a2742: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs

crates/core/src/lib.rs:
crates/core/src/binding.rs:
crates/core/src/cosim.rs:
crates/core/src/opb.rs:
