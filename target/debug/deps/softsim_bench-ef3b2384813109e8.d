/root/repo/target/debug/deps/softsim_bench-ef3b2384813109e8.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_bench-ef3b2384813109e8.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/measure.rs:
crates/bench/src/tables.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
