/root/repo/target/debug/deps/softsim_apps-4f69557910fb2019.d: crates/apps/src/lib.rs crates/apps/src/beamformer.rs crates/apps/src/cordic/mod.rs crates/apps/src/cordic/divider.rs crates/apps/src/cordic/hardware.rs crates/apps/src/cordic/opb.rs crates/apps/src/cordic/reference.rs crates/apps/src/cordic/rtl.rs crates/apps/src/cordic/software.rs crates/apps/src/fir/mod.rs crates/apps/src/fir/hardware.rs crates/apps/src/fir/reference.rs crates/apps/src/fir/rtl.rs crates/apps/src/fir/software.rs crates/apps/src/lpc/mod.rs crates/apps/src/lpc/reference.rs crates/apps/src/lpc/software.rs crates/apps/src/matmul/mod.rs crates/apps/src/matmul/hardware.rs crates/apps/src/matmul/reference.rs crates/apps/src/matmul/rtl.rs crates/apps/src/matmul/software.rs crates/apps/src/matmul/structural.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_apps-4f69557910fb2019.rmeta: crates/apps/src/lib.rs crates/apps/src/beamformer.rs crates/apps/src/cordic/mod.rs crates/apps/src/cordic/divider.rs crates/apps/src/cordic/hardware.rs crates/apps/src/cordic/opb.rs crates/apps/src/cordic/reference.rs crates/apps/src/cordic/rtl.rs crates/apps/src/cordic/software.rs crates/apps/src/fir/mod.rs crates/apps/src/fir/hardware.rs crates/apps/src/fir/reference.rs crates/apps/src/fir/rtl.rs crates/apps/src/fir/software.rs crates/apps/src/lpc/mod.rs crates/apps/src/lpc/reference.rs crates/apps/src/lpc/software.rs crates/apps/src/matmul/mod.rs crates/apps/src/matmul/hardware.rs crates/apps/src/matmul/reference.rs crates/apps/src/matmul/rtl.rs crates/apps/src/matmul/software.rs crates/apps/src/matmul/structural.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/beamformer.rs:
crates/apps/src/cordic/mod.rs:
crates/apps/src/cordic/divider.rs:
crates/apps/src/cordic/hardware.rs:
crates/apps/src/cordic/opb.rs:
crates/apps/src/cordic/reference.rs:
crates/apps/src/cordic/rtl.rs:
crates/apps/src/cordic/software.rs:
crates/apps/src/fir/mod.rs:
crates/apps/src/fir/hardware.rs:
crates/apps/src/fir/reference.rs:
crates/apps/src/fir/rtl.rs:
crates/apps/src/fir/software.rs:
crates/apps/src/lpc/mod.rs:
crates/apps/src/lpc/reference.rs:
crates/apps/src/lpc/software.rs:
crates/apps/src/matmul/mod.rs:
crates/apps/src/matmul/hardware.rs:
crates/apps/src/matmul/reference.rs:
crates/apps/src/matmul/rtl.rs:
crates/apps/src/matmul/software.rs:
crates/apps/src/matmul/structural.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
