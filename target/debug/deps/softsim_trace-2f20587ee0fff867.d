/root/repo/target/debug/deps/softsim_trace-2f20587ee0fff867.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs

/root/repo/target/debug/deps/softsim_trace-2f20587ee0fff867: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/event.rs:
crates/trace/src/json.rs:
crates/trace/src/profile.rs:
crates/trace/src/recorder.rs:
crates/trace/src/sink.rs:
crates/trace/src/timeline.rs:
