/root/repo/target/debug/deps/softsim-16d627e8c0596f60.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim-16d627e8c0596f60.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
