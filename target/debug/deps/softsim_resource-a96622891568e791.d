/root/repo/target/debug/deps/softsim_resource-a96622891568e791.d: crates/resource/src/lib.rs

/root/repo/target/debug/deps/libsoftsim_resource-a96622891568e791.rlib: crates/resource/src/lib.rs

/root/repo/target/debug/deps/libsoftsim_resource-a96622891568e791.rmeta: crates/resource/src/lib.rs

crates/resource/src/lib.rs:
