/root/repo/target/debug/deps/tables-089a99b6a44d4527.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-089a99b6a44d4527: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
