/root/repo/target/debug/deps/softsim-259d382ba0b45cce.d: src/lib.rs

/root/repo/target/debug/deps/libsoftsim-259d382ba0b45cce.rlib: src/lib.rs

/root/repo/target/debug/deps/libsoftsim-259d382ba0b45cce.rmeta: src/lib.rs

src/lib.rs:
