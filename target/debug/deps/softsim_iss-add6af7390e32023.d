/root/repo/target/debug/deps/softsim_iss-add6af7390e32023.d: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs

/root/repo/target/debug/deps/softsim_iss-add6af7390e32023: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs

crates/iss/src/lib.rs:
crates/iss/src/cpu.rs:
crates/iss/src/debug.rs:
crates/iss/src/exec.rs:
crates/iss/src/fault.rs:
crates/iss/src/stats.rs:
