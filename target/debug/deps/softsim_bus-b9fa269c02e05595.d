/root/repo/target/debug/deps/softsim_bus-b9fa269c02e05595.d: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs

/root/repo/target/debug/deps/softsim_bus-b9fa269c02e05595: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs

crates/bus/src/lib.rs:
crates/bus/src/fsl.rs:
crates/bus/src/lmb.rs:
crates/bus/src/opb.rs:
