/root/repo/target/debug/deps/softsim_bus-1ea4ccaf8ae8620e.d: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_bus-1ea4ccaf8ae8620e.rmeta: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs Cargo.toml

crates/bus/src/lib.rs:
crates/bus/src/fsl.rs:
crates/bus/src/lmb.rs:
crates/bus/src/opb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
