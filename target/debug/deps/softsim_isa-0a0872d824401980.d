/root/repo/target/debug/deps/softsim_isa-0a0872d824401980.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/config.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/image.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libsoftsim_isa-0a0872d824401980.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/config.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/image.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libsoftsim_isa-0a0872d824401980.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/config.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/image.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/config.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/image.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
