/root/repo/target/debug/deps/softsim_testkit-cf3eda14e520cb80.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libsoftsim_testkit-cf3eda14e520cb80.rlib: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libsoftsim_testkit-cf3eda14e520cb80.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
