/root/repo/target/debug/deps/end_to_end-ef94e5caa2d7772a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ef94e5caa2d7772a: tests/end_to_end.rs

tests/end_to_end.rs:
