/root/repo/target/debug/deps/softsim_trace-1a726b07fa78be98.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs

/root/repo/target/debug/deps/libsoftsim_trace-1a726b07fa78be98.rlib: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs

/root/repo/target/debug/deps/libsoftsim_trace-1a726b07fa78be98.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/event.rs:
crates/trace/src/json.rs:
crates/trace/src/profile.rs:
crates/trace/src/recorder.rs:
crates/trace/src/sink.rs:
crates/trace/src/timeline.rs:
