/root/repo/target/debug/deps/softsim_testkit-e5d1426550c979eb.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_testkit-e5d1426550c979eb.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
