/root/repo/target/debug/deps/table1_sim_time-fc068fe245078100.d: crates/bench/benches/table1_sim_time.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_sim_time-fc068fe245078100.rmeta: crates/bench/benches/table1_sim_time.rs Cargo.toml

crates/bench/benches/table1_sim_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
