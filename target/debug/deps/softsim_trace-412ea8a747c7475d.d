/root/repo/target/debug/deps/softsim_trace-412ea8a747c7475d.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_trace-412ea8a747c7475d.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/profile.rs crates/trace/src/recorder.rs crates/trace/src/sink.rs crates/trace/src/timeline.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/event.rs:
crates/trace/src/json.rs:
crates/trace/src/profile.rs:
crates/trace/src/recorder.rs:
crates/trace/src/sink.rs:
crates/trace/src/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
