/root/repo/target/debug/deps/softsim_blocks-8889492d2a419cc0.d: crates/blocks/src/lib.rs crates/blocks/src/block.rs crates/blocks/src/fix.rs crates/blocks/src/gen.rs crates/blocks/src/graph.rs crates/blocks/src/library/mod.rs crates/blocks/src/library/arith.rs crates/blocks/src/library/logic.rs crates/blocks/src/library/rate.rs crates/blocks/src/library/seq.rs crates/blocks/src/resource.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_blocks-8889492d2a419cc0.rmeta: crates/blocks/src/lib.rs crates/blocks/src/block.rs crates/blocks/src/fix.rs crates/blocks/src/gen.rs crates/blocks/src/graph.rs crates/blocks/src/library/mod.rs crates/blocks/src/library/arith.rs crates/blocks/src/library/logic.rs crates/blocks/src/library/rate.rs crates/blocks/src/library/seq.rs crates/blocks/src/resource.rs Cargo.toml

crates/blocks/src/lib.rs:
crates/blocks/src/block.rs:
crates/blocks/src/fix.rs:
crates/blocks/src/gen.rs:
crates/blocks/src/graph.rs:
crates/blocks/src/library/mod.rs:
crates/blocks/src/library/arith.rs:
crates/blocks/src/library/logic.rs:
crates/blocks/src/library/rate.rs:
crates/blocks/src/library/seq.rs:
crates/blocks/src/resource.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
