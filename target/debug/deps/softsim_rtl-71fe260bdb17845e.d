/root/repo/target/debug/deps/softsim_rtl-71fe260bdb17845e.d: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_rtl-71fe260bdb17845e.rmeta: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs Cargo.toml

crates/rtl/src/lib.rs:
crates/rtl/src/comp.rs:
crates/rtl/src/kernel.rs:
crates/rtl/src/soc.rs:
crates/rtl/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
