/root/repo/target/debug/deps/properties-922c306db4f46e97.d: tests/properties.rs

/root/repo/target/debug/deps/properties-922c306db4f46e97: tests/properties.rs

tests/properties.rs:
