/root/repo/target/debug/deps/softsim_testkit-03b4aa9e727934b3.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/softsim_testkit-03b4aa9e727934b3: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
