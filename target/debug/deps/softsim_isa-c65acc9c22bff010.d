/root/repo/target/debug/deps/softsim_isa-c65acc9c22bff010.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/config.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/image.rs crates/isa/src/inst.rs crates/isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_isa-c65acc9c22bff010.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/config.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/image.rs crates/isa/src/inst.rs crates/isa/src/reg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/config.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/image.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
