/root/repo/target/debug/deps/softsim-d22a664be4c99c33.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim-d22a664be4c99c33.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
