/root/repo/target/debug/deps/softsim_cosim-3ba2ff331b515ee0.d: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_cosim-3ba2ff331b515ee0.rmeta: crates/core/src/lib.rs crates/core/src/binding.rs crates/core/src/cosim.rs crates/core/src/opb.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/binding.rs:
crates/core/src/cosim.rs:
crates/core/src/opb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
