/root/repo/target/debug/deps/cross_validation-d1173d2dfc9db459.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-d1173d2dfc9db459: tests/cross_validation.rs

tests/cross_validation.rs:
