/root/repo/target/debug/deps/softsim_energy-e7192ef4a10bb71a.d: crates/energy/src/lib.rs

/root/repo/target/debug/deps/libsoftsim_energy-e7192ef4a10bb71a.rlib: crates/energy/src/lib.rs

/root/repo/target/debug/deps/libsoftsim_energy-e7192ef4a10bb71a.rmeta: crates/energy/src/lib.rs

crates/energy/src/lib.rs:
