/root/repo/target/debug/deps/softsim_iss-dfd0d60b28da0781.d: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs

/root/repo/target/debug/deps/libsoftsim_iss-dfd0d60b28da0781.rlib: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs

/root/repo/target/debug/deps/libsoftsim_iss-dfd0d60b28da0781.rmeta: crates/iss/src/lib.rs crates/iss/src/cpu.rs crates/iss/src/debug.rs crates/iss/src/exec.rs crates/iss/src/fault.rs crates/iss/src/stats.rs

crates/iss/src/lib.rs:
crates/iss/src/cpu.rs:
crates/iss/src/debug.rs:
crates/iss/src/exec.rs:
crates/iss/src/fault.rs:
crates/iss/src/stats.rs:
