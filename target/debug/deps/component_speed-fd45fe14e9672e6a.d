/root/repo/target/debug/deps/component_speed-fd45fe14e9672e6a.d: crates/bench/benches/component_speed.rs Cargo.toml

/root/repo/target/debug/deps/libcomponent_speed-fd45fe14e9672e6a.rmeta: crates/bench/benches/component_speed.rs Cargo.toml

crates/bench/benches/component_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
