/root/repo/target/debug/deps/properties-edf4006b0607eda1.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-edf4006b0607eda1.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
