/root/repo/target/debug/deps/fig7_matmul_time-88cd1cdcd2386a3e.d: crates/bench/benches/fig7_matmul_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_matmul_time-88cd1cdcd2386a3e.rmeta: crates/bench/benches/fig7_matmul_time.rs Cargo.toml

crates/bench/benches/fig7_matmul_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
