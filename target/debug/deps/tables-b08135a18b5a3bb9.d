/root/repo/target/debug/deps/tables-b08135a18b5a3bb9.d: crates/bench/src/bin/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-b08135a18b5a3bb9.rmeta: crates/bench/src/bin/tables.rs Cargo.toml

crates/bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
