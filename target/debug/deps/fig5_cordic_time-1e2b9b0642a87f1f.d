/root/repo/target/debug/deps/fig5_cordic_time-1e2b9b0642a87f1f.d: crates/bench/benches/fig5_cordic_time.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_cordic_time-1e2b9b0642a87f1f.rmeta: crates/bench/benches/fig5_cordic_time.rs Cargo.toml

crates/bench/benches/fig5_cordic_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
