/root/repo/target/debug/deps/softsim_rtl-3e965242091843b1.d: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs

/root/repo/target/debug/deps/libsoftsim_rtl-3e965242091843b1.rlib: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs

/root/repo/target/debug/deps/libsoftsim_rtl-3e965242091843b1.rmeta: crates/rtl/src/lib.rs crates/rtl/src/comp.rs crates/rtl/src/kernel.rs crates/rtl/src/soc.rs crates/rtl/src/vcd.rs

crates/rtl/src/lib.rs:
crates/rtl/src/comp.rs:
crates/rtl/src/kernel.rs:
crates/rtl/src/soc.rs:
crates/rtl/src/vcd.rs:
