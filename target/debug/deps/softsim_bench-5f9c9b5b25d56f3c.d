/root/repo/target/debug/deps/softsim_bench-5f9c9b5b25d56f3c.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libsoftsim_bench-5f9c9b5b25d56f3c.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libsoftsim_bench-5f9c9b5b25d56f3c.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/measure.rs:
crates/bench/src/tables.rs:
crates/bench/src/workloads.rs:
