/root/repo/target/debug/deps/table2_sim_speed-d385e672594b8e7d.d: crates/bench/benches/table2_sim_speed.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_sim_speed-d385e672594b8e7d.rmeta: crates/bench/benches/table2_sim_speed.rs Cargo.toml

crates/bench/benches/table2_sim_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
