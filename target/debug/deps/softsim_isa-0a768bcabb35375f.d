/root/repo/target/debug/deps/softsim_isa-0a768bcabb35375f.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/config.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/image.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/softsim_isa-0a768bcabb35375f: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/config.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/image.rs crates/isa/src/inst.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/config.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/image.rs:
crates/isa/src/inst.rs:
crates/isa/src/reg.rs:
