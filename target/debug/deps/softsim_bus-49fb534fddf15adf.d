/root/repo/target/debug/deps/softsim_bus-49fb534fddf15adf.d: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_bus-49fb534fddf15adf.rmeta: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs Cargo.toml

crates/bus/src/lib.rs:
crates/bus/src/fsl.rs:
crates/bus/src/lmb.rs:
crates/bus/src/opb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
