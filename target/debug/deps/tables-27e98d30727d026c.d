/root/repo/target/debug/deps/tables-27e98d30727d026c.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-27e98d30727d026c: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
