/root/repo/target/debug/deps/softsim_apps-e55d556496af1c59.d: crates/apps/src/lib.rs crates/apps/src/beamformer.rs crates/apps/src/cordic/mod.rs crates/apps/src/cordic/divider.rs crates/apps/src/cordic/hardware.rs crates/apps/src/cordic/opb.rs crates/apps/src/cordic/reference.rs crates/apps/src/cordic/rtl.rs crates/apps/src/cordic/software.rs crates/apps/src/fir/mod.rs crates/apps/src/fir/hardware.rs crates/apps/src/fir/reference.rs crates/apps/src/fir/rtl.rs crates/apps/src/fir/software.rs crates/apps/src/lpc/mod.rs crates/apps/src/lpc/reference.rs crates/apps/src/lpc/software.rs crates/apps/src/matmul/mod.rs crates/apps/src/matmul/hardware.rs crates/apps/src/matmul/reference.rs crates/apps/src/matmul/rtl.rs crates/apps/src/matmul/software.rs crates/apps/src/matmul/structural.rs

/root/repo/target/debug/deps/softsim_apps-e55d556496af1c59: crates/apps/src/lib.rs crates/apps/src/beamformer.rs crates/apps/src/cordic/mod.rs crates/apps/src/cordic/divider.rs crates/apps/src/cordic/hardware.rs crates/apps/src/cordic/opb.rs crates/apps/src/cordic/reference.rs crates/apps/src/cordic/rtl.rs crates/apps/src/cordic/software.rs crates/apps/src/fir/mod.rs crates/apps/src/fir/hardware.rs crates/apps/src/fir/reference.rs crates/apps/src/fir/rtl.rs crates/apps/src/fir/software.rs crates/apps/src/lpc/mod.rs crates/apps/src/lpc/reference.rs crates/apps/src/lpc/software.rs crates/apps/src/matmul/mod.rs crates/apps/src/matmul/hardware.rs crates/apps/src/matmul/reference.rs crates/apps/src/matmul/rtl.rs crates/apps/src/matmul/software.rs crates/apps/src/matmul/structural.rs

crates/apps/src/lib.rs:
crates/apps/src/beamformer.rs:
crates/apps/src/cordic/mod.rs:
crates/apps/src/cordic/divider.rs:
crates/apps/src/cordic/hardware.rs:
crates/apps/src/cordic/opb.rs:
crates/apps/src/cordic/reference.rs:
crates/apps/src/cordic/rtl.rs:
crates/apps/src/cordic/software.rs:
crates/apps/src/fir/mod.rs:
crates/apps/src/fir/hardware.rs:
crates/apps/src/fir/reference.rs:
crates/apps/src/fir/rtl.rs:
crates/apps/src/fir/software.rs:
crates/apps/src/lpc/mod.rs:
crates/apps/src/lpc/reference.rs:
crates/apps/src/lpc/software.rs:
crates/apps/src/matmul/mod.rs:
crates/apps/src/matmul/hardware.rs:
crates/apps/src/matmul/reference.rs:
crates/apps/src/matmul/rtl.rs:
crates/apps/src/matmul/software.rs:
crates/apps/src/matmul/structural.rs:
