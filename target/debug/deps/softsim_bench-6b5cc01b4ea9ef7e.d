/root/repo/target/debug/deps/softsim_bench-6b5cc01b4ea9ef7e.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/softsim_bench-6b5cc01b4ea9ef7e: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/measure.rs crates/bench/src/tables.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/measure.rs:
crates/bench/src/tables.rs:
crates/bench/src/workloads.rs:
