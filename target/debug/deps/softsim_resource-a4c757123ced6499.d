/root/repo/target/debug/deps/softsim_resource-a4c757123ced6499.d: crates/resource/src/lib.rs

/root/repo/target/debug/deps/softsim_resource-a4c757123ced6499: crates/resource/src/lib.rs

crates/resource/src/lib.rs:
