/root/repo/target/debug/deps/trace-4a8b9528e38ee943.d: tests/trace.rs

/root/repo/target/debug/deps/trace-4a8b9528e38ee943: tests/trace.rs

tests/trace.rs:
