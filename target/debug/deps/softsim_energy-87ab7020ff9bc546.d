/root/repo/target/debug/deps/softsim_energy-87ab7020ff9bc546.d: crates/energy/src/lib.rs

/root/repo/target/debug/deps/softsim_energy-87ab7020ff9bc546: crates/energy/src/lib.rs

crates/energy/src/lib.rs:
