/root/repo/target/debug/deps/softsim_energy-61335e875cb8df21.d: crates/energy/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsim_energy-61335e875cb8df21.rmeta: crates/energy/src/lib.rs Cargo.toml

crates/energy/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
