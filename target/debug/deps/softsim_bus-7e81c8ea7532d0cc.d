/root/repo/target/debug/deps/softsim_bus-7e81c8ea7532d0cc.d: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs

/root/repo/target/debug/deps/libsoftsim_bus-7e81c8ea7532d0cc.rlib: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs

/root/repo/target/debug/deps/libsoftsim_bus-7e81c8ea7532d0cc.rmeta: crates/bus/src/lib.rs crates/bus/src/fsl.rs crates/bus/src/lmb.rs crates/bus/src/opb.rs

crates/bus/src/lib.rs:
crates/bus/src/fsl.rs:
crates/bus/src/lmb.rs:
crates/bus/src/opb.rs:
