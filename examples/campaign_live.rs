//! Harness telemetry live: a seeded CORDIC fault campaign on the
//! parallel runner with the span instrumentation turned on — a stderr
//! progress/ETA heartbeat while it runs, a periodically refreshed
//! Prometheus snapshot you can point a scraper (or `watch cat`) at, and
//! a final per-worker utilization summary. The campaign report itself
//! is byte-identical to an uninstrumented run — telemetry carries
//! wall-clock data out-of-band, never into the deterministic record.
//!
//! Run with: `cargo run --release --example campaign_live`

use softsim::apps::cordic::hardware::cordic_peripheral;
use softsim::apps::cordic::reference::to_fix;
use softsim::apps::cordic::software::{hw_program, CordicBatch};
use softsim::cosim::{CoSim, CoSimStop};
use softsim::isa::asm::assemble;
use softsim::metrics::telemetry::{Telemetry, TelemetryConfig};
use softsim::resilience::{
    random_plan, run_campaign_parallel, run_campaign_parallel_with_telemetry, CampaignConfig,
};
use std::time::Duration;

fn main() {
    let iterations = 8;
    let p = 2;
    let trials = 400;
    let seed = 0x5EED_FA17;
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);

    let pairs: Vec<(i32, i32)> = [(1.0, 0.5), (1.5, 1.2), (2.0, -1.0), (1.25, 0.8)]
        .iter()
        .map(|&(a, b)| (to_fix(a), to_fix(b)))
        .collect();
    let batch = CordicBatch::new(&pairs);
    let image = assemble(&hw_program(&batch, iterations, p)).expect("assembles");
    let base = image.symbol("z_data").expect("cordic result label");
    let n = pairs.len();
    let make_sim = || CoSim::with_peripheral(&image, cordic_peripheral(p));
    let observe = move |s: &CoSim| {
        (0..n).map(|i| s.cpu().mem().read_u32(base + 4 * i as u32).unwrap()).collect()
    };

    // Golden run: how long the fault-free workload takes, which places
    // the injection window inside the live part of the run.
    let golden = {
        let mut sim = make_sim();
        assert_eq!(sim.run(10_000_000), CoSimStop::Halted);
        sim.cpu().stats().cycles
    };
    let plan =
        random_plan(seed, trials, (golden / 10, golden), image.bytes().len() as u32, &[0, 1]);

    // Telemetry with everything on: a 250 ms heartbeat on stderr and a
    // snapshot file a Prometheus scraper (or `watch cat`) can read while
    // the campaign runs. The snapshot is written atomically (tmp +
    // rename), so a reader never sees a torn file.
    std::fs::create_dir_all("target").expect("mkdir");
    let snapshot = std::path::PathBuf::from("target/telemetry_live.prom");
    let telemetry = Telemetry::new(TelemetryConfig {
        heartbeat: Some(Duration::from_millis(250)),
        snapshot: Some((snapshot.clone(), Duration::from_millis(250))),
    });

    println!(
        "CORDIC fault campaign: {trials} trials, {workers} workers, seed {seed:#x} \
         (golden run {golden} cycles)\n"
    );
    let report = run_campaign_parallel_with_telemetry(
        make_sim,
        &plan,
        observe,
        CampaignConfig::default(),
        workers,
        Some(&telemetry),
    );
    telemetry.finish();

    let (masked, sdc, deadlock, fault) = report.counts();
    println!("\nmasked {masked}, sdc {sdc}, deadlock {deadlock}, fault {fault}");
    println!("\n{}", telemetry.summary());

    // A few lines of the exposition the snapshot file carries.
    let prom = telemetry.to_prometheus();
    println!("snapshot at {} ({} bytes); a sample:", snapshot.display(), prom.len());
    for line in prom
        .lines()
        .filter(|l| {
            l.starts_with("softsim_harness_spans_total")
                || l.starts_with("softsim_harness_worker_utilization")
                || l.starts_with("softsim_harness_throughput_cycles_per_sec")
        })
        .take(12)
    {
        println!("  {line}");
    }

    // The proof the instrumentation is inert: the identical campaign
    // without telemetry produces the identical report, byte for byte.
    let make_sim = || CoSim::with_peripheral(&image, cordic_peripheral(p));
    let observe = move |s: &CoSim| {
        (0..n).map(|i| s.cpu().mem().read_u32(base + 4 * i as u32).unwrap()).collect()
    };
    let plain = run_campaign_parallel(make_sim, &plan, observe, CampaignConfig::default(), workers);
    assert_eq!(report, plain, "telemetry must not perturb the report");
    println!("\nverified: report is byte-identical to an uninstrumented run");
}
