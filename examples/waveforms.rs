//! Waveform capture from both simulation levels: a VCD dump of the RTL
//! system (viewable in GTKWave) and CSV scope probes from the high-level
//! block simulator — the debugging workflow the paper's environment
//! supports on top of fast simulation.
//!
//! Run with: `cargo run --release --example waveforms`
//! Writes `target/cordic_rtl.vcd` and `target/cordic_pipeline.csv`.

use softsim::apps::cordic::hardware::{CordicPe, Deserializer, Serializer};
use softsim::apps::cordic::reference;
use softsim::apps::cordic::rtl::build_cordic_rtl;
use softsim::apps::cordic::software::{hw_program, CordicBatch};
use softsim::blocks::block::bit;
use softsim::blocks::{Fix, FixFmt, Graph};
use softsim::isa::asm::assemble;
use softsim::rtl::{RtlStop, VcdWriter};
use std::fs::File;
use std::io::BufWriter;

fn main() {
    std::fs::create_dir_all("target").expect("target dir");

    // --- 1. VCD from the event-driven RTL simulation.
    let batch = CordicBatch::new(&[(reference::to_fix(1.5), reference::to_fix(0.9))]);
    let img = assemble(&hw_program(&batch, 8, 4)).unwrap();
    let mut soc = build_cordic_rtl(&img, 4);
    let file = BufWriter::new(File::create("target/cordic_rtl.vcd").expect("vcd file"));
    soc.kernel.record_vcd(VcdWriter::new(Box::new(file)));
    let stop = soc.run(10_000);
    assert_eq!(stop, RtlStop::Halted);
    let mut vcd = soc.kernel.take_vcd().unwrap();
    vcd.flush().unwrap();
    println!(
        "wrote target/cordic_rtl.vcd ({} signals, {} events over {} cycles)",
        soc.kernel.signal_count(),
        soc.kernel.stats().events,
        soc.cpu_cycles()
    );

    // --- 2. Scope probes on the high-level block simulation: rebuild the
    // 4-PE pipeline with explicit node handles and watch Y/Z converge.
    let p = 4;
    let mut g = Graph::new();
    let data = g.gateway_in("data", FixFmt::INT32);
    let valid = g.gateway_in("valid", FixFmt::BOOL);
    let ctrl = g.gateway_in("ctrl", FixFmt::BOOL);
    let deser = g.add("deser", Deserializer::new());
    g.wire(data, deser, 0).unwrap();
    g.wire(valid, deser, 1).unwrap();
    g.wire(ctrl, deser, 2).unwrap();
    let mut prev = deser;
    for i in 0..p {
        let pe = g.add(format!("pe{i}"), CordicPe::new());
        for port in 0..6 {
            g.connect(prev, port, pe, port).unwrap();
        }
        // Scope the Y and Z values leaving each PE, like dropping
        // Simulink scopes onto the Fig. 4 sheet.
        g.add_probe(format!("pe{i}_y"), pe, 1);
        g.add_probe(format!("pe{i}_z"), pe, 2);
        prev = pe;
    }
    let ser = g.add("ser", Serializer::new());
    g.connect(prev, 1, ser, 0).unwrap();
    g.connect(prev, 2, ser, 1).unwrap();
    g.connect(prev, 3, ser, 2).unwrap();
    g.compile().unwrap();

    // One control word and one (XS, Y, Z) sample.
    let words: Vec<(i32, bool)> = vec![
        (reference::ONE, true),
        (reference::to_fix(1.5), false),
        (reference::to_fix(0.9), false),
        (0, false),
    ];
    for (w, c) in &words {
        g.set_input("data", Fix::from_bits(*w as u32 as u64, FixFmt::INT32)).unwrap();
        g.set_input("valid", bit(true)).unwrap();
        g.set_input("ctrl", bit(*c)).unwrap();
        g.step();
    }
    g.set_input("valid", bit(false)).unwrap();
    g.run(8);
    std::fs::write("target/cordic_pipeline.csv", g.probes_to_csv()).unwrap();
    println!("wrote target/cordic_pipeline.csv ({} cycles x {} probes)", g.cycles(), 2 * p);
    // The Z probe of the last PE shows the quotient after 4 iterations.
    let z: Vec<f64> = g
        .probe_samples("pe3_z")
        .unwrap()
        .iter()
        .map(|v| {
            // Z is a raw Q8.24 word transported as INT32 bits.
            reference::from_fix(v.to_bits() as u32 as i32)
        })
        .collect();
    println!("pe3 Z trace (quotient forming): {:?}", &z[z.len() - 5..]);
    let expect = reference::divide_fix(reference::to_fix(1.5), reference::to_fix(0.9), 4);
    assert!((z.iter().last().unwrap() - reference::from_fix(expect)).abs() < 1e-9);
}
