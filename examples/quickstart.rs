//! Quickstart: assemble a small MB32 program, attach a tiny hardware
//! peripheral over a Fast Simplex Link, and co-simulate both — the whole
//! paper in thirty lines.
//!
//! Run with: `cargo run --example quickstart`

use softsim::blocks::library::{AddSub, AddSubOp, Constant, Delay, Register};
use softsim::blocks::{FixFmt, Graph};
use softsim::cosim::{CoSim, CoSimStop, FslFromHw, FslToHw, Peripheral};
use softsim::isa::asm::assemble;
use softsim::isa::Reg;

/// A one-block "accelerator": returns `x + 1000` one cycle later.
fn plus1000_peripheral() -> Peripheral {
    let mut g = Graph::new();
    let data = g.gateway_in("fsl0_data", FixFmt::INT32);
    let valid = g.gateway_in("fsl0_valid", FixFmt::BOOL);
    let k = g.add("k", Constant::int(1000, FixFmt::INT32));
    let add = g.add("add", AddSub::new(AddSubOp::Add, FixFmt::INT32));
    let rdata = g.add("rdata", Register::zeroed(FixFmt::INT32));
    let rvalid = g.add("rvalid", Delay::new(FixFmt::BOOL, 1));
    g.connect(data, 0, add, 0).unwrap();
    g.connect(k, 0, add, 1).unwrap();
    g.connect(add, 0, rdata, 0).unwrap();
    g.connect(valid, 0, rdata, 1).unwrap();
    g.connect(valid, 0, rvalid, 0).unwrap();
    g.gateway_out("fsl0_out_data", rdata, 0);
    g.gateway_out("fsl0_out_valid", rvalid, 0);
    g.compile().unwrap();
    Peripheral::new(g, vec![FslToHw::standard(0).without_control()], vec![FslFromHw::standard(0)])
}

fn main() {
    // Software: send 1..=5 to the accelerator, sum what comes back.
    let image = assemble(
        "       addik r3, r0, 5      # counter
                addk  r4, r0, r0     # sum
        loop:   put   r3, rfsl0      # to hardware
                get   r5, rfsl0      # blocking read of the result
                addk  r4, r4, r5
                addik r3, r3, -1
                bnei  r3, loop
                halt
        ",
    )
    .expect("program assembles");

    let mut sim = CoSim::with_peripheral(&image, plus1000_peripheral());
    let stop = sim.run(100_000);
    assert_eq!(stop, CoSimStop::Halted);

    let sum = sim.cpu().reg(Reg::new(4));
    println!("hardware-accelerated sum: {sum}");
    assert_eq!(sum, (1..=5).map(|x| x + 1000).sum::<u32>());
    println!(
        "simulated {} cycles = {:.2} µs at 50 MHz ({} words each way)",
        sim.cpu_stats().cycles,
        sim.time_us(),
        sim.hw_stats().words_to_hw,
    );
}
