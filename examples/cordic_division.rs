//! The paper's §IV-A application end to end: an adaptive CORDIC divider
//! running on the MB32 soft processor with a P-PE hardware pipeline,
//! verified against the golden reference and compared with pure software.
//!
//! Run with: `cargo run --release --example cordic_division`

use softsim::apps::cordic::hardware::cordic_peripheral;
use softsim::apps::cordic::reference;
use softsim::apps::cordic::software::{
    effective_iterations, hw_program, sw_program, CordicBatch, SwStyle, RESULT_LABEL,
};
use softsim::cosim::{CoSim, CoSimStop};
use softsim::isa::asm::assemble;

fn main() {
    // A batch of divisions b/a — the adaptive-beamforming-style workload
    // the paper motivates (weight updates over streaming samples).
    let pairs: Vec<(f64, f64)> =
        vec![(1.0, 0.5), (1.5, 1.2), (2.0, -1.0), (1.25, 0.8), (3.0, 2.5), (1.1, -0.3)];
    let batch = CordicBatch::new(
        &pairs
            .iter()
            .map(|&(a, b)| (reference::to_fix(a), reference::to_fix(b)))
            .collect::<Vec<_>>(),
    );
    let iterations = 24;

    // Pure software (P = 0).
    let sw_img = assemble(&sw_program(&batch, iterations, SwStyle::Compiled)).unwrap();
    let mut sw = CoSim::software_only(&sw_img);
    assert_eq!(sw.run(10_000_000), CoSimStop::Halted);
    println!(
        "pure software:      {:>7} cycles  ({:>8.2} µs at 50 MHz)",
        sw.cpu_stats().cycles,
        sw.time_us()
    );

    // Hardware-accelerated with P = 2, 4, 6, 8 PEs.
    for p in [2usize, 4, 6, 8] {
        let img = assemble(&hw_program(&batch, iterations, p)).unwrap();
        let mut hw = CoSim::with_peripheral(&img, cordic_peripheral(p));
        assert_eq!(hw.run(10_000_000), CoSimStop::Halted);
        println!(
            "P = {p} PEs:          {:>7} cycles  ({:>8.2} µs)   speedup {:>5.2}x   \
             FSL words {:>3}/{:<3}",
            hw.cpu_stats().cycles,
            hw.time_us(),
            sw.cpu_stats().cycles as f64 / hw.cpu_stats().cycles as f64,
            hw.hw_stats().words_to_hw,
            hw.hw_stats().words_from_hw,
        );

        // Verify every quotient against the golden model.
        let base = img.symbol(RESULT_LABEL).unwrap();
        let eff = effective_iterations(iterations, p);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let got = hw.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32;
            let expect = reference::divide_fix(reference::to_fix(a), reference::to_fix(b), eff);
            assert_eq!(got, expect, "sample {i}");
            let err = (reference::from_fix(got) - b / a).abs();
            assert!(err <= reference::error_bound(eff));
        }
    }
    println!("all quotients match the Eq. 2 reference bit-exactly");
}
