//! Adaptive-filter weight update via the Levinson-Durbin recursion — the
//! paper's §I example of a recursive algorithm with "tightly coupled data
//! dependency among computation steps". This example quantifies the
//! claim: offloading the recursion's divisions to the FSL CORDIC pipeline
//! gains far less than the batched Figure 5 workload, because only one
//! division is ever in flight.
//!
//! Run with: `cargo run --release --example lpc_weight_update`

use softsim::apps::lpc::reference::{self, test_autocorrelation};
use softsim::apps::lpc::software::{lpc_cosim, LpcDivision};
use softsim::cosim::CoSimStop;

fn main() {
    let order = 6;
    let r = test_autocorrelation(order);
    println!("Levinson-Durbin weight update, order {order} (AR(2) test input)");
    println!(
        "{:<22} {:>8} {:>10} {:>12}",
        "division strategy", "cycles", "time(us)", "vs SW CORDIC"
    );
    let mut sw_cycles = 0u64;
    for div in [
        LpcDivision::CordicSw,
        LpcDivision::CordicFsl(4),
        LpcDivision::CordicFsl(8),
        LpcDivision::Idiv,
    ] {
        let (mut sim, img) = lpc_cosim(&r, div);
        assert_eq!(sim.run(10_000_000), CoSimStop::Halted);
        let cycles = sim.cpu_stats().cycles;
        if div == LpcDivision::CordicSw {
            sw_cycles = cycles;
        }
        println!(
            "{:<22} {:>8} {:>10.2} {:>11.2}x",
            format!("{div:?}"),
            cycles,
            sim.time_us(),
            sw_cycles as f64 / cycles as f64
        );
        // Verify the computed coefficients against the bit-exact model.
        let expect = reference::levinson_durbin(&r, div.reference_strategy());
        let base = img.symbol("a_data").unwrap();
        for i in 0..=order {
            let got = sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32;
            assert_eq!(got, expect.a[i], "{div:?} a[{i}]");
        }
    }
    println!(
        "\nthe batched CORDIC workload of Figure 5 gains 3.7x from the same P=4\n\
         pipeline; the serial recursion manages ~1.6x — the paper's argument for\n\
         keeping recursive algorithms in software (or adding the divider option)."
    );
}
