//! Design-space exploration — the use case the paper's introduction
//! motivates: rapidly evaluate many hardware/software partitions and soft-
//! processor configurations (time *and* resources) without ever running
//! low-level simulation, then pick the design point.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use softsim::apps::cordic::hardware::pipeline_resources;
use softsim::apps::cordic::reference;
use softsim::apps::cordic::software::{hw_program, sw_program, CordicBatch, SwStyle};
use softsim::blocks::Resources;
use softsim::cosim::{CoSim, CoSimStop};
use softsim::isa::asm::assemble;
use softsim::resource::{estimate_system, DataSheet, SystemConfig};

struct DesignPoint {
    name: String,
    cycles: u64,
    resources: Resources,
}

fn main() {
    let batch = CordicBatch::new(
        &[(1.0, 0.5), (1.5, 1.2), (2.0, -1.0), (1.25, 0.8)]
            .map(|(a, b)| (reference::to_fix(a), reference::to_fix(b))),
    );
    let iterations = 24;
    let sheet = DataSheet::default();
    let mut points = Vec::new();

    // P = 0: pure software.
    let img = assemble(&sw_program(&batch, iterations, SwStyle::Compiled)).unwrap();
    let mut sim = CoSim::software_only(&img);
    assert_eq!(sim.run(10_000_000), CoSimStop::Halted);
    points.push(DesignPoint {
        name: "pure software".into(),
        cycles: sim.cpu_stats().cycles,
        resources: estimate_system(
            &SystemConfig { program: &img, peripheral: Resources::ZERO, fsl_channels: 0 },
            &sheet,
        ),
    });

    // P = 1..=8: every pipeline depth.
    for p in 1..=8usize {
        let img = assemble(&hw_program(&batch, iterations, p)).unwrap();
        let mut sim =
            CoSim::with_peripheral(&img, softsim::apps::cordic::hardware::cordic_peripheral(p));
        assert_eq!(sim.run(10_000_000), CoSimStop::Halted);
        points.push(DesignPoint {
            name: format!("{p}-PE pipeline"),
            cycles: sim.cpu_stats().cycles,
            resources: estimate_system(
                &SystemConfig { program: &img, peripheral: pipeline_resources(p), fsl_channels: 1 },
                &sheet,
            ),
        });
    }

    println!("CORDIC division, 24 iterations — the design space in one co-simulated sweep:");
    println!("{:<16} {:>8} {:>9} {:>8} {:>7}", "design", "cycles", "time(us)", "slices", "mult18");
    let base = points[0].cycles;
    for p in &points {
        println!(
            "{:<16} {:>8} {:>9.2} {:>8} {:>7}   {}",
            p.name,
            p.cycles,
            p.cycles as f64 / 50.0,
            p.resources.slices,
            p.resources.mult18s,
            if p.cycles < base {
                format!(
                    "{:.2}x faster, +{} slices",
                    base as f64 / p.cycles as f64,
                    p.resources.slices - points[0].resources.slices
                )
            } else {
                "baseline".into()
            }
        );
    }

    // Pick the knee: best cycles-per-slice improvement.
    let best = points
        .iter()
        .skip(1)
        .min_by(|x, y| {
            let cost = |q: &DesignPoint| q.cycles as f64 * q.resources.slices as f64;
            cost(x).total_cmp(&cost(y))
        })
        .unwrap();
    println!("\nbest time×area product: {}", best.name);
}
