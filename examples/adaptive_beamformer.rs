//! The full adaptive-filter system the paper's §IV motivates, end to end:
//! one soft processor, **two** customized hardware peripherals —
//!
//! * the CORDIC divider pipeline (FSL 0) performs the divisions of the
//!   Levinson-Durbin weight update;
//! * the FIR filter (FSL 2) is loaded with the fresh prediction-error
//!   coefficients and streams the signal through them.
//!
//! Run with: `cargo run --release --example adaptive_beamformer`

use softsim::apps::beamformer::{expected_output, run_beamformer};
use softsim::apps::fir::reference::test_signal;
use softsim::apps::lpc::reference::{self, test_autocorrelation};

fn main() {
    let order = 4;
    let r = test_autocorrelation(order);
    let input = test_signal(32, 11);
    println!(
        "adaptive weight update (Levinson-Durbin, order {order}) + prediction-error\n\
         filtering of {} samples, on one MB32 with two FSL peripherals:\n",
        input.len()
    );
    for p in [2usize, 4, 8] {
        let (y, cycles) = run_beamformer(&r, p, &input);
        assert_eq!(y, expected_output(&r, p, &input), "P={p}");
        println!(
            "  CORDIC pipeline P={p}: {cycles:>5} cycles ({:>7.2} µs at 50 MHz) — output verified",
            cycles as f64 / 50.0
        );
    }
    // Show the computed weights for the curious.
    let weights = reference::levinson_durbin(&r, reference::DivStrategy::Cordic(16));
    let a: Vec<f64> = weights.a.iter().map(|&v| reference::from_fix(v)).collect();
    println!("\nprediction-error filter A(z) = {a:.3?}");
    println!("residual error energy: {:.4} (from r[0] = 1.0)", reference::from_fix(weights.error));
}
