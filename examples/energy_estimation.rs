//! Rapid energy estimation integrated with co-simulation — the extension
//! the paper's §V announces: instruction-level energy for the software
//! side plus domain-specific energy models for the hardware peripherals,
//! both fed directly by the statistics a co-simulated run collects.
//!
//! Run with: `cargo run --release --example energy_estimation`

use softsim::apps::cordic::hardware::{cordic_peripheral, pipeline_resources};
use softsim::apps::cordic::reference;
use softsim::apps::cordic::software::{hw_program, sw_program, CordicBatch, SwStyle};
use softsim::blocks::Resources;
use softsim::cosim::{CoSim, CoSimStop};
use softsim::energy::cosim_energy;
use softsim::isa::asm::assemble;
use softsim::resource::{estimate_system, DataSheet, SystemConfig};

fn main() {
    let batch = CordicBatch::new(
        &[(1.0, 0.5), (1.5, 1.2), (2.0, -1.0), (1.25, 0.8)]
            .map(|(a, b)| (reference::to_fix(a), reference::to_fix(b))),
    );
    let sheet = DataSheet::default();
    println!("CORDIC division (24 iterations): energy across the design space");
    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "design", "time(us)", "SW(nJ)", "HW(nJ)", "static", "total", "avg power"
    );
    for p in [0usize, 2, 4, 6, 8] {
        let (img, peripheral_res, sim) = if p == 0 {
            let img = assemble(&sw_program(&batch, 24, SwStyle::Compiled)).unwrap();
            let sim = CoSim::software_only(&img);
            (img, Resources::ZERO, sim)
        } else {
            let img = assemble(&hw_program(&batch, 24, p)).unwrap();
            let sim = CoSim::with_peripheral(&img, cordic_peripheral(p));
            (img, pipeline_resources(p), sim)
        };
        let system = estimate_system(
            &SystemConfig {
                program: &img,
                peripheral: peripheral_res,
                fsl_channels: (p > 0) as u32,
            },
            &sheet,
        );
        let mut sim = sim;
        assert_eq!(sim.run(10_000_000), CoSimStop::Halted);
        let e = cosim_energy(&sim, peripheral_res, system);
        println!(
            "{:<14} {:>9.2} {:>10.1} {:>9.1} {:>9.1} {:>9.1} {:>7.1} mW",
            if p == 0 { "pure SW".into() } else { format!("{p}-PE pipeline") },
            e.time_us,
            e.software_nj,
            e.hardware_nj,
            e.static_nj,
            e.total_nj(),
            e.average_mw(),
        );
    }
    println!(
        "\noffload wins on energy too: the accelerated runs finish early enough to\n\
         amortize the larger design's hardware and static power."
    );
}
