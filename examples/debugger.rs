//! Driving the soft processor through the `mb-gdb`-style debug protocol —
//! the control path of the paper's Fig. 2, where the MicroBlaze Simulink
//! block steers software execution through a bidirectional command pipe.
//!
//! Run with: `cargo run --example debugger`

use softsim::bus::FslBank;
use softsim::isa::asm::assemble;
use softsim::isa::disasm;
use softsim::iss::debug::DebugSession;
use softsim::iss::Cpu;

fn main() {
    let image = assemble(
        "main:  addik r3, r0, 1     # fib(1)
                addik r4, r0, 1     # fib(2)
                addik r5, r0, 10    # count
        loop:   addk  r6, r3, r4
                addk  r3, r4, r0
                addk  r4, r6, r0
                addik r5, r5, -1
                bnei  r5, loop
                swi   r4, r0, 0x200
                halt
        ",
    )
    .unwrap();

    println!("disassembly (mb-objdump analog):\n{}", disasm::listing(&image));

    let mut cpu = Cpu::with_default_memory(&image);
    let mut fsl = FslBank::default();
    let mut dbg = DebugSession::new(&mut cpu, &mut fsl);

    // The textual protocol — exactly what would flow over the pipe.
    for line in [
        "break 0x0c", // the loop head
        "cont",       // run to the breakpoint
        "rr r3",
        "rr r4",
        "cont", // one more trip around the loop
        "rr r4",
        "delete 0x0c",
        "cont", // run to completion
        "rm 0x200",
        "stats",
    ] {
        let reply = dbg.handle_line(line);
        println!("> {line:<14} => {reply}");
    }

    let fib12 = cpu.mem().read_u32(0x200).unwrap();
    println!("fib(12) computed on MB32: {fib12}");
    assert_eq!(fib12, 144);
}
