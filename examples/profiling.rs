//! Observability end to end: the CORDIC `P = 4` co-simulation traced
//! with `softsim-trace` — stall attribution, hot PCs, instruction mix,
//! FIFO occupancy timelines and a Chrome trace-event export you can load
//! into Perfetto (`ui.perfetto.dev`) or `chrome://tracing` — followed by
//! the guest-program profiler: basic-block hotspots, collapsed-stack
//! flamegraphs (load into `speedscope.app` or `flamegraph.pl`) and the
//! HW/SW partition advisor's offload ranking.
//!
//! Run with: `cargo run --release --example profiling`

use softsim::apps::cordic::hardware::cordic_peripheral;
use softsim::apps::cordic::reference::to_fix;
use softsim::apps::cordic::software::{hw_program, sw_program, CordicBatch, SwStyle};
use softsim::apps::matmul::reference::Matrix;
use softsim::apps::matmul::software as mm_sw;
use softsim::cosim::{CoSim, CoSimStop};
use softsim::isa::asm::assemble;
use softsim::isa::Image;
use softsim::profile::{advise, advise_text, GuestReport};
use softsim::trace::{chrome, shared, Fanout, FifoDir, Profile, Recorder, Timeline};
use std::cell::RefCell;
use std::rc::Rc;

/// Runs `image` under the guest profiler and prints the hotspot report:
/// top-10 hot blocks, the flamegraph path and the advisor's ranking.
fn profile_guest(title: &str, slug: &str, image: &Image) {
    let mut sim = CoSim::software_only(image);
    sim.set_profiling(true);
    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);
    let guest = sim.guest_profile().expect("profiling on");
    let stats = sim.cpu_stats();
    assert_eq!(guest.total_cycles(), stats.cycles, "profile must reconcile");
    let report = GuestReport::build(image, &guest);

    println!("\n=== {title}: {} cycles, {} instructions ===", stats.cycles, stats.instructions);
    println!("top 10 hot blocks:");
    for b in report.hot_blocks(10) {
        println!(
            "  {:<16} {:>6x}..{:<6x} {:>8} cycles {:>6} visits  {:>5.1}%",
            b.name,
            b.block.start,
            b.block.end,
            b.cycles,
            b.visits,
            b.cycles as f64 / stats.cycles.max(1) as f64 * 100.0
        );
    }

    // Collapsed-stack flamegraph: one `region;block cycles` line per
    // block — feed straight into speedscope or flamegraph.pl.
    std::fs::create_dir_all("target/trace").expect("mkdir");
    let path = format!("target/trace/{slug}.collapsed");
    std::fs::write(&path, report.to_collapsed()).expect("write flamegraph");
    println!("wrote {path} (collapsed stacks; load into speedscope.app)");

    println!("partition advisor (score = cycles - estimated FSL cost):");
    print!("{}", advise_text(&advise(&report)));
}

fn main() {
    let p = 4;
    let iterations = 24;
    let pairs: Vec<(i32, i32)> = [(1.0, 0.5), (1.5, 1.2), (2.0, -1.0), (1.25, 0.8)]
        .iter()
        .map(|&(a, b)| (to_fix(a), to_fix(b)))
        .collect();
    let batch = CordicBatch::new(&pairs);
    let image = assemble(&hw_program(&batch, iterations, p)).expect("assembles");

    // Attach the full observability stack: a profile (aggregates), a
    // timeline (FIFO occupancy series) and a recorder (raw events for
    // the Chrome export).
    let profile = Rc::new(RefCell::new(Profile::new()));
    let timeline = Rc::new(RefCell::new(Timeline::new()));
    let recorder = Rc::new(RefCell::new(Recorder::new(1 << 16)));
    let fanout = Fanout::new()
        .with(shared(profile.clone()))
        .with(shared(timeline.clone()))
        .with(shared(recorder.clone()));

    let mut sim = CoSim::with_peripheral(&image, cordic_peripheral(p));
    sim.attach_trace(shared(Rc::new(RefCell::new(fanout))));
    assert_eq!(sim.run(u64::MAX / 2), CoSimStop::Halted);

    let stats = sim.cpu_stats();
    let profile = profile.borrow();
    let timeline = timeline.borrow();

    println!("CORDIC division, {iterations} iterations, P = {p} pipeline\n");
    println!("{}", profile.report(8));

    // The stall-attribution table: every simulated cycle accounted for,
    // exactly — the trace reconciles with the ISS's own counters.
    let b = profile.breakdown();
    assert_eq!(b.total, stats.cycles, "trace/ISS cycle mismatch");
    println!("stall attribution ({} cycles):", b.total);
    let pct = |c: u64| c as f64 / b.total.max(1) as f64 * 100.0;
    println!("  compute          {:>8}  {:>5.1}%", b.compute, pct(b.compute));
    println!("  fsl read stall   {:>8}  {:>5.1}%", b.fsl_read_stall, pct(b.fsl_read_stall));
    println!("  fsl write stall  {:>8}  {:>5.1}%", b.fsl_write_stall, pct(b.fsl_write_stall));
    println!(
        "  FIFO high-water: to-hw {}, from-hw {} (depth 16)",
        timeline.high_water(FifoDir::ToHw),
        timeline.high_water(FifoDir::FromHw)
    );

    // Export: Chrome trace-event JSON + occupancy CSV.
    std::fs::create_dir_all("target/trace").expect("mkdir");
    let events = recorder.borrow().events();
    std::fs::write("target/trace/cordic_p4.json", chrome::to_json(&events)).expect("write json");
    std::fs::write("target/trace/cordic_p4_fifo.csv", timeline.to_csv()).expect("write csv");
    println!(
        "\nwrote target/trace/cordic_p4.json ({} events; load into ui.perfetto.dev)\n\
         wrote target/trace/cordic_p4_fifo.csv (FIFO occupancy timeline)",
        events.len()
    );

    // Part two: the guest-program profiler on the two paper workloads —
    // where do the cycles go *inside* the software, and what does the
    // advisor say about moving it into hardware?
    let cordic_sw =
        assemble(&sw_program(&batch, iterations, SwStyle::Compiled)).expect("assembles");
    profile_guest("CORDIC division, pure software", "cordic_sw", &cordic_sw);

    let (a, b) = (Matrix::test_pattern(8, 7), Matrix::test_pattern(8, 8));
    let matmul = assemble(&mm_sw::sw_program(&a, &b)).expect("assembles");
    profile_guest("matmul 8x8, pure software", "matmul_sw", &matmul);
}
