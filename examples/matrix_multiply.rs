//! The paper's §IV-B application end to end: block matrix multiplication
//! with a 2×2 / 4×4 block-product peripheral, reproducing the crossover
//! where small blocks lose to pure software.
//!
//! Run with: `cargo run --release --example matrix_multiply`

use softsim::apps::matmul::hardware::matmul_peripheral;
use softsim::apps::matmul::reference::{self, Matrix};
use softsim::apps::matmul::software::{hw_program, sw_program, RESULT_LABEL};
use softsim::cosim::{CoSim, CoSimStop};
use softsim::isa::asm::assemble;

fn run_config(n: usize, nb: Option<usize>) -> (u64, Matrix) {
    let a = Matrix::test_pattern(n, 7);
    let b = Matrix::test_pattern(n, 8);
    let src = match nb {
        None => sw_program(&a, &b),
        Some(nb) => hw_program(&a, &b, nb),
    };
    let img = assemble(&src).unwrap();
    let mut sim = match nb {
        None => CoSim::software_only(&img),
        Some(nb) => CoSim::with_peripheral(&img, matmul_peripheral(nb)),
    };
    assert_eq!(sim.run(1_000_000_000), CoSimStop::Halted);
    let base = img.symbol(RESULT_LABEL).unwrap();
    let data =
        (0..n * n).map(|i| sim.cpu().mem().read_u32(base + 4 * i as u32).unwrap() as i32).collect();
    (sim.cpu_stats().cycles, Matrix::from_rows(n, data))
}

fn main() {
    let n = 16;
    let a = Matrix::test_pattern(n, 7);
    let b = Matrix::test_pattern(n, 8);
    let golden = reference::multiply(&a, &b);

    let (sw_cycles, c) = run_config(n, None);
    assert_eq!(c, golden);
    println!("{n}x{n} pure software:  {sw_cycles:>7} cycles ({:.1} µs)", sw_cycles as f64 / 50.0);

    for nb in [2usize, 4] {
        let (cycles, c) = run_config(n, Some(nb));
        assert_eq!(c, golden, "{nb}x{nb} result must match the reference");
        let ratio = sw_cycles as f64 / cycles as f64;
        let verdict = if ratio >= 1.0 {
            format!("{ratio:.2}x FASTER")
        } else {
            format!("{:.1}% slower — communication overhead wins", (1.0 / ratio - 1.0) * 100.0)
        };
        println!(
            "{n}x{n} {nb}x{nb} blocks:     {cycles:>7} cycles ({:.1} µs)   {verdict}",
            cycles as f64 / 50.0
        );
    }
    println!("(the paper's §IV-B: 2x2 blocks cost 8.8% extra time; 4x4 blocks win 2.2x)");
}
